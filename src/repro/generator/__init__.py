"""Synthetic workload generators (Section 6.1's HOSP and Tax stand-ins)."""

from repro.generator.vocab import build_vocabulary, vocabulary_separation
from repro.generator.entities import AttributeRole, EntityCatalog, FDSpec
from repro.generator.noise import (
    ErrorKind,
    InjectedError,
    NoiseConfig,
    error_cells,
    inject_noise,
    inject_outliers,
)
from repro.generator.nulls import NULL_TOKENS, inject_nulls
from repro.generator.drift import DRIFT_TRANSFORMS, inject_format_drift
from repro.generator.hosp import HOSP_FDS, HOSP_SCHEMA, generate_hosp, hosp_thresholds
from repro.generator.skew import (
    SKEW_FDS,
    SKEW_SCHEMA,
    generate_skew,
    skew_chain_lengths,
    skew_thresholds,
)
from repro.generator.tax import TAX_FDS, TAX_SCHEMA, generate_tax, tax_thresholds

__all__ = [
    "build_vocabulary",
    "vocabulary_separation",
    "EntityCatalog",
    "FDSpec",
    "AttributeRole",
    "inject_noise",
    "inject_outliers",
    "inject_nulls",
    "inject_format_drift",
    "error_cells",
    "NULL_TOKENS",
    "DRIFT_TRANSFORMS",
    "NoiseConfig",
    "InjectedError",
    "ErrorKind",
    "generate_hosp",
    "HOSP_SCHEMA",
    "HOSP_FDS",
    "hosp_thresholds",
    "generate_tax",
    "TAX_SCHEMA",
    "TAX_FDS",
    "tax_thresholds",
    "generate_skew",
    "SKEW_SCHEMA",
    "SKEW_FDS",
    "skew_chain_lengths",
    "skew_thresholds",
]
