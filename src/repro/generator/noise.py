"""Error injection (Section 6.1's noise protocol).

Errors are produced at rate ``e%`` — the fraction of dirty cells over
all cells of FD-constrained attributes — in three equal shares:

* **RHS errors**: a cell on the right-hand side of some FD is replaced
  with a different value of the same attribute drawn from the relation
  (active-domain replacement, "values in other tuples");
* **LHS errors**: the same, for left-hand-side cells;
* **typos**: one or two random character edits on a string cell
  (numeric cells receive a small grid shift instead).

Every injected error is logged with its clean value so precision/recall
can be computed cell-exactly.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.dataset.relation import Cell, NUMERIC, Relation
from repro.utils.rng import SeedLike, make_rng


class ErrorKind(Enum):
    """The paper's three noise flavours plus the scenario-matrix kinds.

    RHS/LHS/TYPO follow Section 6.1's protocol; NULL, DRIFT and OUTLIER
    are the profiles of the detector scenarios (``docs/scenarios.md``)
    injected by :func:`repro.generator.nulls.inject_nulls`,
    :func:`repro.generator.drift.inject_format_drift` and
    :func:`inject_outliers`.
    """

    RHS = "rhs"
    LHS = "lhs"
    TYPO = "typo"
    NULL = "null"
    DRIFT = "drift"
    OUTLIER = "outlier"


@dataclass(frozen=True)
class InjectedError:
    """One corrupted cell: where, what it was, what it became, and how."""

    tid: int
    attribute: str
    clean: object
    dirty: object
    kind: ErrorKind

    @property
    def cell(self) -> Cell:
        return (self.tid, self.attribute)


@dataclass
class NoiseConfig:
    """Noise-injection knobs.

    ``error_rate`` is e% as a fraction (0.04 == 4%). The three shares
    must sum to 1; the paper uses equal thirds.
    """

    error_rate: float = 0.04
    rhs_share: float = 1.0 / 3.0
    lhs_share: float = 1.0 / 3.0
    typo_share: float = 1.0 / 3.0
    max_typo_edits: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")
        total = self.rhs_share + self.lhs_share + self.typo_share
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"noise shares must sum to 1, got {total}")


def inject_noise(
    relation: Relation,
    fds: Sequence[FD],
    config: NoiseConfig = NoiseConfig(),
    rng: SeedLike = None,
) -> Tuple[Relation, List[InjectedError]]:
    """Return a corrupted copy of *relation* and the error log.

    The input relation is treated as ground truth and never modified.
    Each cell is corrupted at most once.
    """
    random_state = make_rng(rng)
    dirty = relation.copy()

    lhs_attrs = sorted({a for fd in fds for a in fd.lhs})
    rhs_attrs = sorted({a for fd in fds for a in fd.rhs})
    all_attrs = sorted(set(lhs_attrs) | set(rhs_attrs))
    if not all_attrs:
        return dirty, []

    total_cells = len(relation) * len(all_attrs)
    n_errors = int(round(config.error_rate * total_cells))
    n_rhs = int(round(n_errors * config.rhs_share))
    n_lhs = int(round(n_errors * config.lhs_share))
    n_typo = n_errors - n_rhs - n_lhs

    domains: Dict[str, List[object]] = {
        attr: relation.active_domain(attr) for attr in all_attrs
    }
    used: Set[Cell] = set()
    errors: List[InjectedError] = []

    def corrupt(count: int, attrs: Sequence[str], kind: ErrorKind) -> None:
        attempts = 0
        budget = count * 50 + 100
        placed = 0
        while placed < count and attempts < budget:
            attempts += 1
            attr = attrs[random_state.randrange(len(attrs))]
            tid = random_state.randrange(len(relation))
            cell = (tid, attr)
            if cell in used:
                continue
            clean = dirty.value(tid, attr)
            if kind is ErrorKind.TYPO:
                new = _typo(
                    clean,
                    relation,
                    attr,
                    config.max_typo_edits,
                    random_state,
                )
            else:
                new = _active_domain_swap(clean, domains[attr], random_state)
            if new is None or new == clean:
                continue
            dirty.set_value(tid, attr, new)
            used.add(cell)
            errors.append(InjectedError(tid, attr, clean, new, kind))
            placed += 1

    corrupt(n_rhs, rhs_attrs, ErrorKind.RHS)
    corrupt(n_lhs, lhs_attrs, ErrorKind.LHS)
    corrupt(n_typo, all_attrs, ErrorKind.TYPO)
    return dirty, errors


def inject_outliers(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    error_rate: float = 0.02,
    magnitude: float = 8.0,
    rng: SeedLike = None,
) -> Tuple[Relation, List[InjectedError]]:
    """Corrupt numeric cells with values far outside the column's spread.

    Each picked cell is shifted by ``direction * magnitude * spread``
    where *spread* is the column's max-min range (falling back to
    ``max(|value|, 1)`` for constant columns), producing points a
    robust dispersion test flags while FD detection stays blind to
    them. *attributes* defaults to every numeric attribute.
    """
    if not 0.0 <= error_rate < 1.0:
        raise ValueError("error_rate must be in [0, 1)")
    random_state = make_rng(rng)
    dirty = relation.copy()
    if attributes is None:
        attributes = [
            a for a in relation.schema.names
            if relation.schema.kind_of(a) == NUMERIC
        ]
    else:
        for attr in attributes:
            if relation.schema.kind_of(attr) != NUMERIC:
                raise ValueError(f"attribute {attr!r} is not numeric")
    attributes = list(attributes)
    if not attributes or not len(relation):
        return dirty, []

    spreads: Dict[str, float] = {}
    for attr in attributes:
        domain = [float(v) for v in relation.active_domain(attr)]
        spread = max(domain) - min(domain) if domain else 0.0
        if spread <= 0.0:
            spread = max((abs(v) for v in domain), default=1.0) or 1.0
        spreads[attr] = spread

    n_errors = int(round(error_rate * len(relation) * len(attributes)))
    used: Set[Cell] = set()
    errors: List[InjectedError] = []
    attempts, budget = 0, n_errors * 50 + 100
    while len(errors) < n_errors and attempts < budget:
        attempts += 1
        attr = attributes[random_state.randrange(len(attributes))]
        tid = random_state.randrange(len(relation))
        cell = (tid, attr)
        if cell in used:
            continue
        clean = dirty.value(tid, attr)
        direction = 1.0 if random_state.random() < 0.5 else -1.0
        shift = direction * magnitude * spreads[attr]
        new = round(float(clean) + shift, 6)
        if new == clean:
            continue
        dirty.set_value(tid, attr, new)
        used.add(cell)
        errors.append(InjectedError(tid, attr, clean, new, ErrorKind.OUTLIER))
    return dirty, errors


def error_cells(errors: Sequence[InjectedError]) -> Dict[Cell, object]:
    """cell -> clean value, the ground-truth view the metrics consume."""
    return {error.cell: error.clean for error in errors}


# ----------------------------------------------------------------------
# Corruption primitives
# ----------------------------------------------------------------------
def _active_domain_swap(
    clean: object, domain: Sequence[object], rng: random.Random
) -> Optional[object]:
    """A different value of the same attribute, or None when impossible."""
    candidates = [value for value in domain if value != clean]
    if not candidates:
        return None
    return candidates[rng.randrange(len(candidates))]


_TYPO_ALPHABET = string.ascii_lowercase


def _typo(
    clean: object,
    relation: Relation,
    attribute: str,
    max_edits: int,
    rng: random.Random,
) -> Optional[object]:
    """One or two random character edits; numeric cells get a grid shift."""
    if relation.schema.kind_of(attribute) == NUMERIC:
        domain = sorted(set(relation.active_domain(attribute)))
        if len(domain) < 2:
            return None
        index = domain.index(clean) if clean in domain else 0
        neighbor = index + (1 if index + 1 < len(domain) else -1)
        return domain[neighbor]
    text = str(clean)
    if not text:
        return None
    edits = rng.randint(1, max(1, max_edits))
    for _ in range(edits):
        text = _one_edit(text, rng)
    return text


def _one_edit(text: str, rng: random.Random) -> str:
    operation = rng.randrange(3)
    if operation == 0 and len(text) > 1:  # delete
        pos = rng.randrange(len(text))
        return text[:pos] + text[pos + 1 :]
    if operation == 1:  # insert
        pos = rng.randrange(len(text) + 1)
        return text[:pos] + rng.choice(_TYPO_ALPHABET) + text[pos:]
    pos = rng.randrange(len(text))  # substitute
    replacement = rng.choice(_TYPO_ALPHABET)
    while replacement == text[pos]:
        replacement = rng.choice(_TYPO_ALPHABET)
    return text[:pos] + replacement + text[pos + 1 :]
