"""Missing-value bursts: the ``null-bursts`` scenario's error profile.

Real feeds rarely drop values uniformly — an upstream outage blanks a
column for a *run* of consecutive rows (a half-written batch, a joined
source that went away). :func:`inject_nulls` reproduces that shape:
errors arrive in bursts of consecutive tuple ids on one attribute, each
cell replaced by a null token the
:class:`~repro.detect.builtin.NullDetector` recognises.

Only string attributes are eligible — the columnar substrate coerces
numeric cells, and a numeric NaN would change the column's statistics
that the outlier scenario owns. See ``docs/scenarios.md``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.dataset.relation import NUMERIC, Cell, Relation
from repro.generator.noise import ErrorKind, InjectedError
from repro.utils.rng import SeedLike, make_rng

#: Tokens a burst writes, cycled per burst so the dirty relation mixes
#: spellings the way concatenated exports do. All are recognised by
#: ``NullDetector``'s default token set.
NULL_TOKENS: Tuple[str, ...] = ("", "NULL", "n/a", "?")


def inject_nulls(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    error_rate: float = 0.02,
    burst_length: int = 5,
    rng: SeedLike = None,
) -> Tuple[Relation, List[InjectedError]]:
    """Blank cells in bursts of consecutive tuples; return (dirty, log).

    ``error_rate`` is the fraction of cells over the eligible string
    *attributes* (default: all of them) to blank; bursts of
    ``burst_length`` consecutive tids are placed on one attribute at a
    time until the budget is spent. Cells already null-ish are skipped
    (corrupting them would be a no-op the ground-truth log must not
    claim). The input relation is never modified.
    """
    if not 0.0 <= error_rate < 1.0:
        raise ValueError("error_rate must be in [0, 1)")
    if burst_length < 1:
        raise ValueError("burst_length must be >= 1")
    random_state = make_rng(rng)
    dirty = relation.copy()
    if attributes is None:
        attributes = [
            a for a in relation.schema.names
            if relation.schema.kind_of(a) != NUMERIC
        ]
    else:
        for attr in attributes:
            if relation.schema.kind_of(attr) == NUMERIC:
                raise ValueError(
                    f"attribute {attr!r} is numeric; null bursts cover "
                    "string attributes only (docs/scenarios.md)"
                )
    attributes = list(attributes)
    if not attributes or not len(relation):
        return dirty, []

    n_errors = int(round(error_rate * len(relation) * len(attributes)))
    used: Set[Cell] = set()
    errors: List[InjectedError] = []
    attempts, budget = 0, n_errors * 20 + 100
    burst_index = 0
    while len(errors) < n_errors and attempts < budget:
        attempts += 1
        attr = attributes[random_state.randrange(len(attributes))]
        start = random_state.randrange(len(relation))
        token = NULL_TOKENS[burst_index % len(NULL_TOKENS)]
        burst_index += 1
        for tid in range(start, min(start + burst_length, len(relation))):
            if len(errors) >= n_errors:
                break
            cell = (tid, attr)
            if cell in used:
                continue
            clean = dirty.value(tid, attr)
            if _is_nullish(clean):
                continue
            dirty.set_value(tid, attr, token)
            used.add(cell)
            errors.append(
                InjectedError(tid, attr, clean, token, ErrorKind.NULL)
            )
    return dirty, errors


def _is_nullish(value: object) -> bool:
    if value is None or value != value:
        return True
    return isinstance(value, str) and value.strip().lower() in {
        "", "na", "n/a", "null", "none", "nil", "-", "?",
    }
