"""Controlled-separation vocabularies.

The FT-violation semantics hinges on distance geometry: a threshold tau
can split error pairs from legitimate pairs only when the clean values of
an attribute are *more distant from each other* than any single-cell
corruption. The real datasets the paper uses (HOSP, Tax) have this
property for the constrained attributes — provider numbers, measure
codes, zip codes, phone numbers and proper names are mutually dissimilar
strings — and the generators reproduce it deliberately:

every vocabulary word is ``prefix + suffix`` with a fixed per-domain
prefix and suffixes kept at pairwise Levenshtein distance within
``[min_edits, len(suffix)]`` by rejection sampling. With word length
``L`` this pins pairwise normalized edit distance into
``[min_edits/L, len(suffix)/L]`` exactly, which lets
:func:`repro.generator.entities.analytic_threshold` place tau with a
provable margin.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.distances import levenshtein
from repro.utils.rng import SeedLike, make_rng

#: Alphabet for generated suffixes; no vowels keeps accidental words out.
_ALPHABET = "bcdfghjklmnpqrstvwxz"


def build_vocabulary(
    prefix: str,
    count: int,
    suffix_length: int = 5,
    min_edits: int = 3,
    rng: SeedLike = None,
    max_attempts: int = 200_000,
) -> List[str]:
    """*count* words ``prefix + suffix`` with controlled pairwise distance.

    Every pair of words has Levenshtein distance in
    ``[min_edits, suffix_length]``: the upper bound holds because words
    only differ in the suffix; the lower bound is enforced by rejection.

    >>> words = build_vocabulary("hosp", 5, rng=7)
    >>> all(w.startswith("hosp") for w in words)
    True
    """
    if min_edits > suffix_length:
        raise ValueError("min_edits cannot exceed suffix_length")
    random_state = make_rng(rng)
    words: List[str] = []
    suffixes: List[str] = []
    attempts = 0
    while len(words) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} words at min_edits={min_edits} "
                f"with suffix_length={suffix_length}; lower the separation "
                "or raise suffix_length"
            )
        candidate = "".join(
            random_state.choice(_ALPHABET) for _ in range(suffix_length)
        )
        if all(
            levenshtein(candidate, other, upper_bound=min_edits - 1) >= min_edits
            for other in suffixes
        ):
            suffixes.append(candidate)
            words.append(prefix + candidate)
    return words


def vocabulary_separation(words: Sequence[str]) -> Tuple[float, float]:
    """(min, max) pairwise normalized edit distance of a vocabulary.

    Exposed for tests and for documenting generated-domain geometry.
    """
    if len(words) < 2:
        return (0.0, 0.0)
    lo, hi = 1.0, 0.0
    for i, a in enumerate(words):
        for b in words[i + 1 :]:
            ned = levenshtein(a, b) / max(len(a), len(b))
            lo = min(lo, ned)
            hi = max(hi, ned)
    return lo, hi


def numeric_domain(
    count: int, low: float, high: float, rng: SeedLike = None
) -> List[float]:
    """*count* distinct numeric values spread over [low, high].

    Values sit on an evenly spaced grid with small jitter, so any two
    differ by at least half a grid step — numeric attributes get the same
    "no accidental near-duplicates" guarantee as string vocabularies.
    """
    if count < 1:
        raise ValueError("count must be positive")
    random_state = make_rng(rng)
    if count == 1:
        return [round((low + high) / 2.0, 2)]
    step = (high - low) / (count - 1)
    values = [
        round(low + i * step + random_state.uniform(-0.2, 0.2) * step, 2)
        for i in range(count)
    ]
    # Jitter cannot collide values (|jitter| <= 0.2 * step), but guard anyway.
    if len(set(values)) != count:
        values = [round(low + i * step, 2) for i in range(count)]
    return values
