"""HOSP-like workload generator.

The paper's HOSP dataset (US Dept. of Health & Human Services hospital
quality data; 19 attributes, 9 FDs) is not redistributable, so this
module generates an instance with the same *shape*: hospital facilities
whose key-like attributes (provider number, phone, zip) functionally
determine descriptive attributes (name, address, city, state, county,
type, owner), plus quality measures (measure code determining name,
condition and state average). See DESIGN.md for why the substitution
preserves the evaluated behaviour: the experiments' signal is the
injected noise, and the clean instance only needs to carry FD-governed
redundancy with separable value geometry — which real HOSP has and this
generator enforces.

Attribute values come from :func:`repro.generator.vocab.build_vocabulary`
with a 2-character domain prefix and 5-character suffixes at pairwise
edit distance >= 3, pinning clean-pair distances into [3/7, 5/7]; the
per-FD thresholds derived from that geometry provably separate
single-cell corruptions from clean pattern pairs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.constraints import FD
from repro.core.distances import Weights
from repro.dataset.relation import Relation, Schema
from repro.generator.entities import (
    DomainGeometry,
    EntityCatalog,
    EntityClass,
    analytic_threshold,
)
from repro.generator.vocab import build_vocabulary, numeric_domain
from repro.utils.rng import SeedLike, make_rng

_SUFFIX_LENGTH = 5
_MIN_EDITS = 3
_WORD_LENGTH = 2 + _SUFFIX_LENGTH  # 2-char prefix + suffix
_STRING_GEOMETRY = DomainGeometry(
    min_ned=_MIN_EDITS / _WORD_LENGTH,
    max_ned=_SUFFIX_LENGTH / _WORD_LENGTH,
)
_UNBOUNDED = DomainGeometry(min_ned=None, max_ned=None)

HOSP_SCHEMA = Schema.of(
    "ProviderNumber",
    "HospitalName",
    "Address",
    "City",
    "State",
    "ZipCode",
    "CountyName",
    "PhoneNumber",
    "HospitalType",
    "HospitalOwner",
    "EmergencyService",
    "Condition",
    "MeasureCode",
    "MeasureName",
    "StateAvg",
    "Score",
    "Sample",
    "Quarter",
    "Source",
    numeric=["StateAvg", "Score", "Sample"],
)

#: The nine FDs, in the order used by the #-FDs sweeps (Figs. 6/9/12/15).
HOSP_FDS: List[FD] = [
    FD.parse("ZipCode -> City, State", name="h1"),
    FD.parse("PhoneNumber -> ZipCode", name="h2"),
    FD.parse("ProviderNumber -> HospitalName, Address", name="h3"),
    FD.parse("ProviderNumber -> PhoneNumber", name="h4"),
    FD.parse("City -> CountyName", name="h5"),
    FD.parse("ProviderNumber -> HospitalType, HospitalOwner", name="h6"),
    FD.parse("MeasureCode -> MeasureName", name="h7"),
    FD.parse("MeasureCode -> Condition", name="h8"),
    FD.parse("MeasureCode -> StateAvg", name="h9"),
]

_FACILITY_ATTRS = (
    "ProviderNumber",
    "HospitalName",
    "Address",
    "City",
    "State",
    "ZipCode",
    "CountyName",
    "PhoneNumber",
    "HospitalType",
    "HospitalOwner",
    "EmergencyService",
)
_MEASURE_ATTRS = ("MeasureCode", "MeasureName", "Condition", "StateAvg")

_PREFIXES = {
    "ProviderNumber": "pv",
    "HospitalName": "hn",
    "Address": "ad",
    "City": "ct",
    "State": "st",
    "ZipCode": "zp",
    "CountyName": "cn",
    "PhoneNumber": "ph",
    "HospitalType": "ht",
    "HospitalOwner": "ho",
    "EmergencyService": "es",
    "MeasureCode": "mc",
    "MeasureName": "mn",
    "Condition": "cd",
}

#: Clean-pair distance geometry of every attribute (see module docstring).
HOSP_GEOMETRY: Dict[str, DomainGeometry] = {
    **{attr: _STRING_GEOMETRY for attr in _PREFIXES},
    "StateAvg": _UNBOUNDED,
    "Score": _UNBOUNDED,
    "Sample": _UNBOUNDED,
    "Quarter": _UNBOUNDED,
    "Source": _UNBOUNDED,
}


def hosp_fds(count: Optional[int] = None) -> List[FD]:
    """The first *count* FDs (all nine when omitted)."""
    if count is None:
        return list(HOSP_FDS)
    if not 1 <= count <= len(HOSP_FDS):
        raise ValueError(f"count must be in [1, {len(HOSP_FDS)}]")
    return HOSP_FDS[:count]


def hosp_thresholds(
    fds: Optional[Sequence[FD]] = None, weights: Weights = Weights()
) -> Dict[FD, float]:
    """Analytic per-FD taus for HOSP instances."""
    return {
        fd: analytic_threshold(fd, HOSP_GEOMETRY, weights)
        for fd in (fds if fds is not None else HOSP_FDS)
    }


def hosp_catalog(
    n_facilities: int, n_measures: int, rng: SeedLike = None
) -> EntityCatalog:
    """Master tables for *n_facilities* hospitals and *n_measures* measures."""
    random_state = make_rng(rng)
    facility_columns = {
        attr: build_vocabulary(
            _PREFIXES[attr],
            n_facilities,
            suffix_length=_SUFFIX_LENGTH,
            min_edits=_MIN_EDITS,
            rng=random_state,
        )
        for attr in _FACILITY_ATTRS
    }
    measure_columns = {
        attr: build_vocabulary(
            _PREFIXES[attr],
            n_measures,
            suffix_length=_SUFFIX_LENGTH,
            min_edits=_MIN_EDITS,
            rng=random_state,
        )
        for attr in _MEASURE_ATTRS
        if attr != "StateAvg"
    }
    state_avg = numeric_domain(n_measures, 50.0, 99.0, rng=random_state)
    facilities = EntityClass(
        "facility",
        _FACILITY_ATTRS,
        [
            tuple(facility_columns[attr][i] for attr in _FACILITY_ATTRS)
            for i in range(n_facilities)
        ],
    )
    measures = EntityClass(
        "measure",
        _MEASURE_ATTRS,
        [
            (
                measure_columns["MeasureCode"][i],
                measure_columns["MeasureName"][i],
                measure_columns["Condition"][i],
                state_avg[i],
            )
            for i in range(n_measures)
        ],
    )
    quarters = ["Q1", "Q2", "Q3", "Q4"]
    return EntityCatalog(
        schema=HOSP_SCHEMA,
        entity_classes=[facilities, measures],
        free_attributes={
            "Score": lambda r: float(r.randint(0, 100)),
            "Sample": lambda r: float(r.randint(10, 5000)),
            "Quarter": lambda r: r.choice(quarters),
            "Source": lambda r: r.choice(["survey", "claims"]),
        },
        geometry=dict(HOSP_GEOMETRY),
    )


def generate_hosp(
    n: int,
    rng: SeedLike = 0,
    n_facilities: Optional[int] = None,
    n_measures: Optional[int] = None,
) -> Relation:
    """A clean HOSP-like instance with *n* tuples.

    Entity counts default to ~n/40 facilities and ~n/50 measures with a
    mild Zipf skew, matching the multiplicity profile of the paper's
    real data: every correct pattern is carried by dozens of tuples, so
    the cost model anchors repairs on the truth rather than on cheap
    typo variants (see DESIGN.md, "multiplicity geometry").
    """
    if n < 1:
        raise ValueError("n must be positive")
    random_state = make_rng(rng)
    n_facilities = n_facilities if n_facilities is not None else max(5, n // 40)
    n_measures = n_measures if n_measures is not None else max(4, n // 50)
    catalog = hosp_catalog(n_facilities, n_measures, rng=random_state)
    return catalog.generate(n, rng=random_state)
