"""Skewed workload generator: one dominant violation-graph component.

The HOSP/Tax generators produce many similarly-sized components — the
friendly case for component-sharded parallelism. This module generates
its adversary: a relation whose violation graph has **one giant
connected component** holding a configurable fraction of the vertices,
plus a fringe of small ones. Static component scheduling flatlines on it
(the giant is a single task); it exists to exercise — and benchmark —
the adaptive subtree splitting in :mod:`repro.exec`
(``docs/parallelism.md``).

Construction: every FD's LHS attribute is populated with *staircase
chains*. Chain ``c`` contributes values

    ``prefix(c) + "b" * i + "a" * (S - i)``        for ``i = 0..len-1``

over a fixed stair width ``S``, so two values of the same chain are
exactly ``|i - j|`` substitutions apart and two values of different
chains at least 3 (the 3-letter prefixes are pairwise 3 edits apart).
Each chain maps to a single RHS value, so adjacent stairs differ in
projection while their Eq. (2) distance is ``w_lhs * 1 / W`` (width
``W = 3 + S``). The analytic threshold ``tau = w_lhs * 1.5 / W`` then
makes **exactly the adjacent stairs** FT-violations: each chain becomes
a path in the violation graph — connected, and with a maximal-
independent-set count that grows as the Fibonacci numbers of its
length, the worst-case search profile for one component.

``dominance`` controls skew: the giant FD gets one chain of ``chain``
vertices plus small chains totalling ``round(chain * (1 - f) / f)``
vertices, so the giant holds fraction ``f`` of that FD's graph. The two
satellite FDs (attribute-disjoint, hence separate FD-graph components)
carry only small chains — their tasks exist so largest-first submission
and subtree interleaving have something to overlap with.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import Weights
from repro.dataset.relation import Relation, Schema

#: chain prefixes are 3 repeats of one letter: pairwise 3 edits apart
_PREFIX_LETTERS = string.ascii_lowercase
_PREFIX_LEN = 3

#: stairs of a small (fringe) chain
_SMALL_CHAIN = 4

SKEW_SCHEMA = Schema.of("Code", "Name", "City", "State", "Zip", "County")

SKEW_FDS: List[FD] = [
    FD.parse("Code -> Name", name="s1"),  #: the giant component's FD
    FD.parse("City -> State", name="s2"),
    FD.parse("Zip -> County", name="s3"),
]


def _chain_lengths(total: int, chain: int) -> List[int]:
    """Split *total* fringe vertices into small chains."""
    lengths: List[int] = []
    remaining = total
    while remaining > 0:
        size = min(_SMALL_CHAIN, remaining)
        # a 1-vertex chain is an isolated pattern, still a component
        lengths.append(size)
        remaining -= size
    if len(lengths) + 1 > len(_PREFIX_LETTERS):
        raise ValueError(
            f"dominance/chain combination needs {len(lengths) + 1} chains; "
            f"at most {len(_PREFIX_LETTERS)} per attribute are supported"
        )
    return lengths


def _stair_values(
    lengths: Sequence[int],
) -> Tuple[List[List[str]], int]:
    """Per-chain staircase LHS values over one shared stair width.

    Returns (values per chain, total string width W). All values of the
    attribute share the same length, so same-chain distances are pure
    substitution counts: ``ned = |i - j| / W``.
    """
    stairs = max(length - 1 for length in lengths)
    width = _PREFIX_LEN + stairs
    chains: List[List[str]] = []
    for c, length in enumerate(lengths):
        prefix = _PREFIX_LETTERS[c] * _PREFIX_LEN
        chains.append(
            [prefix + "b" * i + "a" * (stairs - i) for i in range(length)]
        )
    return chains, width


def _fd_patterns(
    lengths: Sequence[int], rhs_stub: str
) -> Tuple[List[Tuple[str, str]], int]:
    """(LHS, RHS) patterns of one FD's chains and the LHS width."""
    chains, width = _stair_values(lengths)
    patterns: List[Tuple[str, str]] = []
    for c, values in enumerate(chains):
        rhs = f"{rhs_stub}{c:03d}"
        patterns.extend((value, rhs) for value in values)
    return patterns, width


def skew_chain_lengths(
    dominance: float = 0.9, chain: int = 24
) -> List[int]:
    """Chain lengths of the giant FD: the dominant chain, then fringe."""
    if not 0.0 < dominance <= 1.0:
        raise ValueError(f"dominance must be in (0, 1], got {dominance}")
    if chain < 2:
        raise ValueError(f"chain must be >= 2, got {chain}")
    fringe = int(round(chain * (1.0 - dominance) / dominance))
    return [chain] + _chain_lengths(fringe, chain)


def generate_skew(
    n: int,
    dominance: float = 0.9,
    chain: int = 24,
    small_chains: int = 3,
) -> Relation:
    """A relation of *n* rows whose violation graph is *dominance*-skewed.

    ``chain`` is the giant path's vertex count — the search over it
    visits ~Fib(chain) nodes, so it is the knob that makes the dominant
    component expensive. ``small_chains`` is the chain count of *each*
    satellite FD. Rows cycle over the patterns of every FD
    independently, so multiplicities are near-uniform and every pattern
    is populated. The generator is fully deterministic: same arguments,
    same relation.
    """
    giant_patterns, _ = _fd_patterns(
        skew_chain_lengths(dominance, chain), "nm"
    )
    city_patterns, _ = _fd_patterns([_SMALL_CHAIN] * small_chains, "st")
    zip_patterns, _ = _fd_patterns([_SMALL_CHAIN] * small_chains, "co")
    if n < len(giant_patterns):
        raise ValueError(
            f"need n >= {len(giant_patterns)} rows to populate every "
            f"pattern, got {n}"
        )
    relation = Relation(SKEW_SCHEMA)
    for t in range(n):
        code, name = giant_patterns[t % len(giant_patterns)]
        city, state = city_patterns[t % len(city_patterns)]
        zip_, county = zip_patterns[t % len(zip_patterns)]
        relation.append((code, name, city, state, zip_, county))
    return relation


def skew_thresholds(
    fds: Optional[Sequence[FD]] = None,
    weights: Weights = Weights(),
    dominance: float = 0.9,
    chain: int = 24,
) -> Dict[FD, float]:
    """Analytic taus making exactly the adjacent stairs FT-violations.

    Same-chain neighbours sit at ``w_lhs * 1 / W``; the next candidates
    are two stairs (``w_lhs * 2 / W``) or another chain (at least
    ``w_lhs * 3 / W`` before the RHS term). ``tau = w_lhs * 1.5 / W``
    separates the two with margin on both sides. The width ``W`` of
    each attribute follows from the same arguments passed to
    :func:`generate_skew`.
    """
    lengths = skew_chain_lengths(dominance, chain)
    giant_stairs = max(length - 1 for length in lengths)
    widths = {
        "s1": _PREFIX_LEN + giant_stairs,
        "s2": _PREFIX_LEN + _SMALL_CHAIN - 1,
        "s3": _PREFIX_LEN + _SMALL_CHAIN - 1,
    }
    out: Dict[FD, float] = {}
    for fd in fds if fds is not None else SKEW_FDS:
        width = widths.get(fd.name)
        if width is None:
            raise ValueError(f"unknown skew FD {fd.name!r}")
        out[fd] = weights.lhs * 1.5 / width
    return out
