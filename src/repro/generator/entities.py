"""Entity-driven instance generation with analytic threshold geometry.

Both workload generators (HOSP, Tax) follow the same recipe:

1. Build **entity classes** — master tables whose attributes are tied
   together functionally (a facility owns its provider number, name,
   phone, zip, city...). Every attribute value is unique to one entity
   (*injective per attribute*), mirroring the key-like LHS attributes of
   the paper's real FDs; this is what makes legitimate pattern pairs
   provably more distant than single-cell corruptions.
2. Sample N rows: each row picks one entity per class (Zipf-skewed, so
   correct patterns carry high multiplicity) and copies its attributes;
   free attributes are drawn per row.
3. Derive per-FD thresholds **analytically** from the vocabulary
   geometry (:func:`analytic_threshold`): tau sits just below the
   minimum distance any two clean patterns can have, and well above the
   maximum distance a single swapped or typo'd cell can introduce.

The resulting instances satisfy all declared FDs exactly; errors are
added afterwards by :mod:`repro.generator.noise`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import Weights
from repro.dataset.relation import Relation, Schema
from repro.utils.rng import SeedLike, make_rng


class AttributeRole(Enum):
    """How an attribute participates in the generated instance."""

    ENTITY = "entity"  # functionally tied to an entity class
    FREE = "free"  # per-row value, not constrained by any FD


@dataclass(frozen=True)
class DomainGeometry:
    """Pairwise normalized-edit-distance bounds of a clean vocabulary.

    ``None`` bounds mark numeric or free attributes, whose clean-pair
    separation is not guaranteed.
    """

    min_ned: Optional[float]
    max_ned: Optional[float]


@dataclass
class EntityClass:
    """A master table: attribute names plus one record per entity."""

    name: str
    attributes: Tuple[str, ...]
    records: List[Tuple]

    def __post_init__(self) -> None:
        for record in self.records:
            if len(record) != len(self.attributes):
                raise ValueError(
                    f"entity class {self.name}: record arity mismatch"
                )

    def __len__(self) -> int:
        return len(self.records)


@dataclass(frozen=True)
class FDSpec:
    """An FD together with its generator-recommended threshold."""

    fd: FD
    threshold: float


@dataclass
class EntityCatalog:
    """Everything needed to emit instances of one synthetic schema."""

    schema: Schema
    entity_classes: List[EntityClass]
    free_attributes: Dict[str, Callable]
    geometry: Dict[str, DomainGeometry] = field(default_factory=dict)
    #: Mild skew by default: heavy Zipf tails starve rare entities of
    #: multiplicity, at which point minimum-cost repair provably prefers
    #: crowning a typo pattern over keeping the truth (the cost of
    #: restoring the satellites exceeds mult * typo distance).
    zipf_exponent: float = 0.3

    def __post_init__(self) -> None:
        owned = [a for cls in self.entity_classes for a in cls.attributes]
        if len(owned) != len(set(owned)):
            raise ValueError("an attribute is owned by two entity classes")
        covered = set(owned) | set(self.free_attributes)
        missing = [a for a in self.schema.names if a not in covered]
        if missing:
            raise ValueError(f"attributes with no source: {missing}")

    # ------------------------------------------------------------------
    def generate(self, n: int, rng: SeedLike = None) -> Relation:
        """Emit a clean instance with *n* tuples."""
        random_state = make_rng(rng)
        weights = {
            cls.name: _zipf_weights(len(cls), self.zipf_exponent)
            for cls in self.entity_classes
        }
        relation = Relation(self.schema)
        positions = {
            name: self.schema.index_of(name) for name in self.schema.names
        }
        for _ in range(n):
            row: List[object] = [None] * len(self.schema)
            for cls in self.entity_classes:
                record = cls.records[
                    _weighted_choice(weights[cls.name], random_state)
                ]
                for attr, value in zip(cls.attributes, record):
                    row[positions[attr]] = value
            for attr, sampler in self.free_attributes.items():
                row[positions[attr]] = sampler(random_state)
            relation.append(row)
        return relation

    # ------------------------------------------------------------------
    def threshold_for(
        self, fd: FD, weights: Weights = Weights(), margin: float = 0.03
    ) -> float:
        """Analytic tau for *fd* on instances of this catalog."""
        return analytic_threshold(fd, self.geometry, weights, margin)


def analytic_threshold(
    fd: FD,
    geometry: Dict[str, DomainGeometry],
    weights: Weights = Weights(),
    margin: float = 0.03,
) -> float:
    """Place tau just below the minimum clean-pair distance of *fd*.

    Two distinct clean patterns differ in *every* attribute of the FD
    (injective-per-attribute generation), so their Eq. (2) distance is at
    least ``sum_A w_A * min_ned_A`` over the string attributes (numeric
    attributes contribute an unguaranteed amount, counted as zero).
    Anything below that bound is necessarily an error pair: a single
    corrupted cell moves a pattern by at most ``w_A * max_ned_A``, which
    the generators keep below the bound by construction. tau is the bound
    minus a safety *margin*.
    """
    legit_min = 0.0
    for pos, attr in enumerate(fd.attributes):
        geom = geometry.get(attr)
        if geom is None or geom.min_ned is None:
            continue
        weight = weights.lhs if pos < len(fd.lhs) else weights.rhs
        legit_min += weight * geom.min_ned
    if legit_min <= margin:
        raise ValueError(
            f"FD {fd.name}: clean-pair separation {legit_min:.3f} too small "
            "for a meaningful threshold (all-numeric constraint?)"
        )
    return round(legit_min - margin, 4)


def single_cell_error_bound(
    fd: FD, geometry: Dict[str, DomainGeometry], weights: Weights = Weights()
) -> float:
    """Largest Eq. (2) distance a single swapped string cell can cause.

    Used by tests to certify ``error_bound < tau < legit_min``.
    """
    worst = 0.0
    for pos, attr in enumerate(fd.attributes):
        geom = geometry.get(attr)
        if geom is None or geom.max_ned is None:
            continue
        weight = weights.lhs if pos < len(fd.lhs) else weights.rhs
        worst = max(worst, weight * geom.max_ned)
    return worst


# ----------------------------------------------------------------------
# Zipf sampling
# ----------------------------------------------------------------------
def _zipf_weights(count: int, exponent: float) -> List[float]:
    """Cumulative Zipf weights for ``count`` ranks."""
    raw = [1.0 / math.pow(rank, exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    cumulative: List[float] = []
    acc = 0.0
    for weight in raw:
        acc += weight / total
        cumulative.append(acc)
    cumulative[-1] = 1.0
    return cumulative


def _weighted_choice(cumulative: Sequence[float], rng) -> int:
    """Index sampled according to cumulative weights (binary search)."""
    import bisect

    return bisect.bisect_left(cumulative, rng.random())
