"""Tax-like workload generator.

The paper's Tax dataset comes from a non-distributable generator
("each record represented an individual's address and tax information",
9 FDs). This stand-in emits person records whose residence attributes
(phone, area code, zip, city, state, county) and employment/filing
attributes (employer id -> name/industry, filing code -> marital
status/rate) obey 9 FDs with the same shape. The vocabulary geometry
and threshold derivation mirror :mod:`repro.generator.hosp`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.constraints import FD
from repro.core.distances import Weights
from repro.dataset.relation import Relation, Schema
from repro.generator.entities import (
    DomainGeometry,
    EntityCatalog,
    EntityClass,
    analytic_threshold,
)
from repro.generator.vocab import build_vocabulary, numeric_domain
from repro.utils.rng import SeedLike, make_rng

_SUFFIX_LENGTH = 5
_MIN_EDITS = 3
_WORD_LENGTH = 2 + _SUFFIX_LENGTH
_STRING_GEOMETRY = DomainGeometry(
    min_ned=_MIN_EDITS / _WORD_LENGTH,
    max_ned=_SUFFIX_LENGTH / _WORD_LENGTH,
)
_UNBOUNDED = DomainGeometry(min_ned=None, max_ned=None)

TAX_SCHEMA = Schema.of(
    "FName",
    "LName",
    "Gender",
    "AreaCode",
    "Phone",
    "City",
    "State",
    "ZipCode",
    "County",
    "EmployerID",
    "EmployerName",
    "Industry",
    "FilingCode",
    "MaritalStatus",
    "Rate",
    "Salary",
    numeric=["Rate", "Salary"],
)

#: The nine FDs, in #-FDs sweep order.
TAX_FDS: List[FD] = [
    FD.parse("ZipCode -> City, State", name="x1"),
    FD.parse("AreaCode -> City", name="x2"),
    FD.parse("Phone -> AreaCode, ZipCode", name="x3"),
    FD.parse("City -> County", name="x4"),
    FD.parse("Phone -> State", name="x5"),
    FD.parse("EmployerID -> EmployerName", name="x6"),
    FD.parse("EmployerID -> Industry", name="x7"),
    FD.parse("FilingCode -> MaritalStatus", name="x8"),
    FD.parse("FilingCode -> Rate", name="x9"),
]

_RESIDENCE_ATTRS = ("Phone", "AreaCode", "ZipCode", "City", "State", "County")
_EMPLOYER_ATTRS = ("EmployerID", "EmployerName", "Industry")
_FILING_ATTRS = ("FilingCode", "MaritalStatus", "Rate")

_PREFIXES = {
    "Phone": "pn",
    "AreaCode": "ar",
    "ZipCode": "zc",
    "City": "cy",
    "State": "sa",
    "County": "cu",
    "EmployerID": "ei",
    "EmployerName": "eb",
    "Industry": "iy",
    "FilingCode": "fg",
    "MaritalStatus": "ml",
}

TAX_GEOMETRY: Dict[str, DomainGeometry] = {
    **{attr: _STRING_GEOMETRY for attr in _PREFIXES},
    "Rate": _UNBOUNDED,
    "Salary": _UNBOUNDED,
    "FName": _UNBOUNDED,
    "LName": _UNBOUNDED,
    "Gender": _UNBOUNDED,
}


def tax_fds(count: Optional[int] = None) -> List[FD]:
    """The first *count* FDs (all nine when omitted)."""
    if count is None:
        return list(TAX_FDS)
    if not 1 <= count <= len(TAX_FDS):
        raise ValueError(f"count must be in [1, {len(TAX_FDS)}]")
    return TAX_FDS[:count]


def tax_thresholds(
    fds: Optional[Sequence[FD]] = None, weights: Weights = Weights()
) -> Dict[FD, float]:
    """Analytic per-FD taus for Tax instances."""
    return {
        fd: analytic_threshold(fd, TAX_GEOMETRY, weights)
        for fd in (fds if fds is not None else TAX_FDS)
    }


def tax_catalog(
    n_residences: int,
    n_employers: int,
    n_filings: int,
    rng: SeedLike = None,
) -> EntityCatalog:
    """Master tables for the three Tax entity classes."""
    random_state = make_rng(rng)

    def vocab(attr: str, count: int) -> List[str]:
        return build_vocabulary(
            _PREFIXES[attr],
            count,
            suffix_length=_SUFFIX_LENGTH,
            min_edits=_MIN_EDITS,
            rng=random_state,
        )

    residence_cols = {a: vocab(a, n_residences) for a in _RESIDENCE_ATTRS}
    employer_cols = {a: vocab(a, n_employers) for a in _EMPLOYER_ATTRS}
    filing_strings = {
        a: vocab(a, n_filings) for a in _FILING_ATTRS if a != "Rate"
    }
    rates = numeric_domain(n_filings, 1.0, 12.0, rng=random_state)

    residences = EntityClass(
        "residence",
        _RESIDENCE_ATTRS,
        [
            tuple(residence_cols[a][i] for a in _RESIDENCE_ATTRS)
            for i in range(n_residences)
        ],
    )
    employers = EntityClass(
        "employer",
        _EMPLOYER_ATTRS,
        [
            tuple(employer_cols[a][i] for a in _EMPLOYER_ATTRS)
            for i in range(n_employers)
        ],
    )
    filings = EntityClass(
        "filing",
        _FILING_ATTRS,
        [
            (
                filing_strings["FilingCode"][i],
                filing_strings["MaritalStatus"][i],
                rates[i],
            )
            for i in range(n_filings)
        ],
    )
    first_names = ["ann", "bob", "cleo", "dee", "eli", "fay", "gus", "hal"]
    last_names = ["reed", "shaw", "tate", "vale", "webb", "york", "zink"]
    return EntityCatalog(
        schema=TAX_SCHEMA,
        entity_classes=[residences, employers, filings],
        free_attributes={
            "FName": lambda r: r.choice(first_names),
            "LName": lambda r: r.choice(last_names),
            "Gender": lambda r: r.choice(["M", "F"]),
            "Salary": lambda r: float(r.randrange(20_000, 200_000, 500)),
        },
        geometry=dict(TAX_GEOMETRY),
    )


def generate_tax(
    n: int,
    rng: SeedLike = 0,
    n_residences: Optional[int] = None,
    n_employers: Optional[int] = None,
    n_filings: Optional[int] = None,
) -> Relation:
    """A clean Tax-like instance with *n* tuples."""
    if n < 1:
        raise ValueError("n must be positive")
    random_state = make_rng(rng)
    n_residences = n_residences if n_residences is not None else max(5, n // 40)
    n_employers = n_employers if n_employers is not None else max(4, n // 50)
    n_filings = n_filings if n_filings is not None else max(3, min(40, n // 60))
    catalog = tax_catalog(n_residences, n_employers, n_filings, rng=random_state)
    return catalog.generate(n, rng=random_state)
