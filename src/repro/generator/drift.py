"""Format drift: the ``format-drift`` scenario's error profile.

A schema-preserving but convention-breaking corruption: values keep
their content but change *shape* — an upstream exporter switches to
upper case, starts zero-padding, or inserts separators. Cell-level
distance barely moves (the FD path under-reacts), but the column's
dominant format signature no longer matches, which is exactly the
signal :class:`~repro.detect.builtin.RegexFormatDetector` keys on.

:func:`inject_format_drift` applies one of three transforms per picked
cell — upper-casing, dash insertion, or suffix padding — each chosen so
``format_signature(dirty) != format_signature(clean)``. See
``docs/scenarios.md``.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.dataset.relation import NUMERIC, Cell, Relation
from repro.generator.noise import ErrorKind, InjectedError
from repro.utils.rng import SeedLike, make_rng


def _upper(text: str, rng: random.Random) -> str:
    return text.upper()


def _dash(text: str, rng: random.Random) -> str:
    pos = rng.randrange(1, len(text)) if len(text) > 1 else len(text)
    return text[:pos] + "-" + text[pos:]


def _pad(text: str, rng: random.Random) -> str:
    return text + "_" + str(rng.randrange(10))


#: The drift transforms, applied round-robin per injected cell.
DRIFT_TRANSFORMS: Tuple[Callable[[str, random.Random], str], ...] = (
    _upper,
    _dash,
    _pad,
)


def inject_format_drift(
    relation: Relation,
    attributes: Optional[Sequence[str]] = None,
    error_rate: float = 0.02,
    rng: SeedLike = None,
) -> Tuple[Relation, List[InjectedError]]:
    """Re-format cells without changing their content; return (dirty, log).

    ``error_rate`` is the fraction of cells over the eligible string
    *attributes* (default: all of them) to drift. Cells whose transform
    would be a no-op (e.g. upper-casing an already-upper value) are
    retried with the next transform; the input relation is never
    modified.
    """
    if not 0.0 <= error_rate < 1.0:
        raise ValueError("error_rate must be in [0, 1)")
    random_state = make_rng(rng)
    dirty = relation.copy()
    if attributes is None:
        attributes = [
            a for a in relation.schema.names
            if relation.schema.kind_of(a) != NUMERIC
        ]
    else:
        for attr in attributes:
            if relation.schema.kind_of(attr) == NUMERIC:
                raise ValueError(
                    f"attribute {attr!r} is numeric; format drift covers "
                    "string attributes only (docs/scenarios.md)"
                )
    attributes = list(attributes)
    if not attributes or not len(relation):
        return dirty, []

    n_errors = int(round(error_rate * len(relation) * len(attributes)))
    used: Set[Cell] = set()
    errors: List[InjectedError] = []
    attempts, budget = 0, n_errors * 50 + 100
    transform_index = 0
    while len(errors) < n_errors and attempts < budget:
        attempts += 1
        attr = attributes[random_state.randrange(len(attributes))]
        tid = random_state.randrange(len(relation))
        cell = (tid, attr)
        if cell in used:
            continue
        clean = dirty.value(tid, attr)
        text = "" if clean is None else str(clean)
        if not text:
            continue
        new: Optional[str] = None
        for offset in range(len(DRIFT_TRANSFORMS)):
            transform = DRIFT_TRANSFORMS[
                (transform_index + offset) % len(DRIFT_TRANSFORMS)
            ]
            candidate = transform(text, random_state)
            if candidate != text:
                new = candidate
                break
        transform_index += 1
        if new is None:
            continue
        dirty.set_value(tid, attr, new)
        used.add(cell)
        errors.append(InjectedError(tid, attr, clean, new, ErrorKind.DRIFT))
    return dirty, errors
