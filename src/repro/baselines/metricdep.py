"""Metric-dependency-style repair (related work, Section 2.3).

The paper positions metric functional dependencies (Koudas et al., ICDE
2009) and differential dependencies (Song & Chen, TODS 2011) as its
closest relatives: both relax *one side* of the constraint with a
similarity predicate — an MD ``X -> Y`` tolerates small differences on
``Y`` for tuples that agree exactly on ``X`` (or vice versa), whereas
the paper's FT-violations compare both sides holistically.

This module implements the natural MD-based repairer so the difference
is measurable:

* tuples are grouped by **exact** LHS equality (the MD's match side);
* inside a group, RHS values within ``delta`` of the group's dominant
  value are considered acceptable *as is* (the MD is satisfied — no
  repair!), while values beyond ``delta`` are repaired to the dominant
  value by frequency voting.

Consequences the comparison surfaces: LHS typos are invisible (exact
matching), and small RHS corruptions *survive* (they satisfy the metric
dependency), so recall caps well below the FT-repair algorithms.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.repair import CellEdit, RepairResult
from repro.dataset.relation import Relation


class MetricFDRepairer:
    """Repair under metric-dependency semantics.

    Parameters
    ----------
    fds:
        The dependencies, interpreted as MDs: exact LHS matching, RHS
        tolerance *delta*.
    delta:
        Normalized per-attribute distance below which two RHS values are
        considered "close enough" (the MD's metric threshold).
    """

    name = "metricfd"

    def __init__(self, fds: Sequence[FD], delta: float = 0.25) -> None:
        if not fds:
            raise ValueError("at least one FD is required")
        if not 0.0 <= delta <= 1.0:
            raise ValueError("delta must be in [0, 1]")
        self.fds: List[FD] = list(fds)
        self.delta = delta

    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation*; the input is never mutated."""
        current = relation.copy()
        model = DistanceModel(relation)
        edits: List[CellEdit] = []
        tolerated = 0
        for fd in self.fds:
            fd_edits, fd_tolerated = self._repair_fd(current, fd, model)
            for edit in fd_edits:
                current.set_value(edit.tid, edit.attribute, edit.new)
            edits.extend(fd_edits)
            tolerated += fd_tolerated
        final = [e for e in edits if e.old != e.new]
        return RepairResult(
            current,
            final,
            float(len(final)),
            {
                "algorithm": "metricfd",
                "tolerated_cells": tolerated,
            },
        )

    # ------------------------------------------------------------------
    def _repair_fd(
        self, relation: Relation, fd: FD, model: DistanceModel
    ) -> Tuple[List[CellEdit], int]:
        bound = fd.bind(relation.schema)
        groups: Dict[Tuple, List[int]] = {}
        for tid in relation.tids():
            key = relation.project_indexes(tid, bound.lhs_indexes)
            groups.setdefault(key, []).append(tid)

        edits: List[CellEdit] = []
        tolerated = 0
        for tids in groups.values():
            if len(tids) < 2:
                continue
            for attr in fd.rhs:
                values = Counter(relation.value(tid, attr) for tid in tids)
                if len(values) < 2:
                    continue
                dominant = max(
                    values.items(), key=lambda kv: (kv[1], repr(kv[0]))
                )[0]
                for tid in tids:
                    value = relation.value(tid, attr)
                    if value == dominant:
                        continue
                    if model.attribute_distance(attr, value, dominant) <= self.delta:
                        tolerated += 1  # the MD is satisfied: keep it
                        continue
                    edits.append(CellEdit(tid, attr, value, dominant))
        return edits, tolerated
