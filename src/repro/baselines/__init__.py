"""Reimplementations of the comparison systems of Section 6.4.

All three follow classic, equality-based FD semantics — the contrast the
paper draws against its similarity-based FT-violations:

* :class:`EquivalenceRepairer` (NADEEF-style): equivalence classes of
  cells forced equal by FD violations, repaired by frequency voting.
  RHS-only by construction.
* :class:`URMRepairer` (Unified Repair Model, Chiang & Miller): core vs
  deviant patterns by frequency, deviants rewritten to the closest core
  pattern when that shortens the description length.
* :class:`LlunaticRepairer`: chase with a frequency cost-manager;
  unresolvable cells become variables (partial repairs worth 0.5).
"""

from repro.baselines.equivalence import EquivalenceRepairer
from repro.baselines.urm import URMRepairer
from repro.baselines.llunatic import LLUN_PREFIX, LlunaticRepairer
from repro.baselines.metricdep import MetricFDRepairer

BASELINES = {
    "nadeef": EquivalenceRepairer,
    "urm": URMRepairer,
    "llunatic": LlunaticRepairer,
    "metricfd": MetricFDRepairer,
}

__all__ = [
    "EquivalenceRepairer",
    "URMRepairer",
    "LlunaticRepairer",
    "MetricFDRepairer",
    "LLUN_PREFIX",
    "BASELINES",
]
