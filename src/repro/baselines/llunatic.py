"""Llunatic-style chase with a frequency cost-manager.

Llunatic (Geerts et al., PVLDB 2013) repairs by chasing the constraints:
each violation group must be merged, and a **cost manager** decides the
merged value. With the frequency cost-manager (the configuration the
paper compares against), a group whose value distribution has a clear
majority is repaired to that value; otherwise the cells are set to a
fresh **variable** (a "llun") — a placeholder meaning "some consistent
value, ask the user later".

Variables are materialized as reserved strings ``_LLUN_<k>`` so the
repaired relation stays a plain relation; the evaluation layer awards
them 0.5 credit when they cover a truly erroneous cell (the paper's
"Metric 0.5": a cell repaired to a variable counts as partially
correct).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.repair import CellEdit, RepairResult
from repro.dataset.relation import Cell, Relation
from repro.utils.unionfind import UnionFind

#: Prefix of materialized variables (lluns).
LLUN_PREFIX = "_LLUN_"


def is_llun(value: object) -> bool:
    """Whether *value* is a materialized Llunatic variable."""
    return isinstance(value, str) and value.startswith(LLUN_PREFIX)


class LlunaticRepairer:
    """Chase-based repair with frequency cost-manager and lluns.

    Parameters
    ----------
    fds:
        Constraints to chase.
    majority:
        Minimum fraction of the group a value needs to win outright;
        below it the group becomes a variable.
    max_rounds:
        Chase fixpoint bound.
    """

    name = "llunatic"

    def __init__(
        self,
        fds: Sequence[FD],
        majority: float = 0.6,
        max_rounds: int = 10,
    ) -> None:
        if not fds:
            raise ValueError("at least one FD is required")
        if not 0.0 < majority <= 1.0:
            raise ValueError("majority must be in (0, 1]")
        self.fds: List[FD] = list(fds)
        self.majority = majority
        self.max_rounds = max_rounds

    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation*; variables are reported in ``stats``."""
        current = relation.copy()
        all_edits: Dict[Cell, CellEdit] = {}
        variables: Set[Cell] = set()
        llun_counter = 0
        rounds = 0
        for _ in range(self.max_rounds):
            rounds += 1
            edits, llun_counter = self._one_round(current, llun_counter)
            if not edits:
                break
            for edit in edits:
                cell = edit.cell
                if cell in all_edits:
                    all_edits[cell] = CellEdit(
                        edit.tid, edit.attribute, all_edits[cell].old, edit.new
                    )
                else:
                    all_edits[cell] = edit
                current.set_value(edit.tid, edit.attribute, edit.new)
                if is_llun(edit.new):
                    variables.add(cell)
                else:
                    variables.discard(cell)
        final_edits = [e for e in all_edits.values() if e.old != e.new]
        return RepairResult(
            current,
            final_edits,
            float(len(final_edits)),
            {
                "algorithm": "llunatic",
                "rounds": rounds,
                "variables": variables,
                "variable_count": len(variables),
            },
        )

    # ------------------------------------------------------------------
    def _one_round(
        self, relation: Relation, llun_counter: int
    ) -> Tuple[List[CellEdit], int]:
        """One chase step over every FD (cells merged via union-find)."""
        classes = UnionFind()
        for fd in self.fds:
            bound = fd.bind(relation.schema)
            groups: Dict[Tuple, List[int]] = {}
            for tid in relation.tids():
                key = relation.project_indexes(tid, bound.lhs_indexes)
                groups.setdefault(key, []).append(tid)
            for tids in groups.values():
                if len(tids) < 2:
                    continue
                anchor = tids[0]
                for attr in fd.rhs:
                    for tid in tids[1:]:
                        classes.union((anchor, attr), (tid, attr))

        edits: List[CellEdit] = []
        for group in classes.groups():
            if len(group) < 2:
                continue
            values = Counter(relation.value(tid, attr) for tid, attr in group)
            if len(values) < 2:
                continue
            # Lluns never win a vote: they are placeholders, not evidence.
            concrete = Counter(
                {v: c for v, c in values.items() if not is_llun(v)}
            )
            winner = None
            if concrete:
                value, count = max(
                    concrete.items(), key=lambda kv: (kv[1], repr(kv[0]))
                )
                if count / len(group) > self.majority:
                    winner = value
            if winner is None:
                # Classes are per-attribute (unions always pair cells of
                # the same attribute), so one kind check suffices.
                attr = next(iter(group))[1]
                if relation.schema.kind_of(attr) == "numeric":
                    # Numeric cells cannot hold a placeholder string;
                    # fall back to plain frequency voting.
                    winner = max(
                        values.items(), key=lambda kv: (kv[1], repr(kv[0]))
                    )[0]
                else:
                    llun_counter += 1
                    winner = f"{LLUN_PREFIX}{llun_counter}"
            for tid, attr in group:
                old = relation.value(tid, attr)
                if old != winner:
                    edits.append(CellEdit(tid, attr, old, winner))
        return edits, llun_counter
