"""URM — the Unified Repair Model (Chiang & Miller, ICDE 2011).

URM casts repair as description-length (MDL) minimization: for each FD,
the patterns over its attributes are split by frequency into **core**
patterns (frequent, kept as the model) and **deviant** patterns (rare,
encoded as exceptions). Rewriting a deviant pattern into a core pattern
removes exception-encoding cost at the price of recording the change;
the rewrite is applied when it shortens the total description.

We reproduce the behaviours the paper's Section 6.4 calls out:

1. frequency alone decides what is "correct" — a frequent wrong value
   survives, an infrequent correct one is deviant;
2. FDs are processed one by one in a fixed order — no joint reasoning;
3. the same deviant pattern is always rewritten to the same core
   pattern, for every tuple carrying it.

Description length model (standard MDL accounting): encoding a tuple by
reference to a core pattern costs 1 unit; encoding it as an exception
costs ``width`` units (one per attribute of the FD); a repair
additionally records the changed cells (1 unit each).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.repair import CellEdit, RepairResult
from repro.dataset.relation import Relation


class URMRepairer:
    """Frequency/MDL-driven repair, applied FD by FD.

    Parameters
    ----------
    fds:
        Constraints, handled sequentially in the given order.
    core_fraction:
        A pattern is *core* when its frequency is at least
        ``core_fraction * (group size)`` within its LHS group, or when it
        is the most frequent pattern of the group.
    """

    name = "urm"

    def __init__(self, fds: Sequence[FD], core_fraction: float = 0.5) -> None:
        if not fds:
            raise ValueError("at least one FD is required")
        if not 0.0 < core_fraction <= 1.0:
            raise ValueError("core_fraction must be in (0, 1]")
        self.fds: List[FD] = list(fds)
        self.core_fraction = core_fraction

    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation*; the input is never mutated."""
        current = relation.copy()
        edits: List[CellEdit] = []
        deviants_repaired = 0
        deviants_kept = 0
        for fd in self.fds:
            fd_edits, repaired, kept = self._repair_fd(current, fd)
            for edit in fd_edits:
                current.set_value(edit.tid, edit.attribute, edit.new)
            edits.extend(fd_edits)
            deviants_repaired += repaired
            deviants_kept += kept
        merged = _merge_edits(edits)
        return RepairResult(
            current,
            merged,
            float(len(merged)),
            {
                "algorithm": "urm",
                "deviants_repaired": deviants_repaired,
                "deviants_kept": deviants_kept,
            },
        )

    # ------------------------------------------------------------------
    def _repair_fd(
        self, relation: Relation, fd: FD
    ) -> Tuple[List[CellEdit], int, int]:
        bound = fd.bind(relation.schema)
        width = len(fd.attributes)

        #: pattern -> tids, plus global core pool for LHS repairs
        by_pattern: Dict[Tuple, List[int]] = {}
        for tid in relation.tids():
            key = relation.project_indexes(tid, bound.indexes)
            by_pattern.setdefault(key, []).append(tid)

        #: LHS value -> [(pattern, frequency)]
        by_lhs: Dict[Tuple, List[Tuple[Tuple, int]]] = {}
        n_lhs = len(fd.lhs)
        for pattern, tids in by_pattern.items():
            by_lhs.setdefault(pattern[:n_lhs], []).append((pattern, len(tids)))

        core: Dict[Tuple, int] = {}
        deviant: Dict[Tuple, int] = {}
        for lhs, patterns in by_lhs.items():
            group_size = sum(freq for _, freq in patterns)
            best = max(patterns, key=lambda pf: (pf[1], repr(pf[0])))
            for pattern, freq in patterns:
                is_core = (
                    pattern == best[0]
                    or freq >= self.core_fraction * group_size
                )
                (core if is_core else deviant)[pattern] = freq

        edits: List[CellEdit] = []
        repaired = 0
        kept = 0
        core_pool = sorted(core, key=repr)
        for pattern, freq in deviant.items():
            target = self._closest_core(pattern, n_lhs, core_pool)
            if target is None:
                kept += 1
                continue
            changed = sum(1 for a, b in zip(pattern, target) if a != b)
            # MDL: an exception tuple stores its full pattern plus the
            # exception marker (width + 1); a repaired tuple stores a core
            # reference (1) plus the recorded cell changes.
            dl_keep = freq * (width + 1)
            dl_repair = freq * 1 + freq * changed
            if dl_repair >= dl_keep:
                kept += 1
                continue
            repaired += 1
            for tid in by_pattern[pattern]:
                for attr, old, new in zip(fd.attributes, pattern, target):
                    if old != new:
                        edits.append(CellEdit(tid, attr, old, new))
        return edits, repaired, kept

    def _closest_core(
        self, pattern: Tuple, n_lhs: int, core_pool: Sequence[Tuple]
    ) -> Optional[Tuple]:
        """The core pattern with the most cells in common.

        Same-LHS cores win outright (the classic RHS repair); otherwise
        the pattern must share at least half of its cells with the core
        — URM does not invent repairs from thin evidence.
        """
        best: Optional[Tuple] = None
        best_key: Tuple[int, int] = (-1, -1)
        for core in core_pool:
            same_lhs = 1 if core[:n_lhs] == pattern[:n_lhs] else 0
            overlap = sum(1 for a, b in zip(pattern, core) if a == b)
            key = (same_lhs, overlap)
            if key > best_key:
                best_key = key
                best = core
        if best is None:
            return None
        same_lhs, overlap = best_key
        if not same_lhs and overlap * 2 < len(best):
            return None
        return best


def _merge_edits(edits: List[CellEdit]) -> List[CellEdit]:
    """Collapse repeated rewrites of a cell into one old -> final edit."""
    first_old: Dict = {}
    last_new: Dict = {}
    order: List = []
    for edit in edits:
        if edit.cell not in first_old:
            first_old[edit.cell] = edit.old
            order.append(edit)
        last_new[edit.cell] = edit.new
    return [
        CellEdit(e.tid, e.attribute, first_old[e.cell], last_new[e.cell])
        for e in order
        if first_old[e.cell] != last_new[e.cell]
    ]
