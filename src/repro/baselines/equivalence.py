"""NADEEF-style holistic, equality-based FD repair.

NADEEF (Dallachiesa et al., SIGMOD 2013) detects violations of
declarative rules and repairs them holistically: cells that rules force
to be equal form **equivalence classes**, and each class is assigned one
value. For FDs the construction is: for every pair of tuples agreeing on
``X``, their ``Y``-cells join one class; a class with conflicting values
gets the most frequent value (frequency voting, ties broken
deterministically).

Characteristics the paper contrasts against (Section 6.4):

* equality semantics — a typo'd LHS value creates its own group, so the
  error is invisible;
* RHS-only repairs — LHS cells change only when the attribute also
  appears on the RHS of another FD;
* value voting inside a violation group — a group dominated by errors
  votes wrong.

The chase iterates to a fixpoint (repairing one FD can create new
violations of another), with a bound to guarantee termination.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.repair import CellEdit, RepairResult
from repro.dataset.relation import Cell, Relation
from repro.utils.unionfind import UnionFind


class EquivalenceRepairer:
    """Equality-semantics equivalence-class repair (NADEEF-style).

    Parameters
    ----------
    fds:
        Constraints to enforce. Passing a single FD gives the paper's
        "-S" variant, the full set the "-M" variant.
    max_rounds:
        Fixpoint bound for the chase.
    """

    name = "nadeef"

    def __init__(self, fds: Sequence[FD], max_rounds: int = 10) -> None:
        if not fds:
            raise ValueError("at least one FD is required")
        self.fds: List[FD] = list(fds)
        self.max_rounds = max_rounds

    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation*; the input is never mutated."""
        current = relation.copy()
        all_edits: Dict[Cell, CellEdit] = {}
        rounds = 0
        for _ in range(self.max_rounds):
            rounds += 1
            edits = self._one_round(current)
            if not edits:
                break
            for edit in edits:
                cell = edit.cell
                if cell in all_edits:
                    all_edits[cell] = CellEdit(
                        edit.tid, edit.attribute, all_edits[cell].old, edit.new
                    )
                else:
                    all_edits[cell] = edit
                current.set_value(edit.tid, edit.attribute, edit.new)
        final_edits = [
            edit for edit in all_edits.values() if edit.old != edit.new
        ]
        return RepairResult(
            current,
            final_edits,
            float(len(final_edits)),
            {"algorithm": "nadeef", "rounds": rounds},
        )

    # ------------------------------------------------------------------
    def _one_round(self, relation: Relation) -> List[CellEdit]:
        """One chase round: build classes, vote, emit edits."""
        classes = UnionFind()
        for fd in self.fds:
            bound = fd.bind(relation.schema)
            groups: Dict[Tuple, List[int]] = {}
            for tid in relation.tids():
                key = relation.project_indexes(tid, bound.lhs_indexes)
                groups.setdefault(key, []).append(tid)
            for tids in groups.values():
                if len(tids) < 2:
                    continue
                anchor = tids[0]
                for attr in fd.rhs:
                    for tid in tids[1:]:
                        classes.union((anchor, attr), (tid, attr))

        edits: List[CellEdit] = []
        for group in classes.groups():
            if len(group) < 2:
                continue
            values = Counter(
                relation.value(tid, attr) for tid, attr in group
            )
            if len(values) < 2:
                continue  # already consistent
            # Most frequent value wins; ties broken by repr for determinism.
            winner = max(values.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]
            for tid, attr in group:
                old = relation.value(tid, attr)
                if old != winner:
                    edits.append(CellEdit(tid, attr, old, winner))
        return edits
