"""Deterministic randomness helpers.

Every stochastic component in the library (generators, noise injection)
threads an explicit :class:`random.Random` so experiments reproduce
bit-for-bit. These helpers normalize the "seed or Random or None"
convention in one place.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar, Union

T = TypeVar("T")

SeedLike = Union[int, random.Random, None]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Coerce *seed* into a :class:`random.Random`.

    Accepts an ``int`` seed, an existing ``Random`` (returned as-is so
    callers can share one stream), or ``None`` for a fixed default seed —
    the library is reproducible by default, never silently entropy-seeded.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        return random.Random(0)
    return random.Random(seed)


def shuffled(items: Sequence[T], rng: SeedLike = None) -> List[T]:
    """Return a new shuffled list without mutating *items*."""
    out = list(items)
    make_rng(rng).shuffle(out)
    return out
