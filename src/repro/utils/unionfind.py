"""Disjoint-set forest (union-find) with path compression and union by rank.

Used to group functional dependencies into connected components by shared
attributes (Section 4.1 of the paper: FDs that share attributes must be
repaired jointly, disjoint groups independently).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List


class UnionFind:
    """A disjoint-set forest over arbitrary hashable items.

    Items are added lazily: :meth:`find` and :meth:`union` create
    singleton sets for unknown items on first contact.

    >>> uf = UnionFind()
    >>> uf.union("a", "b")
    True
    >>> uf.connected("a", "b")
    True
    >>> uf.connected("a", "c")
    False
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register *item* as a singleton set if it is not known yet."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of *item*'s set."""
        self.add(item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression: point every node on the walk at the root.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing *a* and *b*.

        Returns ``True`` if a merge happened, ``False`` if they already
        shared a set.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Return whether *a* and *b* are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> List[List[Hashable]]:
        """Return all sets as lists, in deterministic insertion order."""
        by_root: Dict[Hashable, List[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent
