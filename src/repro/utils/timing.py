"""A tiny stopwatch for the experiment runner and benchmark harness."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Stopwatch:
    """Accumulates named wall-clock timings.

    >>> sw = Stopwatch()
    >>> with sw.measure("detect"):
    ...     pass
    >>> "detect" in sw.totals
    True
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self._stack: list = []

    def measure(self, name: str) -> "_Span":
        """Return a context manager that adds its elapsed time to *name*."""
        return _Span(self, name)

    def add(self, name: str, seconds: float) -> None:
        """Add *seconds* to the running total for *name*."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds

    def total(self, name: Optional[str] = None) -> float:
        """Total seconds for *name*, or the grand total when omitted."""
        if name is not None:
            return self.totals.get(name, 0.0)
        return sum(self.totals.values())


class _Span:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
