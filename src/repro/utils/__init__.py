"""Small shared utilities: union-find, stopwatch, deterministic RNG helpers.

These are deliberately dependency-free so every other subpackage can use
them without import cycles.
"""

from repro.utils.unionfind import UnionFind
from repro.utils.timing import Stopwatch
from repro.utils.rng import make_rng, shuffled

__all__ = ["UnionFind", "Stopwatch", "make_rng", "shuffled"]
