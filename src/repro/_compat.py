"""Shared deprecation plumbing for the public API.

Every deprecated surface in the library — legacy positional
:class:`~repro.core.engine.Repairer` arguments, the ``rng=`` spelling of
``seed``, the dict-row :class:`~repro.dataset.relation.Relation`
accessors — funnels through :func:`deprecated`, so every warning carries
the same release-tagged shape::

    <message> [deprecated since 1.2, scheduled for removal in 1.3]

Centralizing the call keeps the messages greppable (one format to search
release notes for) and makes the removal release a one-file audit: when
``remove_in`` ships, every call site of this helper is the checklist.
"""

from __future__ import annotations

import warnings

#: the release that introduced the current deprecation batch
CURRENT_RELEASE = "1.2"

#: the release in which the current deprecation batch is removed
NEXT_RELEASE = "1.3"


def deprecated(
    message: str,
    *,
    since: str = CURRENT_RELEASE,
    remove_in: str = NEXT_RELEASE,
    stacklevel: int = 3,
) -> None:
    """Emit the library's standard release-tagged ``DeprecationWarning``.

    *stacklevel* defaults to 3: helper -> deprecated callable -> caller,
    which points the warning at the user's line for the common shape
    ``def old(...): deprecated("..."); return new(...)``.
    """
    warnings.warn(
        f"{message} [deprecated since {since}, "
        f"scheduled for removal in {remove_in}]",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
