"""repro — fault-tolerant, cost-based data repairing.

A from-scratch reproduction of *"A Novel Cost-Based Model for Data
Repairing"* (Hao, Tang, Li, He, Ta, Feng — ICDE 2017): functional
dependencies are enforced under a similarity-based violation semantics
("FT-violations"), repairs come from the data's own active domain, and
the minimum-cost repair is found via (maximal-independent-set) search on
a weighted violation graph.

Quickstart::

    from repro import FD, Repairer
    from repro.dataset import citizens_dirty, CITIZENS_FDS, CITIZENS_THRESHOLDS

    repairer = Repairer(CITIZENS_FDS, algorithm="greedy-m",
                        thresholds=CITIZENS_THRESHOLDS)
    result = repairer.repair(citizens_dirty())
    print(result.summary())
    print(result.relation.to_text())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-vs-measured record of every reproduced table and figure.
"""

from repro.core import (
    ALGORITHMS,
    CFD,
    FD,
    CFDRepairer,
    CellEdit,
    DistanceModel,
    Repairer,
    RepairResult,
    Weights,
    parse_fds,
    suggest_threshold,
    suggest_thresholds,
)
from repro.core.incremental import IncrementalRepairer
from repro.dataset import (
    Attribute,
    Relation,
    Schema,
    ValueDictionary,
    read_csv,
    write_csv,
)
from repro.discovery import discover_fds
from repro.exec import (
    DegradedRepairWarning,
    ExecutionStats,
    RepairConfig,
    RepairExecutor,
)

__version__ = "1.2.0"

__all__ = [
    "FD",
    "CFD",
    "parse_fds",
    "Repairer",
    "RepairConfig",
    "RepairExecutor",
    "ExecutionStats",
    "DegradedRepairWarning",
    "CFDRepairer",
    "IncrementalRepairer",
    "discover_fds",
    "RepairResult",
    "CellEdit",
    "DistanceModel",
    "Weights",
    "ALGORITHMS",
    "suggest_threshold",
    "suggest_thresholds",
    "Attribute",
    "Schema",
    "Relation",
    "ValueDictionary",
    "read_csv",
    "write_csv",
    "__version__",
]
