"""Command-line interface: repair a CSV against declared FDs.

Usage::

    python -m repro data.csv --fd "zip -> city, state" --fd "id -> name" \
        --output cleaned.csv

    python -m repro data.csv --fd "zip -> city" --algorithm exact-s \
        --tau 0.4 --numeric score --report

    python -m repro data.csv --fd "zip -> city" --trace --report run.json

    python -m repro serve reference.csv --fd "zip -> city" --port 8765

``--trace`` records the run through the observability layer
(``docs/observability.md``) and prints a phase-timing table;
``--report PATH`` writes the structured JSON run report (implies
``--trace``). A bare ``--report`` keeps its historical meaning — print
every cell edit (also available as ``--edits``).

``repro serve`` fits a model on the reference CSV and starts the
repair-as-a-service HTTP endpoint (``docs/serving.md``): ``POST
/repair`` with ``{"record": {...}}``, ``GET /stats`` for latency
quantiles and cache counters.

Exit status is 0 on success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.constraints import FD
from repro.core.engine import ALGORITHMS, Repairer
from repro.core.distances import KERNELS, Weights
from repro.dataset.csvio import read_csv, write_csv
from repro.exec import RepairConfig
from repro.index.simjoin import STRATEGIES
from repro.obs import format_phase_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Fault-tolerant, cost-based data repairing "
            "(Hao et al., ICDE 2017)."
        ),
    )
    parser.add_argument("input", type=Path, help="CSV file to repair")
    parser.add_argument(
        "--fd",
        action="append",
        dest="fds",
        metavar="SPEC",
        required=True,
        help='an FD, e.g. "zip -> city, state"; repeatable',
    )
    parser.add_argument(
        "--output",
        "-o",
        type=Path,
        default=None,
        help="where to write the repaired CSV (default: <input>.repaired.csv)",
    )
    parser.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="greedy-m",
        help="repair algorithm (default: greedy-m)",
    )
    parser.add_argument(
        "--tau",
        type=float,
        default=None,
        help="one threshold for every FD (default: derived from the data)",
    )
    parser.add_argument(
        "--lhs-weight",
        type=float,
        default=0.5,
        help="w_l of the projection distance; w_r = 1 - w_l (default 0.5)",
    )
    parser.add_argument(
        "--numeric",
        action="append",
        default=[],
        metavar="COLUMN",
        help="treat COLUMN as numeric (Euclidean distance); repeatable",
    )
    parser.add_argument(
        "--join-strategy",
        "--simjoin-strategy",  # pre-1.2 spelling, kept as an alias
        dest="join_strategy",
        choices=list(STRATEGIES),
        default="indexed",
        help=(
            "FT-violation detection strategy; sets "
            "RepairConfig.join_strategy (default: indexed — "
            "sub-quadratic candidate generation; all strategies return "
            "identical violations)"
        ),
    )
    parser.add_argument(
        "--kernel",
        choices=list(KERNELS),
        default="myers",
        help=(
            "Levenshtein kernel; sets RepairConfig.kernel (default: "
            "myers — bit-parallel; all kernels return identical repairs)"
        ),
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the component-sharded executor; "
            "-1 = one per CPU (default 1 = serial; output is identical "
            "for every value)"
        ),
    )
    parser.add_argument(
        "--component-budget",
        type=int,
        default=None,
        metavar="PATTERNS",
        help=(
            "degrade exact algorithms to their greedy counterpart on "
            "components with more than PATTERNS violation-graph patterns"
        ),
    )
    parser.add_argument(
        "--split-threshold",
        type=int,
        default=None,
        metavar="PATTERNS",
        help=(
            "split the branch-and-bound search of dominant components "
            "with at least PATTERNS violation-graph patterns into "
            "subtree tasks shared across the pool (requires n-jobs > 1; "
            "default: never split; output is identical either way)"
        ),
    )
    parser.add_argument(
        "--max-subtasks",
        type=int,
        default=16,
        metavar="N",
        help=(
            "target number of subtree tasks a split search is cut into "
            "(default 16)"
        ),
    )
    parser.add_argument(
        "--no-bound-exchange",
        action="store_true",
        help=(
            "disable the shared incumbent-bound exchange between split "
            "subtree tasks (pruning falls back to chunk-local bounds)"
        ),
    )
    parser.add_argument(
        "--detectors",
        default=None,
        metavar="NAMES",
        help=(
            "comma-separated error detectors to run ahead of repair, "
            "e.g. 'fd,null,regex,outlier' (registry names; see "
            "docs/scenarios.md). Verdicts are advisory: they annotate "
            "the violation graph and the stats, never the repair"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-component execution statistics",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "record the run through the observability layer and print "
            "a phase-timing table"
        ),
    )
    parser.add_argument(
        "--report",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help=(
            "with PATH: write the structured JSON run report there "
            "(implies --trace); bare: print every cell edit (legacy "
            "spelling of --edits)"
        ),
    )
    parser.add_argument(
        "--edits",
        action="store_true",
        help="print every cell edit",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="detect and report, but write nothing",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Fit a repair model on a reference CSV and serve per-record "
            "repairs over HTTP (repair-as-a-service)."
        ),
    )
    parser.add_argument(
        "input", type=Path, help="reference CSV to fit the model on"
    )
    parser.add_argument(
        "--fd",
        action="append",
        dest="fds",
        metavar="SPEC",
        required=True,
        help='an FD, e.g. "zip -> city, state"; repeatable',
    )
    parser.add_argument(
        "--tau",
        type=float,
        default=None,
        help="one threshold for every FD (default: derived from the data)",
    )
    parser.add_argument(
        "--lhs-weight",
        type=float,
        default=0.5,
        help="w_l of the projection distance; w_r = 1 - w_l (default 0.5)",
    )
    parser.add_argument(
        "--numeric",
        action="append",
        default=[],
        metavar="COLUMN",
        help="treat COLUMN as numeric (Euclidean distance); repeatable",
    )
    parser.add_argument(
        "--absorb",
        action="store_true",
        help=(
            "absorb consistent unseen records into the model instead of "
            "forcing them onto fitted targets"
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=8765, help="bind port (default 8765)"
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=64,
        metavar="N",
        help="max requests per micro-batch (default 64)",
    )
    parser.add_argument(
        "--batch-timeout",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="max seconds a micro-batch waits to fill (default 0.002)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=2048,
        metavar="N",
        help="request queue bound; beyond it requests get 503 (default 2048)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=8,
        metavar="N",
        help="LRU model-cache capacity (default 8)",
    )
    return parser


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro serve`` (fit + listen until interrupted)."""
    from repro.serve import RepairService, ServeConfig, run_server

    parser = build_serve_parser()
    args = parser.parse_args(argv)

    try:
        fds: List[FD] = [FD.parse(spec) for spec in args.fds]
    except ValueError as exc:
        parser.error(str(exc))
    if not 0.0 <= args.lhs_weight <= 1.0:
        parser.error("--lhs-weight must be in [0, 1]")

    try:
        relation = read_csv(args.input, numeric=args.numeric)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        config = ServeConfig(
            host=args.host,
            port=args.port,
            batch_size=args.batch_size,
            batch_timeout=args.batch_timeout,
            queue_limit=args.queue_limit,
            cache_capacity=args.cache_capacity,
        )
    except ValueError as exc:
        parser.error(str(exc))

    service = RepairService(config)
    print(f"{args.input}: fitting on {len(relation)} rows, {len(fds)} FD(s)")
    start = time.perf_counter()
    try:
        key = service.fit(
            relation,
            fds,
            thresholds=args.tau,
            weights=Weights(
                args.lhs_weight, round(1.0 - args.lhs_weight, 12)
            ),
            absorb=args.absorb,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"model {key} fitted in {time.perf_counter() - start:.2f}s")
    run_server(service)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return serve_main(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        fds: List[FD] = [FD.parse(spec) for spec in args.fds]
    except ValueError as exc:
        parser.error(str(exc))

    if not 0.0 <= args.lhs_weight <= 1.0:
        parser.error("--lhs-weight must be in [0, 1]")

    try:
        relation = read_csv(args.input, numeric=args.numeric)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report_path: Optional[Path] = (
        Path(args.report) if isinstance(args.report, str) else None
    )
    print_edits = args.edits or args.report is True
    trace = args.trace or report_path is not None

    detectors = (
        tuple(
            name.strip()
            for name in args.detectors.split(",")
            if name.strip()
        )
        if args.detectors
        else None
    )
    try:
        config = RepairConfig(
            algorithm=args.algorithm,
            weights=Weights(
                args.lhs_weight, round(1.0 - args.lhs_weight, 12)
            ),
            thresholds=args.tau,
            join_strategy=args.join_strategy,
            kernel=args.kernel,
            fallback="greedy",
            n_jobs=args.n_jobs,
            component_budget=args.component_budget,
            split_threshold=args.split_threshold,
            max_subtasks=args.max_subtasks,
            bound_exchange=not args.no_bound_exchange,
            trace=trace,
            detectors=detectors or None,
        )
    except ValueError as exc:
        parser.error(str(exc))
    repairer = Repairer(fds, config=config)
    try:
        thresholds = repairer.resolve_thresholds(relation)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(f"{args.input}: {len(relation)} rows, {len(fds)} FD(s)")
    for fd in fds:
        print(f"  {fd}: tau = {thresholds[fd]:.3f}")

    start = time.perf_counter()
    result = repairer.repair(relation)
    seconds = time.perf_counter() - start
    print(f"{result.summary()} in {seconds:.2f}s")

    if args.stats:
        describe = getattr(result.stats, "describe", None)
        if describe is not None:
            print(f"execution: {describe()}")
        flagged = result.stats.get("detector_cells_flagged")
        if flagged:
            print("detectors:")
            for name, count in sorted(flagged.items()):
                print(f"  {name}: {count} cell(s) flagged")
        for phase, secs in sorted(result.timings.items()):
            print(f"  {phase}: {secs:.3f}s")
        pruning = getattr(result.stats, "pruning", None)
        if pruning:
            print(f"detection ({args.join_strategy}):")
            for key, value in pruning.items():
                print(f"  {key}: {value}")
            reduction = getattr(result.stats, "reduction_ratio", None)
            if reduction:
                print(f"  reduction_ratio: {reduction:.3f}")
        for comp in result.stats.get("components", ()):
            flag = " [degraded]" if comp.get("degraded") else ""
            print(
                f"  component {comp['index']}: "
                f"{', '.join(comp['fds'])} via {comp['algorithm']} "
                f"({comp['patterns']} pattern(s), "
                f"{comp['seconds']:.3f}s){flag}"
            )

    if print_edits:
        for edit in result.edits:
            print(f"  {edit}")

    if trace:
        report = result.run_report
        if args.trace and report is not None:
            print("phase timings:")
            print(format_phase_table(report))
        if report_path is not None and report is not None:
            report_path.write_text(report.to_json(indent=2) + "\n")
            print(f"run report written to {report_path}")

    if args.dry_run:
        print("(dry run: nothing written)")
        return 0

    output = args.output or args.input.with_suffix(".repaired.csv")
    write_csv(result.relation, output)
    print(f"repaired data written to {output}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
