"""Repair-as-a-service: async micro-batched serving over fitted models.

The batch pipeline answers "repair this instance"; this package answers
"repair this record, now, again" — the fit-once/repair-many seam of
:class:`~repro.core.incremental.IncrementalRepairer` exposed as a
long-lived service:

* :mod:`repro.serve.fastpath` — :class:`IndexedRepairer`, the indexed
  per-record hot path (q-gram / numeric-band candidate generation plus
  prepared one-vs-many verification) with byte-identical verdicts;
* :mod:`repro.serve.cache` — :class:`ModelCache`, fitted models keyed
  by dataset fingerprint + FD-set hash, LRU-evicted;
* :mod:`repro.serve.batching` — :class:`MicroBatcher`, bounded-queue
  request micro-batching with explicit 503 backpressure;
* :mod:`repro.serve.latency` — :class:`LatencyRecorder`, p50/p95/p99
  spans, histogram, and the queue-depth gauge feeding ``repro.obs``;
* :mod:`repro.serve.service` / :mod:`repro.serve.http` — the
  transport-independent :class:`RepairService` core and the stdlib
  asyncio HTTP front-end behind ``repro serve``.

See ``docs/serving.md`` for the walkthrough and
``benchmarks/_serve_bench.py`` for the sustained-load benchmark the CI
gate (``benchmarks/check_serve_gate.py``) consumes.
"""

from repro.serve.batching import (
    MicroBatcher,
    ServiceOverloadedError,
    gather_submit,
)
from repro.serve.cache import ModelCache, model_key
from repro.serve.fastpath import IndexedRepairer
from repro.serve.http import ServeHTTP, run_server
from repro.serve.latency import LatencyRecorder
from repro.serve.service import (
    DEFAULT_MODEL,
    RepairService,
    ServeConfig,
    UnknownModelError,
)

__all__ = [
    "DEFAULT_MODEL",
    "IndexedRepairer",
    "LatencyRecorder",
    "MicroBatcher",
    "ModelCache",
    "RepairService",
    "ServeConfig",
    "ServeHTTP",
    "ServiceOverloadedError",
    "UnknownModelError",
    "gather_submit",
    "model_key",
    "run_server",
]
