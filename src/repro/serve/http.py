"""Stdlib asyncio HTTP front-end for :class:`RepairService`.

No web framework is available in the reproduction environment, so this
is a deliberately small HTTP/1.1 server over :func:`asyncio.start_server`
— request-line + headers + ``Content-Length`` body, JSON in and out,
keep-alive by default. It only has to speak to benchmark drivers and
simple clients (``curl``, ``urllib``), not the open internet.

Endpoints
---------
``GET /healthz``
    ``200 {"status": "ok", "models": [...]}`` — liveness + loaded keys.
``GET /stats``
    :meth:`RepairService.snapshot` — counters, cache traffic, latency
    quantiles, queue-depth gauge, histogram.
``POST /repair``
    Body ``{"record": {...}}`` or ``{"records": [{...}, ...]}``, plus
    optional ``"model": "<key>"``. Responds with the repair result (or
    ``{"results": [...]}`` for the bulk form). Errors map to status
    codes: malformed request → 400, unknown model key → 404, queue
    full → 503 with ``Retry-After``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.serve.batching import ServiceOverloadedError
from repro.serve.service import RepairService, UnknownModelError

#: request bodies beyond this are rejected with 413
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int, payload: Dict[str, Any], keep_alive: bool = True
) -> bytes:
    body = json.dumps(payload).encode()
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if status == 503:
        headers.append("Retry-After: 1")
    return ("\r\n".join(headers) + "\r\n\r\n").encode() + body


async def _read_request(
    reader: "asyncio.StreamReader",
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one request; ``None`` on clean EOF / malformed preamble."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise ValueError(f"body too large ({length} bytes)")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


class ServeHTTP:
    """One HTTP listener bound to a :class:`RepairService`."""

    def __init__(self, service: RepairService) -> None:
        self.service = service
        self._server: Optional["asyncio.base_events.Server"] = None

    # -- request dispatch ----------------------------------------------
    async def _handle_repair(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}
        model = payload.get("model")
        try:
            if "records" in payload:
                records = payload["records"]
                if not isinstance(records, list):
                    return 400, {"error": '"records" must be a list'}
                results = list(
                    await asyncio.gather(
                        *(
                            self.service.repair(record, model=model)
                            for record in records
                        )
                    )
                )
                return 200, {"results": results}
            record = payload.get("record")
            if not isinstance(record, dict):
                return 400, {
                    "error": 'body needs a "record" object or "records" list'
                }
            return 200, await self.service.repair(record, model=model)
        except UnknownModelError as exc:
            return 404, {"error": f"unknown model: {exc}"}
        except ServiceOverloadedError as exc:
            return 503, {"error": str(exc)}
        except KeyError as exc:
            return 400, {"error": f"bad record: {exc}"}

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {
                "status": "ok",
                "models": self.service.model_keys,
            }
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, self.service.snapshot()
        if path == "/repair":
            if method != "POST":
                return 405, {"error": "use POST"}
            return await self._handle_repair(body)
        return 404, {"error": f"no such endpoint: {path}"}

    # -- connection loop -----------------------------------------------
    async def _handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except ValueError as exc:
                    writer.write(_response(413, {"error": str(exc)}, False))
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload = await self._dispatch(
                        method, path, body
                    )
                except Exception as exc:  # noqa: BLE001 — 500, keep serving
                    status, payload = 500, {"error": str(exc)}
                writer.write(_response(status, payload, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.service.config.host,
            self.service.config.port,
        )
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        host, port = await self.start()
        assert self._server is not None
        print(f"repro serve listening on http://{host}:{port}")
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()


def run_server(service: RepairService) -> None:
    """Blocking entry point (the ``repro serve`` CLI)."""
    try:
        asyncio.run(ServeHTTP(service).serve_forever())
    except KeyboardInterrupt:
        pass


__all__ = ["MAX_BODY_BYTES", "ServeHTTP", "run_server"]
