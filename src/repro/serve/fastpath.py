"""Indexed per-record repair: the serving-path rebuild of the hot loop.

:meth:`repro.core.incremental._Component.consistent_everywhere` scans
every fitted element per FD — O(|elements|) exact projection checks per
arriving record. At serving rates that linear scan dominates the
per-record cost. :class:`IndexedRepairer` replaces it with candidate
generation over the shared per-attribute indexes of
:class:`~repro.index.registry.AttributeIndexRegistry`:

* for each FD attribute with positive Eq. (2) weight, the per-attribute
  distance of a violating element is at most ``tau / weight`` — a sound
  necessary condition per attribute;
* string attributes answer that condition from q-gram postings
  (:meth:`~repro.index.registry.AttributeIndexRegistry.qgram_probe`),
  numeric attributes from the sorted band order (``band_probe``);
* the per-attribute candidate sets are intersected (most selective
  filter wins automatically) and only the surviving elements are
  verified with a :class:`~repro.core.violation.PreparedProjection` —
  the record pattern's Myers PEQ tables prepared **once per FD** and
  streamed over the candidates.

The filter is a strict superset of the violating elements and the
verifier is the exact pairwise predicate, so the serve path's verdict —
and therefore every repair — is byte-identical to
:meth:`IncrementalRepairer.repair_record` (the hypothesis equivalence
suite in ``tests/test_serve_equivalence.py`` asserts this, absorb mode
included). Candidate identity is carried as PR-6 dictionary value ids
where the fitted relation's intern tables are available, falling back
to raw values for unseen strings.

Counters (merged into ``repro.obs`` by the service):

* ``serve_elements_total`` — elements the linear scan would examine;
* ``serve_elements_examined`` — elements the indexed path verified;
* ``serve_index_probes`` / ``serve_index_rebuilds`` — probe traffic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.incremental import (
    IncrementalRepairer,
    NotFittedError,
    _Component,
)
from repro.core.repair import CellEdit
from repro.core.violation import PreparedProjection
from repro.index.registry import AttributeIndexRegistry

#: mirror of the blocker's float-budget slack (see index/blocking.py)
_EPS = 1e-9


class _FDIndex:
    """Per-FD candidate index over one component's fitted elements."""

    def __init__(
        self,
        fd: FD,
        elements: Sequence[Tuple],
        model,
        registry: AttributeIndexRegistry,
        namespace: str,
    ) -> None:
        self.fd = fd
        self.n_elements = len(elements)
        self._registry = registry
        n_lhs = len(fd.lhs)
        w_lhs, w_rhs = model.weights.lhs, model.weights.rhs
        #: (pos, attr, registry key, limit ratio/band spec) per usable attr
        self._filters: List[Tuple[int, str, str, float, bool]] = []
        self._distinct: List[Optional[List]] = []
        self._postings: List[Optional[Dict]] = []
        for pos, attr in enumerate(fd.attributes):
            weight = w_lhs if pos < n_lhs else w_rhs
            usable = (
                weight > 0.0
                and not model.has_override(attr)
            )
            if not usable:
                self._filters.append((pos, attr, "", 0.0, False))
                self._distinct.append(None)
                self._postings.append(None)
                continue
            numeric = model.is_numeric(attr)
            # distinct values of this FD position with element postings
            distinct: List = []
            postings: Dict = {}
            index_of: Dict = {}
            for ei, element in enumerate(elements):
                value = (
                    float(element[pos]) if numeric else str(element[pos])
                )
                vid = index_of.get(value)
                if vid is None:
                    vid = len(distinct)
                    index_of[value] = vid
                    distinct.append(value)
                    postings[vid] = []
                postings[vid].append(ei)
            key = f"{namespace}:{fd.name}:{attr}"
            self._filters.append((pos, attr, key, weight, numeric))
            self._distinct.append(distinct)
            self._postings.append(postings)
        self._spread = {}
        for _, attr, key, _, numeric in self._filters:
            if key and numeric:
                self._spread[attr] = model.spread(attr)

    def candidates(
        self, pattern: Tuple, tau: float
    ) -> Optional[List[int]]:
        """Element indexes possibly FT-violating *pattern*, or ``None``.

        ``None`` means "no usable filter" — the caller scans linearly.
        The returned list is a superset of the elements within *tau*
        (per-attribute necessary conditions, intersected); the caller
        verifies each exactly.
        """
        survivors: Optional[set] = None
        filtered = False
        for pos, attr, key, weight, numeric in self._filters:
            if not key:
                continue
            limit = tau / weight
            if limit >= 1.0:
                continue  # every value passes: no filtering power
            distinct = self._distinct[pos]
            postings = self._postings[pos]
            assert distinct is not None and postings is not None
            if numeric:
                query = float(pattern[pos])
                spread = self._spread[attr]
                vids = self._registry.band_probe(
                    key, distinct, query, limit * spread + _EPS
                )
            else:
                query = str(pattern[pos])
                vids = self._registry.qgram_probe(
                    key, distinct, query, limit
                )
            hits: set = set()
            for vid in vids:
                hits.update(postings[vid])
            survivors = hits if survivors is None else (survivors & hits)
            filtered = True
            if not survivors:
                return []
        if not filtered:
            return None
        assert survivors is not None
        return sorted(survivors)


class _ComponentIndex:
    """Indexed serving view over one fitted :class:`_Component`."""

    def __init__(
        self,
        component: _Component,
        model,
        registry: AttributeIndexRegistry,
        namespace: str,
    ) -> None:
        self.component = component
        self._model = model
        self._registry = registry
        self._namespace = namespace
        self._fd_indexes: List[Optional[_FDIndex]] = [
            None for _ in component.fds
        ]

    def invalidate(self) -> None:
        """Drop the per-FD indexes (after an absorb grew the sets)."""
        self._fd_indexes = [None for _ in self.component.fds]

    def _index_for(self, pos: int) -> _FDIndex:
        index = self._fd_indexes[pos]
        if index is None:
            index = _FDIndex(
                self.component.fds[pos],
                self.component.elements_per_fd[pos],
                self._model,
                self._registry,
                self._namespace,
            )
            self._fd_indexes[pos] = index
        return index

    def consistent_everywhere(
        self,
        record: Mapping[str, object],
        thresholds: Dict[FD, float],
        counters: Dict[str, int],
    ) -> bool:
        """Indexed twin of ``_Component.consistent_everywhere``.

        Same verdict for every record: candidates are a superset of the
        violating elements and the verifier is the exact prepared
        projection predicate the linear scan applies.
        """
        component = self.component
        for pos, (fd, elements) in enumerate(
            zip(component.fds, component.elements_per_fd)
        ):
            pattern = tuple(record[a] for a in fd.attributes)
            tau = thresholds[fd]
            counters["serve_elements_total"] += len(elements)
            index = self._index_for(pos)
            if index.n_elements != len(elements):
                # the component grew under us (absorb): rebuild
                self._fd_indexes[pos] = None
                index = self._index_for(pos)
                counters["serve_index_rebuilds"] += 1
            candidate_ids = index.candidates(pattern, tau)
            if candidate_ids is None:
                candidate_ids = range(len(elements))
                counters["serve_elements_examined"] += len(elements)
            else:
                counters["serve_elements_examined"] += len(candidate_ids)
            counters["serve_index_probes"] += 1
            prepared: Optional[PreparedProjection] = None
            for ei in candidate_ids:
                element = elements[ei]
                if element == pattern:
                    continue
                if prepared is None:
                    prepared = PreparedProjection(self._model, fd, pattern)
                if prepared.distance_within(element, tau) is not None:
                    return False
        return True


class IndexedRepairer:
    """Serving-path repairer over a fitted :class:`IncrementalRepairer`.

    Wraps (and shares state with) a fitted repairer; ``repair_record``
    is byte-identical to the wrapped repairer's, with the
    ``consistent_everywhere`` scan replaced by indexed candidate
    generation. Thread-confined, like the underlying model.

    >>> from repro.core.incremental import IncrementalRepairer
    >>> from repro.dataset.citizens import (
    ...     CITIZENS_FDS, CITIZENS_THRESHOLDS, citizens_clean)
    >>> base = IncrementalRepairer(
    ...     CITIZENS_FDS, thresholds=CITIZENS_THRESHOLDS
    ... ).fit(citizens_clean())
    >>> serving = IndexedRepairer(base)
    >>> record = citizens_clean().as_record(0)
    >>> serving.repair_record(record) == (dict(record), [])
    True
    """

    def __init__(
        self,
        repairer: IncrementalRepairer,
        registry: Optional[AttributeIndexRegistry] = None,
    ) -> None:
        if not repairer.is_fitted:
            raise NotFittedError("fit() the repairer before indexing it")
        self.repairer = repairer
        self.registry = registry if registry is not None else AttributeIndexRegistry()
        assert repairer._components is not None
        self.counters: Dict[str, int] = {
            "serve_elements_total": 0,
            "serve_elements_examined": 0,
            "serve_index_probes": 0,
            "serve_index_rebuilds": 0,
        }
        self._indexes = [
            _ComponentIndex(
                component, repairer._model, self.registry, f"serve{i}"
            )
            for i, component in enumerate(repairer._components)
        ]

    # -- delegated model surface ---------------------------------------
    @property
    def is_fitted(self) -> bool:
        return True

    @property
    def absorb(self) -> bool:
        return self.repairer.absorb

    @property
    def fds(self) -> List[FD]:
        return self.repairer.fds

    @property
    def records_seen(self) -> int:
        return self.repairer.records_seen

    @property
    def records_repaired(self) -> int:
        return self.repairer.records_repaired

    @property
    def records_absorbed(self) -> int:
        return self.repairer.records_absorbed

    def examined_fraction(self) -> float:
        """Elements verified / elements the linear scan would touch."""
        total = self.counters["serve_elements_total"]
        if not total:
            return 0.0
        return self.counters["serve_elements_examined"] / total

    # ------------------------------------------------------------------
    def repair_record(
        self, record: Mapping[str, object]
    ) -> Tuple[Dict[str, object], List[CellEdit]]:
        """Indexed :meth:`IncrementalRepairer.repair_record`.

        Identical control flow, verdicts, edits, and counters — only the
        consistency scan is indexed.
        """
        repairer = self.repairer
        if repairer._components is None:
            raise NotFittedError("call fit() before repair_record()")
        assert repairer._thresholds is not None
        repairer.records_seen += 1
        repaired = dict(record)
        edits: List[CellEdit] = []
        counters = self.counters
        for component, index in zip(repairer._components, self._indexes):
            missing = [
                a for a in component.attributes if a not in repaired
            ]
            if missing:
                raise KeyError(f"record is missing attribute(s): {missing}")
            if component.resolved(repaired):
                continue
            if repairer.absorb and index.consistent_everywhere(
                repaired, repairer._thresholds, counters
            ):
                component.absorb(repaired)
                index.invalidate()
                repairer.records_absorbed += 1
                continue
            values = tuple(repaired[a] for a in component.attributes)
            target, _cost = component.tree.nearest_target(values)
            for attr, new in zip(component.attributes, target.values):
                old = repaired[attr]
                if old != new:
                    edits.append(CellEdit(0, attr, old, new))
                    repaired[attr] = new
        if edits:
            repairer.records_repaired += 1
        return repaired, edits
