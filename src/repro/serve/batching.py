"""Request micro-batching: a bounded queue drained into batches.

One arriving record is cheap to repair but expensive to *dispatch* —
event-loop wakeups, span bookkeeping, per-call overhead. The batcher
amortizes that: requests land in a bounded :class:`asyncio.Queue`; a
single drain task pulls the first request, then keeps collecting until
either ``batch_size`` requests are buffered or ``batch_timeout``
seconds have passed since the batch opened, and hands the whole batch
to the (synchronous) handler in one call. Under load, batches fill
instantly and the timeout never fires; when idle, a lone request waits
at most ``batch_timeout``.

Backpressure is explicit: a full queue rejects the request with
:class:`ServiceOverloadedError` (the HTTP layer maps it to 503) rather
than queueing unbounded work in front of the latency target.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, List, Optional, Sequence

from repro.serve.latency import LatencyRecorder


class ServiceOverloadedError(RuntimeError):
    """The request queue is full; shed load instead of queueing."""


class _Pending:
    """One queued request: payload, future, enqueue timestamp."""

    __slots__ = ("item", "future", "enqueued")

    def __init__(self, item: Any, future: "asyncio.Future") -> None:
        self.item = item
        self.future = future
        self.enqueued = time.perf_counter()


class MicroBatcher:
    """Bounded queue + drain loop feeding a synchronous batch handler.

    Parameters
    ----------
    handler:
        ``handler(items) -> results`` — called with the batched request
        payloads, must return one result per item (same order). Runs on
        the event loop: per-record repair at smoke scale is tens of
        microseconds, so handing a batch over costs less than a thread
        hop would.
    batch_size:
        Max requests per batch.
    batch_timeout:
        Max seconds a batch stays open waiting to fill.
    queue_limit:
        Bound of the request queue; beyond it, submissions fail fast.
    recorder:
        Optional :class:`LatencyRecorder` — observes end-to-end latency
        (enqueue to result) plus queue wait, and samples queue depth.
    """

    def __init__(
        self,
        handler: Callable[[List[Any]], Sequence[Any]],
        batch_size: int = 64,
        batch_timeout: float = 0.002,
        queue_limit: int = 2048,
        recorder: Optional[LatencyRecorder] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if batch_timeout < 0:
            raise ValueError("batch_timeout must be >= 0")
        self.handler = handler
        self.batch_size = batch_size
        self.batch_timeout = batch_timeout
        self.queue_limit = queue_limit
        self.recorder = recorder
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=queue_limit
        )
        self._drain_task: Optional["asyncio.Task"] = None
        self.batches = 0
        self.requests = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the drain loop on the running event loop."""
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def stop(self) -> None:
        """Cancel the drain loop and fail any queued requests."""
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            if not pending.future.done():
                pending.future.set_exception(
                    ServiceOverloadedError("service is shutting down")
                )

    # ------------------------------------------------------------------
    async def submit(self, item: Any) -> Any:
        """Queue *item* and await its result.

        Raises :class:`ServiceOverloadedError` when the queue is full,
        and re-raises whatever the handler raised for this batch.
        """
        if self._drain_task is None or self._drain_task.done():
            self.start()
        future: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        pending = _Pending(item, future)
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.rejected += 1
            raise ServiceOverloadedError(
                f"request queue is full ({self.queue_limit})"
            ) from None
        if self.recorder is not None:
            self.recorder.sample_queue_depth(self._queue.qsize())
        return await future

    # ------------------------------------------------------------------
    async def _collect(self) -> List[_Pending]:
        """One batch: first request, then fill until size or timeout."""
        first = await self._queue.get()
        batch = [first]
        deadline = time.perf_counter() + self.batch_timeout
        while len(batch) < self.batch_size:
            try:
                batch.append(self._queue.get_nowait())
                continue
            except asyncio.QueueEmpty:
                pass
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                batch.append(
                    await asyncio.wait_for(self._queue.get(), remaining)
                )
            except asyncio.TimeoutError:
                break
        return batch

    async def _drain(self) -> None:
        while True:
            batch = await self._collect()
            self.batches += 1
            self.requests += len(batch)
            started = time.perf_counter()
            try:
                results = self.handler([p.item for p in batch])
            except Exception as exc:  # noqa: BLE001 — relayed per request
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(exc)
                continue
            finished = time.perf_counter()
            recorder = self.recorder
            for pending, result in zip(batch, results):
                if recorder is not None:
                    recorder.observe(
                        finished - pending.enqueued,
                        queue_wait=started - pending.enqueued,
                    )
                if not pending.future.done():
                    pending.future.set_result(result)

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        return {
            "serve_batches": self.batches,
            "serve_requests": self.requests,
            "serve_rejected": self.rejected,
            "serve_batch_mean_size": (
                self.requests / self.batches if self.batches else 0.0
            ),
        }


async def gather_submit(
    batcher: MicroBatcher, items: Sequence[Any]
) -> List[Any]:
    """Submit every item and gather results (bulk-request helper)."""
    return list(
        await asyncio.gather(*(batcher.submit(item) for item in items))
    )


__all__ = [
    "MicroBatcher",
    "ServiceOverloadedError",
    "gather_submit",
]
