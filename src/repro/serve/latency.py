"""Latency accounting for the serving layer: quantiles, histogram, gauges.

The serving acceptance criteria are phrased in tail latency (p99) and
sustained throughput, so the recorder keeps

* a bounded **reservoir** of recent end-to-end latencies (enqueue to
  response) from which p50/p95/p99 are computed exactly over the
  window — at serving rates the window covers minutes of traffic;
* a fixed **log-spaced histogram** (JSON-safe bucket counts, never
  trimmed) for the benchmark trajectory and the ``/stats`` endpoint;
* cumulative count / sum / max plus a separate queue-wait aggregate, so
  queueing delay is distinguishable from service time;
* a **queue-depth gauge** (current and peak) sampled at enqueue.

Everything is plain counters — ``snapshot()`` feeds the service's
:class:`~repro.obs.CounterRegistry`, which is how the latency spans and
the queue-depth gauge reach run reports and ``repro.obs`` consumers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

#: histogram bucket upper bounds, seconds (log-spaced 0.1ms .. 10s)
BUCKET_BOUNDS: Sequence[float] = tuple(
    0.0001 * (10 ** (i / 4)) for i in range(21)
)

#: recent latencies kept for exact window quantiles
RESERVOIR_SIZE = 65_536


def quantile(sorted_values: Sequence[float], q: float) -> float:
    """The *q*-quantile of pre-sorted values (nearest-rank, q in [0,1])."""
    if not sorted_values:
        return 0.0
    if q <= 0.0:
        return sorted_values[0]
    rank = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[rank]


class LatencyRecorder:
    """Streaming latency + queue-depth accounting for one service."""

    def __init__(self, reservoir_size: int = RESERVOIR_SIZE) -> None:
        self._window: Deque[float] = deque(maxlen=reservoir_size)
        self._buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0
        self.queue_depth = 0
        self.queue_depth_peak = 0

    # ------------------------------------------------------------------
    def observe(
        self, seconds: float, queue_wait: Optional[float] = None
    ) -> None:
        """Record one request's end-to-end latency (and queue wait)."""
        self.count += 1
        self.total_seconds += seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds
        self._window.append(seconds)
        for i, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                self._buckets[i] += 1
                break
        else:
            self._buckets[-1] += 1
        if queue_wait is not None:
            self.queue_wait_total += queue_wait
            if queue_wait > self.queue_wait_max:
                self.queue_wait_max = queue_wait

    def sample_queue_depth(self, depth: int) -> None:
        """Update the queue-depth gauge (called at enqueue)."""
        self.queue_depth = depth
        if depth > self.queue_depth_peak:
            self.queue_depth_peak = depth

    # ------------------------------------------------------------------
    def quantiles(self) -> Dict[str, float]:
        """p50/p95/p99 (seconds) over the recent window, exact."""
        ordered = sorted(self._window)
        return {
            "p50": quantile(ordered, 0.50),
            "p95": quantile(ordered, 0.95),
            "p99": quantile(ordered, 0.99),
        }

    def histogram(self) -> Dict[str, int]:
        """Non-empty histogram buckets, labelled by upper bound (ms)."""
        out: Dict[str, int] = {}
        for i, count in enumerate(self._buckets):
            if not count:
                continue
            if i < len(BUCKET_BOUNDS):
                label = f"le_{BUCKET_BOUNDS[i] * 1000:.3f}ms"
            else:
                label = "overflow"
            out[label] = count
        return out

    def snapshot(self) -> Dict[str, float]:
        """Flat JSON-safe metrics (CounterRegistry / ``/stats`` shape)."""
        q = self.quantiles()
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "latency_count": self.count,
            "latency_mean_ms": mean * 1000.0,
            "latency_p50_ms": q["p50"] * 1000.0,
            "latency_p95_ms": q["p95"] * 1000.0,
            "latency_p99_ms": q["p99"] * 1000.0,
            "latency_max_ms": self.max_seconds * 1000.0,
            "queue_wait_mean_ms": (
                self.queue_wait_total / self.count * 1000.0
                if self.count
                else 0.0
            ),
            "queue_wait_max_ms": self.queue_wait_max * 1000.0,
            "queue_depth": self.queue_depth,
            "queue_depth_peak": self.queue_depth_peak,
        }
