"""Fingerprint-keyed LRU cache of fitted serving models.

Fitting an :class:`~repro.core.incremental.IncrementalRepairer` is the
expensive half of the serving story — violation graphs, independent
sets, target trees. Repeated tenants (the same reference instance and
FD set arriving again: a reconnecting client, a second process of the
same pipeline, a replayed job) should not pay it twice.

:class:`ModelCache` keys fitted models by the **dataset fingerprint**
of the reference relation (the sampled content hash
:func:`repro.obs.dataset_fingerprint` already computes for run reports)
combined with a hash of the FD set, thresholds, weights, and absorb
mode — everything that determines the fitted state. Values are
:class:`~repro.serve.fastpath.IndexedRepairer` instances ready to
serve. Eviction is least-recently-used at a fixed capacity.

Traffic is counted (``model_cache_hits`` / ``model_cache_misses`` /
``model_cache_evictions``) and surfaces through the service's
``repro.obs`` counter registry and the ``/stats`` endpoint.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import Weights
from repro.core.incremental import IncrementalRepairer
from repro.dataset.relation import Relation
from repro.obs import dataset_fingerprint
from repro.serve.fastpath import IndexedRepairer


def model_key(
    relation: Relation,
    fds: Sequence[FD],
    thresholds=None,
    weights: Weights = Weights(),
    absorb: bool = False,
) -> str:
    """The cache key of a fitted model: dataset fingerprint + FD-set hash.

    The fingerprint pins the reference instance (schema, row count,
    strided content sample); the second component hashes every fitting
    parameter — FD specs in order, thresholds spec, Eq. (2) weights,
    and absorb mode. Two requests with equal keys fit byte-identical
    models.
    """
    fingerprint = dataset_fingerprint(relation)["sha256"]
    digest = hashlib.sha256()
    for fd in fds:
        digest.update(
            f"{','.join(fd.lhs)}->{','.join(fd.rhs)};{fd.name}\x1e".encode()
        )
    if isinstance(thresholds, dict):
        spec = sorted(
            (getattr(fd, "name", str(fd)), float(tau))
            for fd, tau in thresholds.items()
        )
    else:
        spec = thresholds
    digest.update(repr(spec).encode())
    digest.update(f"\x1f{weights.lhs}\x1f{weights.rhs}".encode())
    digest.update(b"\x1fabsorb" if absorb else b"\x1fstrict")
    return f"{fingerprint}:{digest.hexdigest()[:16]}"


class ModelCache:
    """LRU store of fitted :class:`IndexedRepairer` models.

    >>> cache = ModelCache(capacity=2)
    >>> cache.counters()["model_cache_hits"]
    0
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, IndexedRepairer]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[IndexedRepairer]:
        """The cached model for *key*, refreshing recency; else ``None``."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, model: IndexedRepairer) -> None:
        """Insert (or refresh) *model* under *key*, evicting past capacity."""
        self._entries[key] = model
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_fit(
        self,
        relation: Relation,
        fds: Sequence[FD],
        thresholds=None,
        weights: Weights = Weights(),
        absorb: bool = False,
    ) -> Tuple[str, IndexedRepairer]:
        """The model for this (relation, FD set) — fitted at most once.

        A hit skips the entire fit; a miss fits, indexes, caches, and
        may evict the least-recently-used tenant.
        """
        key = model_key(relation, fds, thresholds, weights, absorb)
        cached = self.get(key)
        if cached is not None:
            return key, cached
        repairer = IncrementalRepairer(
            fds, weights=weights, thresholds=thresholds, absorb=absorb
        ).fit(relation)
        model = IndexedRepairer(repairer)
        self.put(key, model)
        return key, model

    def counters(self) -> Dict[str, int]:
        """JSON-safe counter snapshot (obs / ``/stats`` plumbing)."""
        return {
            "model_cache_hits": self.hits,
            "model_cache_misses": self.misses,
            "model_cache_evictions": self.evictions,
            "model_cache_size": len(self._entries),
        }
