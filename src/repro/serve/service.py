"""The repair service: models + micro-batching + latency accounting.

:class:`RepairService` is the transport-independent core of
``repro.serve`` (the HTTP layer in :mod:`repro.serve.http` is a thin
adapter over it):

* **models** — fitted :class:`~repro.serve.fastpath.IndexedRepairer`
  instances, either attached directly or fitted through the
  fingerprint-keyed :class:`~repro.serve.cache.ModelCache` so repeated
  tenants skip the fit entirely;
* **micro-batching** — requests flow through a
  :class:`~repro.serve.batching.MicroBatcher`; the batch handler runs
  the per-record indexed repair under a ``serve.batch`` span;
* **latency** — every request's end-to-end latency and queue wait land
  in a :class:`~repro.serve.latency.LatencyRecorder`; p50/p95/p99 and
  the queue-depth gauge surface as ``repro.obs`` counters (the service
  registers a live :class:`~repro.obs.CounterRegistry` with the active
  tracer) and through :meth:`RepairService.snapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constraints import FD
from repro.core.distances import Weights
from repro.core.incremental import IncrementalRepairer
from repro.dataset.relation import Relation
from repro.obs import CounterRegistry, current_tracer, span
from repro.serve.batching import MicroBatcher, ServiceOverloadedError
from repro.serve.cache import ModelCache
from repro.serve.fastpath import IndexedRepairer
from repro.serve.latency import LatencyRecorder

DEFAULT_MODEL = "default"


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving process (see ``docs/serving.md``).

    ``batch_size`` / ``batch_timeout`` bound each micro-batch: under
    load batches fill to ``batch_size`` instantly; when idle a lone
    request waits at most ``batch_timeout`` seconds. ``queue_limit`` is
    the backpressure bound (full queue → 503). ``cache_capacity`` sizes
    the LRU model cache across tenants.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    batch_size: int = 64
    batch_timeout: float = 0.002
    queue_limit: int = 2048
    cache_capacity: int = 8

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_timeout < 0:
            raise ValueError("batch_timeout must be >= 0")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")


class UnknownModelError(KeyError):
    """A request referenced a model key this service does not hold."""


class RepairService:
    """Stateful repair-as-a-service core (transport-independent).

    >>> import asyncio
    >>> from repro.dataset.citizens import (
    ...     CITIZENS_FDS, CITIZENS_THRESHOLDS, citizens_clean)
    >>> service = RepairService()
    >>> _ = service.fit(
    ...     citizens_clean(), CITIZENS_FDS, thresholds=CITIZENS_THRESHOLDS)
    >>> async def one():
    ...     async with service:
    ...         record = citizens_clean().as_record(0)
    ...         return await service.repair(record)
    >>> asyncio.run(one())["repaired"]
    False
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        cache: Optional[ModelCache] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.cache = cache or ModelCache(capacity=self.config.cache_capacity)
        self.latency = LatencyRecorder()
        self._models: Dict[str, IndexedRepairer] = {}
        self._default_key: Optional[str] = None
        self.batcher = MicroBatcher(
            self._handle_batch,
            batch_size=self.config.batch_size,
            batch_timeout=self.config.batch_timeout,
            queue_limit=self.config.queue_limit,
            recorder=self.latency,
        )
        #: live obs view: refreshed by snapshot(), registered with the
        #: ambient tracer at start() so latency quantiles and the
        #: queue-depth gauge land in run reports
        self.obs = CounterRegistry()
        self._registered_with = None

    # -- model management ----------------------------------------------
    def fit(
        self,
        relation: Relation,
        fds: Sequence[FD],
        thresholds=None,
        weights: Weights = Weights(),
        absorb: bool = False,
    ) -> str:
        """Fit (or fetch from the cache) and attach a model; returns its key."""
        key, model = self.cache.get_or_fit(
            relation, fds, thresholds=thresholds, weights=weights,
            absorb=absorb,
        )
        self._models[key] = model
        if self._default_key is None:
            self._default_key = key
        return key

    def attach_model(
        self,
        model: Union[IndexedRepairer, IncrementalRepairer],
        key: str = DEFAULT_MODEL,
    ) -> str:
        """Attach an already-fitted model under *key* (bypasses the cache)."""
        if isinstance(model, IncrementalRepairer):
            model = IndexedRepairer(model)
        self._models[key] = model
        if self._default_key is None:
            self._default_key = key
        return key

    def model(self, key: Optional[str] = None) -> IndexedRepairer:
        """The model for *key* (default model when ``None``)."""
        if key is None:
            key = self._default_key
        if key is None or key not in self._models:
            raise UnknownModelError(key or "<no model attached>")
        return self._models[key]

    @property
    def model_keys(self) -> List[str]:
        return list(self._models)

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        """Start the drain loop; register obs counters with the tracer."""
        self.batcher.start()
        tracer = current_tracer()
        if tracer is not None and self._registered_with is not tracer:
            tracer.register(self.obs)
            self._registered_with = tracer

    async def stop(self) -> None:
        await self.batcher.stop()
        self.refresh_obs()

    async def __aenter__(self) -> "RepairService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # -- serving --------------------------------------------------------
    async def repair(
        self,
        record: Mapping[str, Any],
        model: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Repair one record through the micro-batched serve path.

        Returns ``{"record", "edits", "repaired", "model"}`` where
        ``edits`` is a JSON-safe list of cell edits. Raises
        :class:`ServiceOverloadedError` under backpressure and
        :class:`UnknownModelError` for a bad model key.
        """
        key = model if model is not None else self._default_key
        if key is None or key not in self._models:
            raise UnknownModelError(key or "<no model attached>")
        return await self.batcher.submit((key, dict(record)))

    def repair_sync(
        self, record: Mapping[str, Any], model: Optional[str] = None
    ) -> Dict[str, Any]:
        """Synchronous single-record path (no batching; CLI/tests)."""
        repaired, edits = self.model(model).repair_record(dict(record))
        return self._result(model or self._default_key, repaired, edits)

    @staticmethod
    def _result(
        key: Optional[str], repaired: Dict[str, Any], edits: List
    ) -> Dict[str, Any]:
        return {
            "model": key,
            "record": repaired,
            "repaired": bool(edits),
            "edits": [
                {
                    "attribute": edit.attribute,
                    "old": edit.old,
                    "new": edit.new,
                }
                for edit in edits
            ],
        }

    def _handle_batch(
        self, items: List[Tuple[str, Dict[str, Any]]]
    ) -> List[Dict[str, Any]]:
        """Repair one micro-batch (runs on the event loop)."""
        with span("serve.batch", size=len(items)):
            results: List[Dict[str, Any]] = []
            for key, record in items:
                model = self._models[key]
                repaired, edits = model.repair_record(record)
                results.append(self._result(key, repaired, edits))
            return results

    # -- observability --------------------------------------------------
    def counters(self) -> Dict[str, Any]:
        """Flat counter mapping across every serve subsystem."""
        out: Dict[str, Any] = {}
        out.update(self.batcher.counters())
        out.update(self.cache.counters())
        out.update(self.latency.snapshot())
        seen = repaired = absorbed = 0
        for model in self._models.values():
            for name, value in model.counters.items():
                out[name] = out.get(name, 0) + value
            seen += model.records_seen
            repaired += model.records_repaired
            absorbed += model.records_absorbed
        out["serve_records_seen"] = seen
        out["serve_records_repaired"] = repaired
        out["serve_records_absorbed"] = absorbed
        return out

    def refresh_obs(self) -> Dict[str, Any]:
        """Refresh the registered obs registry with current values."""
        counters = self.counters()
        for name, value in counters.items():
            self.obs.set(name, value)
        return counters

    def snapshot(self) -> Dict[str, Any]:
        """Structured stats for ``/stats`` and the benchmark."""
        counters = self.refresh_obs()
        return {
            "models": self.model_keys,
            "config": {
                "batch_size": self.config.batch_size,
                "batch_timeout": self.config.batch_timeout,
                "queue_limit": self.config.queue_limit,
                "cache_capacity": self.config.cache_capacity,
            },
            "counters": counters,
            "latency_histogram": self.latency.histogram(),
        }


__all__ = [
    "DEFAULT_MODEL",
    "RepairService",
    "ServeConfig",
    "ServiceOverloadedError",
    "UnknownModelError",
]
