"""The paper's running example: the US-citizens instance of Table 1.

Ten tuples over Citizens(Name, Education, Level, City, Street, District,
State) with three FDs::

    phi1: Education -> Level
    phi2: City -> State
    phi3: City, Street -> District

Eight cells are dirty (highlighted in the paper); the clean counterpart
and the cell-level ground truth are provided for end-to-end tests and
the quickstart example.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.constraints import FD
from repro.dataset.relation import Cell, Relation, Schema

CITIZENS_SCHEMA = Schema.of(
    "Name",
    "Education",
    "Level",
    "City",
    "Street",
    "District",
    "State",
    numeric=["Level"],
)

CITIZENS_FDS: List[FD] = [
    FD.parse("Education -> Level", name="phi1"),
    FD.parse("City -> State", name="phi2"),
    FD.parse("City, Street -> District", name="phi3"),
]

#: Per-FD taus consistent with the paper's worked examples. Example 6
#: quotes tau=0.35 for phi1, but at 0.35 the pair (Bachelors, 3) /
#: (Masters, 4) sits at distance 0.34 and would be an edge — which
#: contradicts the paper's own Fig. 2 / Example 8, whose best independent
#: set contains both. tau=0.30 reproduces exactly the Fig. 2 edge set.
#: Example 10's independent sets pin tau for phi2 into [0.5, 0.58).
CITIZENS_THRESHOLDS: Dict[FD, float] = {
    CITIZENS_FDS[0]: 0.30,
    CITIZENS_FDS[1]: 0.55,
    CITIZENS_FDS[2]: 0.55,
}

_DIRTY_ROWS = [
    ("Janaina", "Bachelors", 3, "New York", "Main", "Manhattan", "NY"),
    ("Aloke", "Bachelors", 3, "New York", "Main", "Manhattan", "NY"),
    ("Jieyu", "Bachelors", 3, "New York", "Western", "Queens", "NY"),
    ("Paulo", "Masters", 4, "New York", "Western", "Queens", "MA"),
    ("Zoe", "Masters", 4, "Boston", "Main", "Manhattan", "NY"),
    ("Gara", "Masers", 4, "Boston", "Main", "Financial", "MA"),
    ("Mitchell", "HS-grad", 9, "Boston", "Main", "Financial", "MA"),
    ("Pavol", "Masters", 3, "Boton", "Arlingto", "Brookside", "MA"),
    ("Thilo", "Bachelors", 1, "Boston", "Arlingto", "Brookside", "MA"),
    ("Nenad", "Bachelers", 3, "Boston", "Arlingto", "Brookside", "NY"),
]

#: Ground truth for the dirty cells: cell -> correct value.
CITIZENS_ERRORS: Dict[Cell, object] = {
    (3, "State"): "NY",
    (4, "City"): "New York",
    (5, "Education"): "Masters",
    (7, "Level"): 4.0,
    (7, "City"): "Boston",
    (8, "Level"): 3.0,
    (9, "Education"): "Bachelors",
    (9, "State"): "MA",
}


def citizens_dirty() -> Relation:
    """The Table 1 instance, errors included."""
    return Relation(CITIZENS_SCHEMA, _DIRTY_ROWS)


def citizens_clean() -> Relation:
    """The ground-truth instance (dirty cells restored)."""
    relation = citizens_dirty()
    for (tid, attribute), value in CITIZENS_ERRORS.items():
        relation.set_value(tid, attribute, value)
    return relation
