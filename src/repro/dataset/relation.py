"""In-memory relational substrate.

The paper's repair model operates on a single relation instance ``D`` of a
schema ``R``: cells are addressed by (tuple id, attribute), attributes are
typed *string* or *numeric* (the distance function dispatches on the
type), and the **closed-world** repair model restricts repaired values to
the *active domain* of each attribute — the set of values that already
occur in ``D``.

pandas is not available in this environment, so this module provides the
small, typed table abstraction the rest of the library builds on:

* :class:`Attribute` — a named, typed column.
* :class:`Schema` — an ordered attribute list with name -> index lookup.
* :class:`Relation` — row-major value storage with cell get/set, active
  domains, numeric ranges (for normalized Euclidean distance) and
  projection helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: Attribute kinds understood by the distance model.
STRING = "string"
NUMERIC = "numeric"

_VALID_KINDS = (STRING, NUMERIC)

#: A cell address: (tuple id, attribute name).
Cell = Tuple[int, str]


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    ``kind`` is either :data:`STRING` (compared with normalized edit
    distance) or :data:`NUMERIC` (compared with normalized Euclidean
    distance), mirroring Eq. (1) of the paper.
    """

    name: str
    kind: str = STRING

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"attribute {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {_VALID_KINDS}"
            )


class Schema:
    """An ordered collection of :class:`Attribute` with fast name lookup."""

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        if not self.attributes:
            raise ValueError("a schema needs at least one attribute")
        self._index: Dict[str, int] = {}
        for pos, attr in enumerate(self.attributes):
            if attr.name in self._index:
                raise ValueError(f"duplicate attribute name {attr.name!r}")
            self._index[attr.name] = pos

    @classmethod
    def of(cls, *names: str, numeric: Sequence[str] = ()) -> "Schema":
        """Build a schema from attribute *names*.

        Attributes listed in *numeric* get the :data:`NUMERIC` kind, the
        rest are :data:`STRING`.

        >>> Schema.of("City", "State", "Level", numeric=["Level"]).names
        ('City', 'State', 'Level')
        """
        numeric_set = set(numeric)
        unknown = numeric_set.difference(names)
        if unknown:
            raise ValueError(f"numeric attributes not in schema: {sorted(unknown)}")
        return cls(
            Attribute(n, NUMERIC if n in numeric_set else STRING) for n in names
        )

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self.attributes)

    def index_of(self, name: str) -> int:
        """Position of attribute *name*; raises ``KeyError`` if absent."""
        return self._index[name]

    def indexes_of(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Positions of several attributes, preserving the given order."""
        return tuple(self._index[n] for n in names)

    def kind_of(self, name: str) -> str:
        """The kind (:data:`STRING` / :data:`NUMERIC`) of attribute *name*."""
        return self.attributes[self._index[name]].kind

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.kind}" for a in self.attributes)
        return f"Schema({cols})"


class Relation:
    """A mutable, row-major relation instance.

    Rows are lists of values indexed by schema position; tuple ids are the
    0-based row positions and remain stable (the repair model modifies
    values, it never inserts or deletes tuples).
    """

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self.schema = schema
        self._rows: List[List[Any]] = []
        for row in rows:
            self.append(row)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, schema: Schema, records: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from mapping records keyed by attribute name."""
        rel = cls(schema)
        for record in records:
            rel.append([record[name] for name in schema.names])
        return rel

    def append(self, row: Sequence[Any]) -> int:
        """Append *row* (schema order) and return its tuple id."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"row has {len(row)} values, schema has {len(self.schema)}"
            )
        coerced = [
            self._coerce(value, attr) for value, attr in zip(row, self.schema)
        ]
        self._rows.append(coerced)
        return len(self._rows) - 1

    @staticmethod
    def _coerce(value: Any, attr: Attribute) -> Any:
        if attr.kind == NUMERIC:
            if isinstance(value, bool):
                raise TypeError(f"boolean value for numeric attribute {attr.name!r}")
            return float(value)
        return str(value)

    def copy(self) -> "Relation":
        """Deep-copy the rows (schema objects are shared, they are immutable)."""
        clone = Relation(self.schema)
        clone._rows = [list(row) for row in self._rows]
        return clone

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------
    def value(self, tid: int, attribute: str) -> Any:
        """Value of the cell (*tid*, *attribute*)."""
        return self._rows[tid][self.schema.index_of(attribute)]

    def set_value(self, tid: int, attribute: str, value: Any) -> None:
        """Overwrite the cell (*tid*, *attribute*) with *value*."""
        pos = self.schema.index_of(attribute)
        self._rows[tid][pos] = self._coerce(value, self.schema.attributes[pos])

    def row(self, tid: int) -> Tuple[Any, ...]:
        """The full tuple with id *tid*, in schema order."""
        return tuple(self._rows[tid])

    def record(self, tid: int) -> Dict[str, Any]:
        """The tuple with id *tid* as an attribute-name-keyed dict."""
        return dict(zip(self.schema.names, self._rows[tid]))

    def project(self, tid: int, attributes: Sequence[str]) -> Tuple[Any, ...]:
        """Projection of tuple *tid* on *attributes* (given order)."""
        row = self._rows[tid]
        return tuple(row[self.schema.index_of(a)] for a in attributes)

    def project_indexes(self, tid: int, indexes: Sequence[int]) -> Tuple[Any, ...]:
        """Projection by pre-resolved schema positions (hot path)."""
        row = self._rows[tid]
        return tuple(row[i] for i in indexes)

    # ------------------------------------------------------------------
    # Domains and statistics
    # ------------------------------------------------------------------
    def active_domain(self, attribute: str) -> List[Any]:
        """Distinct values of *attribute* in first-occurrence order.

        This is the closed-world candidate pool for repairs of that
        attribute (Section 2.2).
        """
        pos = self.schema.index_of(attribute)
        seen: Dict[Any, None] = {}
        for row in self._rows:
            seen.setdefault(row[pos])
        return list(seen)

    def value_range(self, attribute: str) -> float:
        """max - min of a numeric attribute; the Euclidean normalizer.

        Returns 0.0 for an empty relation or a constant column.
        """
        if self.schema.kind_of(attribute) != NUMERIC:
            raise TypeError(f"attribute {attribute!r} is not numeric")
        pos = self.schema.index_of(attribute)
        if not self._rows:
            return 0.0
        values = [row[pos] for row in self._rows]
        return float(max(values) - min(values))

    def value_counts(self, attributes: Sequence[str]) -> Dict[Tuple[Any, ...], int]:
        """Frequency of each distinct projection on *attributes*."""
        idx = self.schema.indexes_of(attributes)
        counts: Dict[Tuple[Any, ...], int] = {}
        for row in self._rows:
            key = tuple(row[i] for i in idx)
            counts[key] = counts.get(key, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return (tuple(row) for row in self._rows)

    def tids(self) -> range:
        """All tuple ids."""
        return range(len(self._rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and self._rows == other._rows

    def __repr__(self) -> str:
        return f"Relation({len(self)} tuples, {len(self.schema)} attributes)"

    # ------------------------------------------------------------------
    # Pretty printing (used by examples and reports)
    # ------------------------------------------------------------------
    def to_text(self, limit: Optional[int] = None) -> str:
        """Render the relation as a fixed-width text table."""
        names = self.schema.names
        rows = self._rows if limit is None else self._rows[:limit]
        rendered = [[_fmt(v) for v in row] for row in rows]
        widths = [
            max(len(name), *(len(r[i]) for r in rendered)) if rendered else len(name)
            for i, name in enumerate(names)
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in rendered
        ]
        lines = [header, rule, *body]
        if limit is not None and len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
