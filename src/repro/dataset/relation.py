"""Columnar, dictionary-encoded relational substrate.

The paper's repair model operates on a single relation instance ``D`` of a
schema ``R``: cells are addressed by (tuple id, attribute), attributes are
typed *string* or *numeric* (the distance function dispatches on the
type), and the **closed-world** repair model restricts repaired values to
the *active domain* of each attribute — the set of values that already
occur in ``D``.

pandas is not available in this environment, so this module provides the
small, typed table abstraction the rest of the library builds on:

* :class:`Attribute` — a named, typed column.
* :class:`Schema` — an ordered attribute list with name -> index lookup.
* :class:`ValueDictionary` — an append-only per-attribute intern pool
  mapping each distinct value to a small integer id (and back).
* :class:`Relation` — columnar storage: one machine-int array of value
  ids per attribute, decoded through the attribute's dictionary.

**Storage layout.** Each attribute holds a :class:`ValueDictionary`
(every distinct value stored exactly once) and an ``array('I')`` column
of value ids, so a cell costs 4 bytes plus its amortized share of one
interned Python object — flat per-tuple memory at paper scale, versus a
pointer-per-cell row-major layout. The **intern invariant** — within one
relation, two cells of an attribute hold equal values iff they hold
equal ids — is what lets the hot paths (pattern grouping, blocking
partitions, index caches) dedupe work per distinct id instead of
re-hashing raw strings; see ``docs/dataset.md``.

The semantic contract is unchanged from the row-major substrate: cell
get/set, active domains in first-occurrence order, numeric ranges,
projection helpers, and value-based equality all behave identically.
Typed accessors (:meth:`Relation.column`, :meth:`Relation.value_id`,
:meth:`Relation.decode`, :meth:`Relation.project_ids`) expose the
encoding; the dict-row accessors (``record``, ``from_dicts``) are
deprecated in favour of :meth:`Relation.as_record` /
:meth:`Relation.from_records` and will be removed one release later.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro._compat import deprecated

try:  # numpy is optional at runtime; vectorized paths degrade without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _np = None  # type: ignore[assignment]

#: Attribute kinds understood by the distance model.
STRING = "string"
NUMERIC = "numeric"

_VALID_KINDS = (STRING, NUMERIC)

#: A cell address: (tuple id, attribute name).
Cell = Tuple[int, str]

#: array typecode of the id columns (C unsigned int: 4 bytes, 4G ids)
_ID_TYPECODE = "I"


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation.

    ``kind`` is either :data:`STRING` (compared with normalized edit
    distance) or :data:`NUMERIC` (compared with normalized Euclidean
    distance), mirroring Eq. (1) of the paper.
    """

    name: str
    kind: str = STRING

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(
                f"attribute {self.name!r} has unknown kind {self.kind!r}; "
                f"expected one of {_VALID_KINDS}"
            )


class Schema:
    """An ordered collection of :class:`Attribute` with fast name lookup."""

    def __init__(self, attributes: Iterable[Attribute]) -> None:
        self.attributes: Tuple[Attribute, ...] = tuple(attributes)
        if not self.attributes:
            raise ValueError("a schema needs at least one attribute")
        self._index: Dict[str, int] = {}
        for pos, attr in enumerate(self.attributes):
            if attr.name in self._index:
                raise ValueError(f"duplicate attribute name {attr.name!r}")
            self._index[attr.name] = pos

    @classmethod
    def of(cls, *names: str, numeric: Sequence[str] = ()) -> "Schema":
        """Build a schema from attribute *names*.

        Attributes listed in *numeric* get the :data:`NUMERIC` kind, the
        rest are :data:`STRING`.

        >>> Schema.of("City", "State", "Level", numeric=["Level"]).names
        ('City', 'State', 'Level')
        """
        numeric_set = set(numeric)
        unknown = numeric_set.difference(names)
        if unknown:
            raise ValueError(f"numeric attributes not in schema: {sorted(unknown)}")
        return cls(
            Attribute(n, NUMERIC if n in numeric_set else STRING) for n in names
        )

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return tuple(a.name for a in self.attributes)

    def index_of(self, name: str) -> int:
        """Position of attribute *name*; raises ``KeyError`` if absent."""
        return self._index[name]

    def indexes_of(self, names: Iterable[str]) -> Tuple[int, ...]:
        """Positions of several attributes, preserving the given order."""
        return tuple(self._index[n] for n in names)

    def kind_of(self, name: str) -> str:
        """The kind (:data:`STRING` / :data:`NUMERIC`) of attribute *name*."""
        return self.attributes[self._index[name]].kind

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        cols = ", ".join(f"{a.name}:{a.kind}" for a in self.attributes)
        return f"Schema({cols})"


class ValueDictionary:
    """Append-only intern pool of one attribute: value <-> small int id.

    Ids are dense, assigned in first-intern order, and never reused or
    remapped — copies of a relation share their dictionaries (interning
    only ever appends, so an id minted by one copy is invisible to the
    columns of another). Equal values always intern to equal ids, which
    is the invariant every id-keyed hot path relies on.

    ``probes`` / ``hits`` count interning traffic (a hit = the value was
    already present); their ratio is the ``dict_hit_rate`` counter the
    execution layer reports.
    """

    __slots__ = ("_values", "_ids", "probes", "hits")

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._values: List[Any] = []
        self._ids: Dict[Any, int] = {}
        self.probes = 0
        self.hits = 0
        for value in values:
            self._values.append(value)
            self._ids.setdefault(value, len(self._values) - 1)

    def intern(self, value: Any) -> int:
        """The id of *value*, minting a new one on first sight."""
        self.probes += 1
        vid = self._ids.get(value)
        if vid is not None:
            self.hits += 1
            return vid
        vid = len(self._values)
        self._values.append(value)
        self._ids[value] = vid
        return vid

    def id_of(self, value: Any) -> int:
        """The id of an already-interned *value*; ``KeyError`` if absent."""
        return self._ids[value]

    def decode(self, vid: int) -> Any:
        """The value with id *vid*."""
        return self._values[vid]

    def values(self) -> Tuple[Any, ...]:
        """Every interned value, in id order.

        Includes values no longer referenced by any cell (overwritten by
        ``set_value``); column-level statistics must scan the column.
        """
        return tuple(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._ids

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"ValueDictionary({len(self)} values)"

    # -- pickling (slots need an explicit state protocol) ---------------
    def __getstate__(self) -> Tuple[List[Any], int, int]:
        # _ids is derivable from _values; shipping only the value list
        # halves the payload and re-establishes the invariant on load.
        return (self._values, self.probes, self.hits)

    def __setstate__(self, state: Tuple[List[Any], int, int]) -> None:
        values, probes, hits = state
        self._values = values
        self._ids = {}
        for vid, value in enumerate(values):
            self._ids.setdefault(value, vid)
        self.probes = probes
        self.hits = hits


class Relation:
    """A mutable, dictionary-encoded columnar relation instance.

    Tuple ids are the 0-based append positions and remain stable (the
    repair model modifies values, it never inserts or deletes tuples).
    Each attribute stores an ``array('I')`` of value ids decoded through
    its :class:`ValueDictionary`; see the module docstring for the
    layout and the intern invariant.
    """

    def __init__(self, schema: Schema, rows: Iterable[Sequence[Any]] = ()) -> None:
        self.schema = schema
        self._dicts: Tuple[ValueDictionary, ...] = tuple(
            ValueDictionary() for _ in schema.attributes
        )
        self._columns: List[array] = [
            array(_ID_TYPECODE) for _ in schema.attributes
        ]
        #: bumped on every mutation; cheap change detection for the
        #: executor's relation-shipping registry (repro.exec.shipping)
        self._version = 0
        self.extend(rows)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, schema: Schema, records: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from mapping records keyed by attribute name."""
        names = schema.names
        return cls(schema, ([record[name] for name in names] for record in records))

    @classmethod
    def from_dicts(
        cls, schema: Schema, records: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Deprecated spelling of :meth:`from_records`."""
        deprecated("Relation.from_dicts() is deprecated; use Relation.from_records()")
        return cls.from_records(schema, records)

    def append(self, row: Sequence[Any]) -> int:
        """Append *row* (schema order) and return its tuple id."""
        if len(row) != len(self.schema):
            raise ValueError(
                f"row has {len(row)} values, schema has {len(self.schema)}"
            )
        # Coerce the full row before interning anything, so a bad value
        # in one column cannot leave partial ids (or stale dictionary
        # entries) behind.
        coerced = [
            self._coerce(value, attr) for value, attr in zip(row, self.schema)
        ]
        for pos, value in enumerate(coerced):
            self._columns[pos].append(self._dicts[pos].intern(value))
        self._version += 1
        return len(self._columns[0]) - 1

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Bulk-append *rows*, streaming values straight into the columns.

        The one-pass encoded loader: per-column interning with the loop
        state hoisted out, so CSV reads and generators build dictionaries
        while they stream instead of materializing rows first.
        """
        attrs = self.schema.attributes
        width = len(attrs)
        numeric = tuple(attr.kind == NUMERIC for attr in attrs)
        interns = tuple(d.intern for d in self._dicts)
        appends = tuple(c.append for c in self._columns)
        count = 0
        for row in rows:
            if len(row) != width:
                raise ValueError(
                    f"row has {len(row)} values, schema has {width}"
                )
            coerced = [
                float(value)
                if numeric[pos]
                else str(value)
                for pos, value in enumerate(row)
            ]
            for pos, value in enumerate(row):
                if numeric[pos] and isinstance(value, bool):
                    raise TypeError(
                        f"boolean value for numeric attribute "
                        f"{attrs[pos].name!r}"
                    )
            for pos in range(width):
                appends[pos](interns[pos](coerced[pos]))
            count += 1
        if count:
            self._version += 1

    @staticmethod
    def _coerce(value: Any, attr: Attribute) -> Any:
        if attr.kind == NUMERIC:
            if isinstance(value, bool):
                raise TypeError(f"boolean value for numeric attribute {attr.name!r}")
            return float(value)
        return str(value)

    def copy(self) -> "Relation":
        """Copy the id columns; dictionaries (append-only) are shared.

        Schema objects are shared too (immutable). Sharing dictionaries
        makes copies cheap — a copy is one C-level array clone per
        attribute — and is safe because ids are never remapped: values
        interned through one copy simply go unused by the other.
        """
        clone = Relation.__new__(Relation)
        clone.schema = self.schema
        clone._dicts = self._dicts
        clone._columns = [array(_ID_TYPECODE, col) for col in self._columns]
        clone._version = 0
        return clone

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------
    def value(self, tid: int, attribute: str) -> Any:
        """Value of the cell (*tid*, *attribute*)."""
        pos = self.schema.index_of(attribute)
        return self._dicts[pos].decode(self._columns[pos][tid])

    def set_value(self, tid: int, attribute: str, value: Any) -> None:
        """Overwrite the cell (*tid*, *attribute*) with *value*."""
        pos = self.schema.index_of(attribute)
        coerced = self._coerce(value, self.schema.attributes[pos])
        if tid < 0 or tid >= len(self._columns[pos]):
            raise IndexError(f"tuple id {tid} out of range")
        self._columns[pos][tid] = self._dicts[pos].intern(coerced)
        self._version += 1

    def row(self, tid: int) -> Tuple[Any, ...]:
        """The full tuple with id *tid*, in schema order."""
        return tuple(
            d.decode(col[tid]) for d, col in zip(self._dicts, self._columns)
        )

    def as_record(self, tid: int) -> Dict[str, Any]:
        """The tuple with id *tid* as an attribute-name-keyed dict."""
        return dict(zip(self.schema.names, self.row(tid)))

    def record(self, tid: int) -> Dict[str, Any]:
        """Deprecated spelling of :meth:`as_record`."""
        deprecated("Relation.record() is deprecated; use Relation.as_record()")
        return self.as_record(tid)

    def project(self, tid: int, attributes: Sequence[str]) -> Tuple[Any, ...]:
        """Projection of tuple *tid* on *attributes* (given order)."""
        return self.project_indexes(tid, self.schema.indexes_of(attributes))

    def project_indexes(self, tid: int, indexes: Sequence[int]) -> Tuple[Any, ...]:
        """Projection by pre-resolved schema positions (hot path)."""
        dicts = self._dicts
        columns = self._columns
        return tuple(dicts[i].decode(columns[i][tid]) for i in indexes)

    # ------------------------------------------------------------------
    # Encoded access (the id-level API the hot paths key on)
    # ------------------------------------------------------------------
    def value_id(self, tid: int, attribute: str) -> int:
        """The interned id of the cell (*tid*, *attribute*)."""
        return self._columns[self.schema.index_of(attribute)][tid]

    def decode(self, attribute: str, vid: int) -> Any:
        """The value behind id *vid* of *attribute*."""
        return self._dicts[self.schema.index_of(attribute)].decode(vid)

    def encode_value(self, attribute: str, value: Any) -> int:
        """Intern *value* (coerced to the attribute's kind) and return its id."""
        pos = self.schema.index_of(attribute)
        return self._dicts[pos].intern(
            self._coerce(value, self.schema.attributes[pos])
        )

    def column(self, attribute: str) -> memoryview:
        """The id column of *attribute* as a read-only zero-copy view.

        Equal ids mean equal values (the intern invariant), so consumers
        can group, count, or partition directly on the view without
        decoding; ``decode(attribute, vid)`` recovers values on demand.
        The view is a snapshot of the storage, not of the contents —
        in-place mutations through ``set_value`` remain visible.
        """
        return memoryview(
            self._columns[self.schema.index_of(attribute)]
        ).toreadonly()

    def column_array(self, attribute: str) -> Any:
        """The id column of *attribute* as a read-only zero-copy numpy view.

        Shares the underlying ``array('I')`` buffer (no copy): the view
        is invalidated by appends (which may reallocate the buffer) but
        tracks in-place ``set_value`` mutations, exactly like
        :meth:`column`. The dtype is the C ``unsigned int`` the column is
        stored as. Raises ``RuntimeError`` when numpy is unavailable —
        callers that can degrade should check for numpy themselves.
        """
        if _np is None:
            raise RuntimeError(
                "Relation.column_array() requires numpy; "
                "use Relation.column() for the buffer-protocol view"
            )
        return _np.frombuffer(self.column(attribute), dtype=_np.uintc)

    def dictionary(self, attribute: str) -> ValueDictionary:
        """The :class:`ValueDictionary` of *attribute*."""
        return self._dicts[self.schema.index_of(attribute)]

    def project_ids(self, tid: int, indexes: Sequence[int]) -> Tuple[int, ...]:
        """Projection of tuple *tid* as value ids (grouping hot path).

        By the intern invariant, two tuples have equal id projections iff
        they have equal value projections — so grouping on id tuples
        (cheap int hashing) is exactly grouping on values.
        """
        columns = self._columns
        return tuple(columns[i][tid] for i in indexes)

    def dict_stats(self) -> Dict[str, Any]:
        """Aggregate encoding statistics (for profiles and run counters).

        ``dict_hit_rate`` is interning hits over probes across every
        attribute dictionary — near 1.0 for low-cardinality data, where
        the columnar layout pays off most.
        """
        rows = len(self)
        entries = sum(len(d) for d in self._dicts)
        probes = sum(d.probes for d in self._dicts)
        hits = sum(d.hits for d in self._dicts)
        return {
            "rows": rows,
            "attributes": len(self.schema),
            "cells": rows * len(self.schema),
            "dictionary_entries": entries,
            "encoded_bytes": sum(
                col.itemsize * len(col) for col in self._columns
            ),
            "intern_probes": probes,
            "intern_hits": hits,
            "dict_hit_rate": hits / probes if probes else 0.0,
        }

    # ------------------------------------------------------------------
    # Domains and statistics
    # ------------------------------------------------------------------
    def active_domain(self, attribute: str) -> List[Any]:
        """Distinct values of *attribute* in first-occurrence order.

        This is the closed-world candidate pool for repairs of that
        attribute (Section 2.2). Scans the column, not the dictionary:
        values overwritten by ``set_value`` stay interned but are no
        longer part of the domain.
        """
        pos = self.schema.index_of(attribute)
        decode = self._dicts[pos].decode
        seen: Dict[int, None] = {}
        for vid in self._columns[pos]:
            if vid not in seen:
                seen[vid] = None
        return [decode(vid) for vid in seen]

    def value_range(self, attribute: str) -> float:
        """max - min of a numeric attribute; the Euclidean normalizer.

        Returns 0.0 for an empty relation or a constant column.
        """
        if self.schema.kind_of(attribute) != NUMERIC:
            raise TypeError(f"attribute {attribute!r} is not numeric")
        pos = self.schema.index_of(attribute)
        column = self._columns[pos]
        if not column:
            return 0.0
        decode = self._dicts[pos].decode
        values = [decode(vid) for vid in set(column)]
        return float(max(values) - min(values))

    def value_counts(self, attributes: Sequence[str]) -> Dict[Tuple[Any, ...], int]:
        """Frequency of each distinct projection on *attributes*.

        Keys are in first-occurrence order, counted on id tuples and
        decoded once per distinct projection.
        """
        idx = self.schema.indexes_of(attributes)
        if not idx:
            return {(): len(self)} if len(self) else {}
        columns = [self._columns[i] for i in idx]
        counts: Dict[Tuple[int, ...], int] = {}
        for key in zip(*columns):
            counts[key] = counts.get(key, 0) + 1
        decoders = [self._dicts[i].decode for i in idx]
        return {
            tuple(d(vid) for d, vid in zip(decoders, key)): count
            for key, count in counts.items()
        }

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._columns[0]) if self._columns else 0

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        decoders = [d.decode for d in self._dicts]
        for ids in zip(*self._columns):
            yield tuple(d(vid) for d, vid in zip(decoders, ids))

    def tids(self) -> range:
        """All tuple ids."""
        return range(len(self))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema != other.schema or len(self) != len(other):
            return False
        for pos in range(len(self.schema)):
            mine, theirs = self._columns[pos], other._columns[pos]
            da, db = self._dicts[pos], other._dicts[pos]
            if da is db:
                if mine != theirs:
                    return False
                continue
            # Distinct dictionaries may assign different ids to equal
            # values; verify the id translation once per distinct pair.
            translation: Dict[int, int] = {}
            for ia, ib in zip(mine, theirs):
                known = translation.get(ia)
                if known is not None:
                    if known != ib:
                        return False
                    continue
                if da.decode(ia) != db.decode(ib):
                    return False
                translation[ia] = ib
        return True

    def __repr__(self) -> str:
        return f"Relation({len(self)} tuples, {len(self.schema)} attributes)"

    # ------------------------------------------------------------------
    # Pretty printing (used by examples and reports)
    # ------------------------------------------------------------------
    def to_text(self, limit: Optional[int] = None) -> str:
        """Render the relation as a fixed-width text table."""
        names = self.schema.names
        total = len(self)
        shown = total if limit is None else min(limit, total)
        rendered = [
            [_fmt(v) for v in self.row(tid)] for tid in range(shown)
        ]
        widths = [
            max(len(name), *(len(r[i]) for r in rendered)) if rendered else len(name)
            for i, name in enumerate(names)
        ]
        header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
        rule = "  ".join("-" * w for w in widths)
        body = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in rendered
        ]
        lines = [header, rule, *body]
        if limit is not None and total > limit:
            lines.append(f"... ({total - limit} more)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)
