"""Column profiling: the quick look before declaring constraints.

Choosing FDs, thresholds and numeric attributes requires knowing the
data's shape — uniqueness ratios (key-like columns make trivial FDs),
value-length spreads (typo distances scale with length), emptiness.
:func:`profile_relation` computes per-column statistics and renders them
as a table; :func:`suggest_numeric` flags string columns that look
numeric (a common CSV-loading mistake).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.dataset.relation import NUMERIC, Relation


@dataclass(frozen=True)
class ColumnProfile:
    """Statistics of one column."""

    name: str
    kind: str
    distinct: int
    uniqueness: float  # distinct / rows
    empty: int  # empty-string (or NaN-like) cells
    min_length: int  # string columns: value lengths; numeric: 0
    max_length: int
    most_common: object
    most_common_count: int
    dictionary_size: int = 0  # interned entries in the column's dictionary

    @property
    def is_key_like(self) -> bool:
        """Nearly one distinct value per row."""
        return self.uniqueness > 0.9

    @property
    def is_constant(self) -> bool:
        return self.distinct <= 1


def profile_column(relation: Relation, name: str) -> ColumnProfile:
    """Profile a single column of *relation*."""
    kind = relation.schema.kind_of(name)
    counts = relation.value_counts([name])
    rows = len(relation)
    distinct = len(counts)
    if counts:
        (most_common,), most_common_count = max(
            counts.items(), key=lambda kv: (kv[1], repr(kv[0]))
        )
    else:
        most_common, most_common_count = None, 0
    empty = sum(
        c for (value,), c in counts.items()
        if value == "" or value is None
    )
    if kind == NUMERIC or not counts:
        min_length = max_length = 0
    else:
        lengths = [len(str(value)) for (value,) in counts]
        min_length, max_length = min(lengths), max(lengths)
    return ColumnProfile(
        name=name,
        kind=kind,
        distinct=distinct,
        uniqueness=distinct / rows if rows else 0.0,
        empty=empty,
        min_length=min_length,
        max_length=max_length,
        most_common=most_common,
        most_common_count=most_common_count,
        dictionary_size=len(relation.dictionary(name)),
    )


def profile_relation(relation: Relation) -> List[ColumnProfile]:
    """Profile every column, in schema order."""
    return [profile_column(relation, name) for name in relation.schema.names]


def suggest_numeric(relation: Relation) -> List[str]:
    """String columns whose every non-empty value parses as a number.

    These were probably meant to be numeric — pass them to
    ``read_csv(..., numeric=suggest_numeric(...))`` on reload.
    """
    out: List[str] = []
    for name in relation.schema.names:
        if relation.schema.kind_of(name) == NUMERIC:
            continue
        values = [v for v in relation.active_domain(name) if v != ""]
        if not values:
            continue
        try:
            for value in values:
                float(value)
        except (TypeError, ValueError):
            continue
        out.append(name)
    return out


def render_profile(profiles: List[ColumnProfile]) -> str:
    """The profile as a fixed-width table."""
    # imported lazily: repro.eval pulls in repro.core, which needs
    # repro.dataset — an eager import here would cycle at package init
    from repro.eval.reporting import format_table

    rows = [
        [
            p.name,
            p.kind,
            str(p.distinct),
            f"{p.uniqueness:.2f}",
            str(p.empty),
            f"{p.min_length}-{p.max_length}" if p.kind != NUMERIC else "-",
            str(p.dictionary_size),
            "key" if p.is_key_like else ("const" if p.is_constant else ""),
        ]
        for p in profiles
    ]
    return format_table(
        ["column", "kind", "distinct", "uniq", "empty", "len", "dict", "flags"],
        rows,
    )
