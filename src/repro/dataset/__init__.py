"""Dataset substrate: relations, CSV I/O, and the paper's running example.

The :mod:`repro.dataset.citizens` symbols are re-exported lazily (PEP
562): that module builds FDs and therefore imports :mod:`repro.core`,
which in turn needs :mod:`repro.dataset.relation` — eager imports here
would cycle.
"""

from repro.dataset.relation import (
    NUMERIC,
    STRING,
    Attribute,
    Cell,
    Relation,
    Schema,
    ValueDictionary,
)
from repro.dataset.csvio import read_csv, write_csv
from repro.dataset.profile import (
    ColumnProfile,
    profile_column,
    profile_relation,
    render_profile,
    suggest_numeric,
)

_CITIZENS_EXPORTS = (
    "citizens_dirty",
    "citizens_clean",
    "CITIZENS_FDS",
    "CITIZENS_SCHEMA",
    "CITIZENS_ERRORS",
    "CITIZENS_THRESHOLDS",
)

__all__ = [
    "Attribute",
    "Schema",
    "Relation",
    "ValueDictionary",
    "Cell",
    "STRING",
    "NUMERIC",
    "read_csv",
    "write_csv",
    "ColumnProfile",
    "profile_column",
    "profile_relation",
    "render_profile",
    "suggest_numeric",
    *_CITIZENS_EXPORTS,
]


def __getattr__(name: str):
    if name in _CITIZENS_EXPORTS:
        from repro.dataset import citizens

        return getattr(citizens, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
