"""CSV round-trip for relations.

Small, explicit wrappers over the standard :mod:`csv` module so
experiments can persist generated instances and users can load their own
data without pandas.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.dataset.relation import Attribute, NUMERIC, Relation, Schema, STRING

PathLike = Union[str, Path]


def read_csv(
    path: PathLike,
    schema: Optional[Schema] = None,
    numeric: Sequence[str] = (),
) -> Relation:
    """Load a relation from a headered CSV file.

    When *schema* is omitted, one is built from the header row: columns
    named in *numeric* become numeric attributes, everything else is a
    string attribute.
    """
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty CSV, expected a header row") from None
        if schema is None:
            numeric_set = set(numeric)
            schema = Schema(
                Attribute(name, NUMERIC if name in numeric_set else STRING)
                for name in header
            )
        elif list(schema.names) != header:
            raise ValueError(
                f"{path}: header {header} does not match schema {list(schema.names)}"
            )
        relation = Relation(schema)
        arity = len(schema)

        def checked_rows():
            # Validate arity per line (with the line number in the
            # error) while streaming straight into the encoded columns —
            # no intermediate list of row dicts is ever built.
            for line_no, row in enumerate(reader, start=2):
                if len(row) != arity:
                    raise ValueError(
                        f"{path}:{line_no}: expected {arity} fields, "
                        f"got {len(row)}"
                    )
                yield row

        relation.extend(checked_rows())
    return relation


def write_csv(relation: Relation, path: PathLike) -> None:
    """Write a relation to a headered CSV file."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.names)
        for row in relation:
            writer.writerow(_render(value) for value in row)


def _render(value: object) -> object:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value
