"""Detect-only mode: find FT-violations without repairing.

The paper frames cleaning as detect-then-repair; in practice many
pipelines want the detection phase alone (route suspects to review,
block a load, feed a different fixer). :class:`DetectionReport` exposes
the FT-violations per constraint, the suspect tuples and cells, and a
text summary. Produced by :func:`detect` or
:meth:`repro.core.engine.Repairer.detect`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import FTViolation, ft_violation_pairs, group_patterns
from repro.dataset.relation import Cell, Relation
from repro.detect.base import DetectorVerdict, FlagMap, merge_verdicts


@dataclass
class DetectionReport:
    """FT-violations of one relation against a set of FDs."""

    relation_size: int
    thresholds: Dict[str, float]
    #: fd name -> pattern-level violations
    violations: Dict[str, List[FTViolation]]
    #: fd name -> tuple ids involved in at least one violation
    suspects: Dict[str, Set[int]] = field(default_factory=dict)
    #: fd name -> tuple ids on the *minority* side of a violation — the
    #: probable error carriers (when a frequent and a rare pattern
    #: collide, the rare one is almost always the corruption)
    likely_errors: Dict[str, Set[int]] = field(default_factory=dict)
    #: execution statistics (per-FD seconds, cache and filter counters)
    #: when produced through the engine / executor; empty otherwise.
    #: Same surface as ``RepairResult.stats``.
    stats: Dict[str, object] = field(default_factory=dict)
    #: phase name -> wall seconds, mirroring ``RepairResult.timings``
    timings: Dict[str, float] = field(default_factory=dict)
    #: the :class:`~repro.obs.RunReport` of this detection when run with
    #: ``trace=True`` through the engine; ``None`` otherwise
    run_report: object = None
    #: detector name -> :class:`~repro.detect.DetectorVerdict`, filled
    #: by the engine when ``config.detectors`` lists detectors beyond
    #: the FD path (``docs/scenarios.md``); empty otherwise
    detector_verdicts: Dict[str, DetectorVerdict] = field(
        default_factory=dict
    )

    @property
    def total_violations(self) -> int:
        return sum(len(v) for v in self.violations.values())

    @property
    def suspect_tids(self) -> Set[int]:
        """Tuples involved in a violation of *any* constraint."""
        out: Set[int] = set()
        for tids in self.suspects.values():
            out |= tids
        return out

    @property
    def likely_error_tids(self) -> Set[int]:
        """Tuples on the minority side of some violation (see
        :attr:`likely_errors`)."""
        out: Set[int] = set()
        for tids in self.likely_errors.values():
            out |= tids
        return out

    def suspect_cells(self, fds: Sequence[FD]) -> Set[Cell]:
        """Cells a repair could touch: suspect tuples x their FD's attrs."""
        by_name = {fd.name: fd for fd in fds}
        cells: Set[Cell] = set()
        for name, tids in self.suspects.items():
            fd = by_name.get(name)
            if fd is None:
                continue
            for tid in tids:
                for attr in fd.attributes:
                    cells.add((tid, attr))
        return cells

    @property
    def flagged_cells(self) -> FlagMap:
        """cell -> detector names, merged over :attr:`detector_verdicts`.

        Covers the configured non-FD detectors only; the FD path's
        suspects live in :attr:`suspects` / :meth:`suspect_cells`.
        """
        return merge_verdicts(self.detector_verdicts.values())

    def is_clean(self) -> bool:
        """True when no constraint has any FT-violation and no
        configured detector flagged a cell."""
        if any(len(v.cells) for v in self.detector_verdicts.values()):
            return False
        return self.total_violations == 0

    def summary(self) -> str:
        """One block of text, one line per constraint."""
        lines = [
            f"{self.relation_size} tuples checked; "
            f"{self.total_violations} FT-violation(s), "
            f"{len(self.suspect_tids)} suspect tuple(s), "
            f"{len(self.likely_error_tids)} likely error carrier(s)"
        ]
        for name in self.violations:
            lines.append(
                f"  {name} (tau={self.thresholds[name]:.3f}): "
                f"{len(self.violations[name])} violating pattern pair(s), "
                f"{len(self.likely_errors.get(name, ()))} likely error tuple(s)"
            )
        for name in sorted(self.detector_verdicts):
            lines.append(f"  {self.detector_verdicts[name].summary()}")
        return "\n".join(lines)


def classify_violations(
    pairs: Sequence[FTViolation],
) -> Tuple[Set[int], Set[int]]:
    """(suspect tids, minority-side tids) of one FD's violation pairs.

    The minority side of a violating pair — the rarer pattern — is
    almost always the corruption when a frequent and a rare pattern
    collide; ties implicate both sides.
    """
    tids: Set[int] = set()
    minority: Set[int] = set()
    for violation in pairs:
        tids.update(violation.left.tids)
        tids.update(violation.right.tids)
        if violation.left.multiplicity == violation.right.multiplicity:
            minority.update(violation.left.tids)
            minority.update(violation.right.tids)
        elif violation.left.multiplicity < violation.right.multiplicity:
            minority.update(violation.left.tids)
        else:
            minority.update(violation.right.tids)
    return tids, minority


def detect(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
) -> DetectionReport:
    """Detect FT-violations of every FD; no repair is attempted."""
    violations: Dict[str, List[FTViolation]] = {}
    suspects: Dict[str, Set[int]] = {}
    likely: Dict[str, Set[int]] = {}
    for fd in fds:
        patterns = group_patterns(relation, fd)
        pairs = ft_violation_pairs(patterns, fd, model, thresholds[fd])
        violations[fd.name] = pairs
        suspects[fd.name], likely[fd.name] = classify_violations(pairs)
    return DetectionReport(
        relation_size=len(relation),
        thresholds={fd.name: thresholds[fd] for fd in fds},
        violations=violations,
        suspects=suspects,
        likely_errors=likely,
    )
