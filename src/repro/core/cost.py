"""The repair cost model and repair validity (Section 2.2).

* :func:`tuple_repair_cost` / :func:`database_repair_cost` implement
  Eqs. (3)-(4): unweighted sums of normalized per-attribute distances
  between original and repaired values.
* :func:`is_valid_tuple_repair` / :func:`is_valid_database_repair`
  enforce the **closed-world** model: a repaired tuple's projection on
  each FD must already occur in the *original* database ("valid tuple
  repair"); the repaired database must additionally be FT-consistent.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import is_ft_consistent_all
from repro.dataset.relation import Relation


def tuple_repair_cost(
    model: DistanceModel,
    attributes: Sequence[str],
    original: Sequence,
    repaired: Sequence,
) -> float:
    """Eq. (3): sum of per-attribute distances between two value rows."""
    return model.repair_cost(attributes, tuple(original), tuple(repaired))


def database_repair_cost(
    model: DistanceModel, original: Relation, repaired: Relation
) -> float:
    """Eq. (4): sum of tuple repair costs over the whole instance."""
    if original.schema != repaired.schema or len(original) != len(repaired):
        raise ValueError("relations must share schema and cardinality")
    names = original.schema.names
    total = 0.0
    for tid in original.tids():
        total += model.repair_cost(names, original.row(tid), repaired.row(tid))
    return total


def original_projections(relation: Relation, fd: FD) -> Set[Tuple]:
    """The set of projections of *relation* on *fd* — valid repair targets."""
    bound = fd.bind(relation.schema)
    return {relation.project_indexes(tid, bound.indexes) for tid in relation.tids()}


def is_valid_tuple_repair(
    original: Relation,
    fds: Sequence[FD],
    repaired_row: Dict[str, object],
) -> bool:
    """Closed-world validity of a single repaired tuple.

    For every FD the repaired tuple's projection must exist somewhere in
    the original database (the whole tuple may be new; the projected
    value combination must not be).
    """
    for fd in fds:
        projection = tuple(repaired_row[a] for a in fd.attributes)
        if projection not in original_projections(original, fd):
            return False
    return True


def invalid_repair_tids(
    original: Relation,
    repaired: Relation,
    fds: Sequence[FD],
) -> List[int]:
    """Tuple ids whose repair violates the closed-world model."""
    pools = {fd: original_projections(original, fd) for fd in fds}
    bad: List[int] = []
    for tid in repaired.tids():
        record = repaired.as_record(tid)
        for fd in fds:
            projection = tuple(record[a] for a in fd.attributes)
            if projection not in pools[fd]:
                bad.append(tid)
                break
    return bad


def is_valid_database_repair(
    original: Relation,
    repaired: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
) -> bool:
    """Section 2.2's "valid database repair": closed-world + FT-consistent."""
    if invalid_repair_tids(original, repaired, fds):
        return False
    return is_ft_consistent_all(repaired, list(fds), model, thresholds)
