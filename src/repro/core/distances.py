"""Distance functions and the per-relation distance model.

The paper (Section 2.1) compares tuples on the attributes of a constraint
with a *normalized* per-attribute distance in [0, 1]:

* strings — normalized edit (Levenshtein) distance,
* numerics — normalized Euclidean distance (|a-b| divided by the largest
  observed spread of the attribute),

and combines attributes with Eq. (2)::

    dist(t1^phi, t2^phi) =  w_l * sum_{A in X} dist(t1[A], t2[A])
                          + w_r * sum_{A in Y} dist(t1[A], t2[A])

with ``w_l + w_r = 1`` (default 0.5 / 0.5). The *repair cost* of changing
one projection into another (Eq. 3) is the plain, unweighted sum of
per-attribute distances.

:class:`DistanceModel` binds these formulas to a concrete relation: it
resolves attribute kinds, holds the numeric normalizers, and memoizes
per-attribute value-pair distances (the same string pairs are compared
many times during graph construction and repair search).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    MutableMapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dataset.relation import NUMERIC, Relation, Schema

DistanceFn = Callable[[Any, Any], float]

#: the selectable Levenshtein kernels, fastest first
KERNELS = ("myers", "banded", "two_row")

#: the kernel :func:`levenshtein` dispatches to (see :func:`use_kernel`)
_DEFAULT_KERNEL = "myers"


def default_kernel() -> str:
    """The kernel name :func:`levenshtein` currently dispatches to."""
    return _DEFAULT_KERNEL


def set_default_kernel(name: str) -> None:
    """Select the Levenshtein kernel globally (``myers`` is the default).

    All kernels are exact under the same early-abort contract, so the
    choice affects wall clock only — repairs and violation sets are
    byte-identical for every kernel (asserted by the differential suite
    in ``tests/test_kernels.py`` and the HOSP-slice bench).
    """
    global _DEFAULT_KERNEL
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; expected one of {KERNELS}")
    _DEFAULT_KERNEL = name


@contextmanager
def use_kernel(name: str) -> Iterator[None]:
    """Temporarily switch the default kernel (differential benches)."""
    previous = _DEFAULT_KERNEL
    set_default_kernel(name)
    try:
        yield
    finally:
        set_default_kernel(previous)


# ----------------------------------------------------------------------
# String distances
# ----------------------------------------------------------------------
def levenshtein(a: str, b: str, upper_bound: Optional[int] = None) -> int:
    """Edit distance between *a* and *b* (insert / delete / substitute).

    When *upper_bound* is given, the computation may stop early: the
    result is exact whenever it is ``<= upper_bound``, and otherwise is
    some value ``> upper_bound`` (often exactly ``upper_bound + 1``).
    This is the workhorse of FT-violation detection, where only pairs
    below a threshold matter.

    Dispatches to the kernel selected by :func:`set_default_kernel` /
    :func:`use_kernel`: Myers' bit-parallel scan by default
    (:func:`levenshtein_myers`), the banded DP for bounded calls under
    the ``banded`` kernel, or the classic two-row DP. All kernels
    return identical values within the bound.

    >>> levenshtein("Boston", "Boton")
    1
    >>> levenshtein("kitten", "sitting")
    3
    >>> levenshtein("abcdef", "uvwxyz", upper_bound=2)
    3
    """
    kernel = _DEFAULT_KERNEL
    if kernel == "myers":
        return levenshtein_myers(a, b, upper_bound)
    if kernel == "banded" and upper_bound is not None:
        return levenshtein_banded(a, b, upper_bound)
    return levenshtein_two_row(a, b, upper_bound)


class PreparedKernel:
    """Myers' bit-parallel Levenshtein with the left string fixed.

    The PEQ table (one bitmask of positions per distinct character of
    the pattern) is built once here and reused by every
    :meth:`compare` — the *one-vs-many* shape of blocker settlement,
    candidate verification, target-tree search and the greedy cost
    loops, which all compare one value against many.

    Python ints serve as arbitrary-width bitvectors, so patterns longer
    than a machine word need no explicit multi-word loop: the column
    update runs in O(⌈m/w⌉) big-int word operations per text character
    (Myers, JACM 1999), against the O(m) inner loop of the DP kernels.
    """

    __slots__ = ("text", "length", "_peq", "_full", "_last")

    def __init__(self, text: str) -> None:
        self.text = text
        self.length = len(text)
        peq: Dict[str, int] = {}
        bit = 1
        for ch in text:
            peq[ch] = peq.get(ch, 0) | bit
            bit <<= 1
        self._peq = peq
        self._full = bit - 1  # (1 << m) - 1: masks Python's infinite ~
        self._last = bit >> 1  # the bit tracking row m

    def compare(self, other: str, upper_bound: Optional[int] = None) -> int:
        """Edit distance to *other*; same contract as :func:`levenshtein`.

        The score after text column ``j`` is ``D[m][j]``, which moves by
        at most one per column, so under a bound the scan aborts as soon
        as ``score - (columns left) > upper_bound``.
        """
        text = self.text
        if text == other:
            return 0
        m = self.length
        n = len(other)
        bound = upper_bound
        if bound is not None:
            if bound < 0:
                return 1  # distinct strings differ by at least one edit
            if (m - n if m > n else n - m) > bound:
                return bound + 1
        if m == 0:
            return n  # within the bound: the length gap was checked
        if n == 0:
            return m
        peq_get = self._peq.get
        full = self._full
        last = self._last
        pv = full
        mv = 0
        score = m
        if bound is None:
            for ch in other:
                eq = peq_get(ch, 0)
                xv = eq | mv
                xh = (((eq & pv) + pv) ^ pv) | eq
                ph = mv | (full & ~(xh | pv))
                mh = pv & xh
                if ph & last:
                    score += 1
                elif mh & last:
                    score -= 1
                ph = ((ph << 1) | 1) & full
                mh = (mh << 1) & full
                pv = mh | (full & ~(xv | ph))
                mv = ph & xv
            return score
        remaining = n
        for ch in other:
            remaining -= 1
            eq = peq_get(ch, 0)
            xv = eq | mv
            xh = (((eq & pv) + pv) ^ pv) | eq
            ph = mv | (full & ~(xh | pv))
            mh = pv & xh
            if ph & last:
                score += 1
            elif mh & last:
                score -= 1
            ph = ((ph << 1) | 1) & full
            mh = (mh << 1) & full
            pv = mh | (full & ~(xv | ph))
            mv = ph & xv
            if score - remaining > bound:
                return bound + 1
        return score if score <= bound else bound + 1

    def compare_many(
        self,
        others: Sequence[str],
        upper_bounds: Optional[Sequence[Optional[int]]] = None,
    ) -> List[int]:
        """Batched :meth:`compare` against many right-hand strings.

        *upper_bounds* is either ``None`` (every comparison unbounded) or
        one bound per element of *others*; each result honours the same
        contract as :meth:`compare` — exact iff within its bound. The
        PEQ table is shared across the whole batch, which is the shape
        the vectorized distinct-id join settles candidates in.
        """
        compare = self.compare
        if upper_bounds is None:
            return [compare(other) for other in others]
        return [
            compare(other, bound)
            for other, bound in zip(others, upper_bounds)
        ]


class DistanceKernel:
    """The one-vs-many kernel API: ``prepare(left)`` then ``compare``.

    ``DistanceKernel.prepare(left)`` returns a :class:`PreparedKernel`
    whose ``compare(right, upper_bound=None)`` reuses the PEQ bitmask
    table across every right-hand candidate. Pairwise convenience:
    :func:`levenshtein_myers`.
    """

    @staticmethod
    def prepare(left: str) -> PreparedKernel:
        return PreparedKernel(left)


def levenshtein_myers(a: str, b: str, upper_bound: Optional[int] = None) -> int:
    """Myers' bit-parallel edit distance (pairwise convenience form).

    Same early-abort contract as :func:`levenshtein`. The shorter string
    becomes the pattern so the bitvectors stay narrow. For one-vs-many
    workloads prefer :meth:`DistanceKernel.prepare`, which amortizes the
    PEQ table over all comparisons.

    >>> levenshtein_myers("kitten", "sitting")
    3
    >>> levenshtein_myers("abcdef", "uvwxyz", upper_bound=2)
    3
    """
    if len(a) > len(b):
        a, b = b, a
    return PreparedKernel(a).compare(b, upper_bound)


def levenshtein_two_row(a: str, b: str, upper_bound: Optional[int] = None) -> int:
    """The classic O(len_a * len_b) two-row dynamic program.

    Same early-abort contract as :func:`levenshtein`: exact whenever the
    result is ``<= upper_bound``, some value ``> upper_bound`` otherwise.
    Kept callable directly so the bit-parallel and banded kernels can be
    benchmarked and differentially tested against it.
    """
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if la > lb:  # keep the inner loop over the shorter string
        a, b, la, lb = b, a, lb, la
    if upper_bound is not None:
        # Bound checks come before the empty-string returns so the
        # degenerate corners (empty vs long, negative bounds) honor the
        # "exact iff result <= upper_bound" contract like every kernel.
        if upper_bound < 0:
            return 1  # distinct strings differ by at least one edit
        if lb - la > upper_bound:
            return upper_bound + 1
    if la == 0:
        return lb
    if lb == 0:
        return la

    previous = list(range(la + 1))
    current = [0] * (la + 1)
    for j in range(1, lb + 1):
        current[0] = j
        bj = b[j - 1]
        row_min = current[0]
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            value = min(
                previous[i] + 1,  # delete from b
                current[i - 1] + 1,  # insert into b
                previous[i - 1] + cost,  # substitute
            )
            current[i] = value
            if value < row_min:
                row_min = value
        if upper_bound is not None and row_min > upper_bound:
            return upper_bound + 1
        previous, current = current, previous
    return previous[la]


def levenshtein_banded(a: str, b: str, max_edits: int) -> int:
    """Ukkonen banded edit distance: O(max_edits * min(len_a, len_b)).

    Only the diagonal band ``|i - j| <= max_edits`` of the DP matrix is
    materialized. Any alignment of cost ``<= max_edits`` stays inside
    that band (each cell value is at least ``|i - j|``), so the result
    is **exact whenever it is <= max_edits** and ``max_edits + 1``
    otherwise — the same early-abort contract as :func:`levenshtein`.

    >>> levenshtein_banded("kitten", "sitting", 5)
    3
    >>> levenshtein_banded("abcdef", "uvwxyz", 2)
    3
    """
    if a == b:
        return 0
    if max_edits < 0:
        return 1  # distinct strings differ by at least one edit
    la, lb = len(a), len(b)
    if la > lb:  # band over the shorter string's axis
        a, b, la, lb = b, a, lb, la
    if lb - la > max_edits:
        return max_edits + 1
    if la == 0:
        return lb  # lb <= max_edits here
    overflow = max_edits + 1
    # previous holds row j-1 for i in [plo, plo + len(previous) - 1]
    plo, previous = 0, list(range(min(la, max_edits) + 1))
    for j in range(1, lb + 1):
        lo = j - max_edits if j > max_edits else 0
        hi = min(la, j + max_edits)
        bj = b[j - 1]
        current: list = []
        row_min = overflow
        phi = plo + len(previous) - 1
        for i in range(lo, hi + 1):
            if i == 0:
                value = j  # lo == 0 implies j <= max_edits
            else:
                cost = 0 if a[i - 1] == bj else 1
                value = previous[i - 1 - plo] + cost if plo <= i - 1 <= phi else overflow
                if plo <= i <= phi:  # deletion (vertical move)
                    up = previous[i - plo] + 1
                    if up < value:
                        value = up
                if i - 1 >= lo:  # insertion (horizontal move)
                    left = current[i - 1 - lo] + 1
                    if left < value:
                        value = left
                if value > overflow:
                    value = overflow
            current.append(value)
            if value < row_min:
                row_min = value
        if row_min > max_edits:
            return overflow
        plo, previous = lo, current
    result = previous[la - plo]
    return result if result <= max_edits else overflow


def normalized_edit_distance(a: str, b: str) -> float:
    """Edit distance divided by the longer length; in [0, 1].

    Two empty strings are at distance 0 by convention.

    >>> normalized_edit_distance("Boston", "Boton")
    0.16666666666666666
    >>> normalized_edit_distance("", "")
    0.0
    """
    if a == b:
        return 0.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest


def qgrams(text: str, q: int = 2) -> Tuple[str, ...]:
    """The multiset of *q*-grams of *text*, padded with ``#`` / ``$``.

    Padding makes prefix/suffix characters participate in as many grams
    as interior characters, the standard similarity-join convention.

    >>> qgrams("ab", q=2)
    ('#a', 'ab', 'b$')
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    if not text:
        return ()
    padded = "#" * (q - 1) + text + "$" * (q - 1)
    return tuple(padded[i : i + q] for i in range(len(padded) - q + 1))


def jaccard_distance(a: str, b: str, q: int = 2) -> float:
    """1 - Jaccard similarity of the q-gram sets; in [0, 1].

    An alternative string distance mentioned in Section 2.1; exposed so
    users can register it per attribute.
    """
    if a == b:
        return 0.0
    ga, gb = set(qgrams(a, q)), set(qgrams(b, q))
    if not ga and not gb:
        return 0.0
    union = len(ga | gb)
    if union == 0:
        return 0.0
    return 1.0 - len(ga & gb) / union


# ----------------------------------------------------------------------
# Numeric distance
# ----------------------------------------------------------------------
def normalized_euclidean(a: float, b: float, spread: float) -> float:
    """|a - b| / spread, clamped into [0, 1].

    *spread* is the largest observed distance of the attribute (the paper
    normalizes "by dividing the largest distance", Example 7). Two
    distinct values of a constant-spread column are maximally distant.
    """
    if a == b:
        return 0.0
    if spread <= 0.0:
        return 1.0
    return min(abs(a - b) / spread, 1.0)


# ----------------------------------------------------------------------
# Weighted combination
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Weights:
    """LHS / RHS weight coefficients of Eq. (2).

    The paper requires ``w_l + w_r == 1``; the default (0.5, 0.5) is the
    paper's default. Setting ``w_l=0, w_r=1`` (with ``tau=0``) degrades
    FT-violations to classic FD violations (Section 2.1, Remark).
    """

    lhs: float = 0.5
    rhs: float = 0.5

    def __post_init__(self) -> None:
        if self.lhs < 0 or self.rhs < 0:
            raise ValueError("weights must be non-negative")
        if abs(self.lhs + self.rhs - 1.0) > 1e-9:
            raise ValueError(f"w_l + w_r must be 1, got {self.lhs + self.rhs}")


class DistanceModel:
    """Per-relation distance oracle implementing Eqs. (1)-(3).

    Parameters
    ----------
    relation:
        The instance whose schema and numeric spreads define the
        normalizers. Spreads are captured at construction time, so a
        model built on the dirty input keeps stable distances while the
        relation is being repaired.
    weights:
        LHS/RHS weights of Eq. (2).
    overrides:
        Optional per-attribute distance functions, e.g.
        ``{"Name": jaccard_distance}``. Overrides receive the two raw
        values and must return a normalized distance in [0, 1].
    cache:
        Memoize per-attribute value-pair distances. ``True`` (default)
        uses a private dictionary, ``False`` disables memoization, and a
        mutable mapping plugs in an external store — e.g. the
        worker-persistent cache of :mod:`repro.exec.cache`, which keeps
        distances warm across repairs within one process.

    The model counts its memo traffic: :attr:`cache_hits` /
    :attr:`cache_misses` (see :meth:`cache_info`) feed the execution
    statistics of :class:`repro.exec.RepairExecutor`.
    """

    def __init__(
        self,
        relation: Relation,
        weights: Weights = Weights(),
        overrides: Optional[Dict[str, DistanceFn]] = None,
        cache: "Union[bool, MutableMapping]" = True,
    ) -> None:
        self.schema: Schema = relation.schema
        self.weights = weights
        self._overrides = dict(overrides or {})
        unknown = [a for a in self._overrides if a not in self.schema]
        if unknown:
            raise KeyError(f"override for unknown attribute(s): {unknown}")
        self._spreads: Dict[str, float] = {
            attr.name: relation.value_range(attr.name)
            for attr in self.schema
            if attr.kind == NUMERIC
        }
        if isinstance(cache, bool):
            self._cache: Optional[MutableMapping] = {} if cache else None
        else:
            self._cache = cache
        self.cache_hits = 0
        self.cache_misses = 0
        #: edit-distance kernel invocations (cache misses that reached a
        #: string kernel); feeds the ``kernel_calls`` execution counter
        self.kernel_calls = 0
        # interned Myers preparations: identical strings (across
        # attributes, FDs and probe directions) share one PEQ table
        self._prepared: Dict[str, PreparedKernel] = {}

    @classmethod
    def from_parts(
        cls,
        schema: "Schema",
        spreads: Dict[str, float],
        weights: Weights = Weights(),
        overrides: Optional[Dict[str, DistanceFn]] = None,
        cache: bool = True,
    ) -> "DistanceModel":
        """Rebuild a model from persisted parts (schema + numeric spreads).

        Used when deserializing a fitted repairer: the original relation
        is gone, but the schema and the captured normalizers fully
        determine the model's behaviour.
        """
        from repro.dataset.relation import Relation

        model = cls(Relation(schema), weights, overrides, cache)
        unknown = [a for a in spreads if a not in model._spreads]
        if unknown:
            raise KeyError(f"spreads for non-numeric attribute(s): {unknown}")
        model._spreads.update({k: float(v) for k, v in spreads.items()})
        return model

    @property
    def spreads(self) -> Dict[str, float]:
        """The captured numeric normalizers (for persistence)."""
        return dict(self._spreads)

    # ------------------------------------------------------------------
    def _prepared_kernel(self, text: str) -> PreparedKernel:
        """The interned Myers preparation for *text* (built once)."""
        prepared = self._prepared.get(text)
        if prepared is None:
            prepared = PreparedKernel(text)
            self._prepared[text] = prepared
        return prepared

    def _string_distance(self, a: str, b: str) -> float:
        """Normalized edit distance through the active kernel."""
        if a == b:
            return 0.0
        longest = max(len(a), len(b))
        if longest == 0:
            return 0.0
        self.kernel_calls += 1
        if _DEFAULT_KERNEL == "myers":
            if len(a) > len(b):
                a, b = b, a
            edits = self._prepared_kernel(a).compare(b)
        else:
            edits = levenshtein(a, b)
        return edits / longest

    def attribute_distance(self, attribute: str, v1: Any, v2: Any) -> float:
        """Normalized distance between two values of *attribute* (Eq. 1)."""
        if v1 == v2:
            return 0.0
        if self._cache is not None:
            # Two-way probe instead of canonical ordering: hashing the
            # values twice is far cheaper than repr-based normalization.
            key = (attribute, v1, v2)
            hit = self._cache.get(key)
            if hit is None:
                hit = self._cache.get((attribute, v2, v1))
            if hit is not None:
                self.cache_hits += 1
                return hit
            self.cache_misses += 1
        override = self._overrides.get(attribute)
        if override is not None:
            value = float(override(v1, v2))
        elif attribute in self._spreads:
            value = normalized_euclidean(float(v1), float(v2), self._spreads[attribute])
        else:
            value = self._string_distance(str(v1), str(v2))
        if not 0.0 <= value <= 1.0 + 1e-9:
            raise ValueError(
                f"distance for {attribute!r} out of [0,1]: {value} "
                f"({v1!r} vs {v2!r})"
            )
        if self._cache is not None:
            self._cache[key] = value
        return value

    def attribute_distance_within(
        self, attribute: str, v1: Any, v2: Any, limit: float
    ) -> Optional[float]:
        """Eq. (1) distance when it may be ``<= limit``, else ``None``.

        The contract mirrors the bounded edit distance: whenever a float
        is returned it is the **exact** :meth:`attribute_distance` value
        (bit-identical — callers re-apply their own threshold
        arithmetic); ``None`` is returned only when the distance provably
        exceeds *limit*. Plain string attributes use the banded
        Levenshtein kernel with one edit of slack over
        ``limit * max(len)``, so the kernel band never decides a
        float-boundary case — the caller's comparison does.
        """
        if v1 == v2:
            return 0.0
        if limit < 0.0:
            return None  # distinct values always have positive distance
        if self._cache is not None:
            key = (attribute, v1, v2)
            hit = self._cache.get(key)
            if hit is None:
                hit = self._cache.get((attribute, v2, v1))
            if hit is not None:
                self.cache_hits += 1
                return hit
        if attribute in self._overrides or attribute in self._spreads:
            # cheap to evaluate exactly; no banded shortcut applies
            return self.attribute_distance(attribute, v1, v2)
        a, b = str(v1), str(v2)
        longest = max(len(a), len(b))
        if longest == 0:
            return 0.0
        if self._cache is not None:
            self.cache_misses += 1
        budget = int(limit * longest) + 1
        self.kernel_calls += 1
        if _DEFAULT_KERNEL == "myers":
            edits = self._prepared_kernel(a).compare(b, budget)
        else:
            edits = levenshtein(a, b, upper_bound=budget)
        if edits > budget:
            return None  # > limit by at least (1 - frac)/longest
        value = edits / longest
        if self._cache is not None:
            self._cache[(attribute, v1, v2)] = value
        return value

    def prepare_distance(self, attribute: str, value: Any) -> Callable[[Any], float]:
        """One-vs-many form of :meth:`attribute_distance`.

        Fixes the left *value* and returns ``compare(other) -> float``.
        For plain string attributes the Myers PEQ table is prepared once
        (interned on the model, so identical strings across attributes
        and FDs share one preparation) and reused by every call — cache
        probes, counters, and returned values are identical to the
        pairwise method.
        """
        if attribute in self._overrides or attribute in self._spreads:
            return lambda other: self.attribute_distance(attribute, value, other)
        left = str(value)
        llen = len(left)

        def compare(other: Any) -> float:
            if value == other:
                return 0.0
            if self._cache is not None:
                key = (attribute, value, other)
                hit = self._cache.get(key)
                if hit is None:
                    hit = self._cache.get((attribute, other, value))
                if hit is not None:
                    self.cache_hits += 1
                    return hit
                self.cache_misses += 1
            b = str(other)
            if left == b:
                result = 0.0
            else:
                longest = llen if llen >= len(b) else len(b)
                if longest == 0:
                    result = 0.0
                else:
                    self.kernel_calls += 1
                    if _DEFAULT_KERNEL == "myers":
                        edits = self._prepared_kernel(left).compare(b)
                    else:
                        edits = levenshtein(left, b)
                    result = edits / longest
            if self._cache is not None:
                self._cache[key] = result
            return result

        return compare

    def prepare_within(
        self, attribute: str, value: Any
    ) -> Callable[[Any, float], Optional[float]]:
        """One-vs-many form of :meth:`attribute_distance_within`.

        Fixes the left *value* and returns
        ``compare(other, limit) -> Optional[float]`` with the same
        exact-or-``None`` contract, cache traffic, and counter behaviour
        as the pairwise method — only the per-call PEQ table build is
        amortized away.
        """
        if attribute in self._overrides or attribute in self._spreads:
            return lambda other, limit: self.attribute_distance_within(
                attribute, value, other, limit
            )
        left = str(value)
        llen = len(left)

        def compare(other: Any, limit: float) -> Optional[float]:
            if value == other:
                return 0.0
            if limit < 0.0:
                return None  # distinct values always have positive distance
            if self._cache is not None:
                hit = self._cache.get((attribute, value, other))
                if hit is None:
                    hit = self._cache.get((attribute, other, value))
                if hit is not None:
                    self.cache_hits += 1
                    return hit
            b = str(other)
            longest = llen if llen >= len(b) else len(b)
            if longest == 0:
                return 0.0
            if self._cache is not None:
                self.cache_misses += 1
            budget = int(limit * longest) + 1
            self.kernel_calls += 1
            if _DEFAULT_KERNEL == "myers":
                edits = self._prepared_kernel(left).compare(b, budget)
            else:
                edits = levenshtein(left, b, upper_bound=budget)
            if edits > budget:
                return None  # > limit by at least (1 - frac)/longest
            result = edits / longest
            if self._cache is not None:
                self._cache[(attribute, value, other)] = result
            return result

        return compare

    def is_numeric(self, attribute: str) -> bool:
        """Whether *attribute* is compared with normalized Euclidean."""
        return attribute in self._spreads

    def has_override(self, attribute: str) -> bool:
        """Whether a custom distance function is registered for it."""
        return attribute in self._overrides

    def projection_distance(
        self,
        lhs: Sequence[str],
        rhs: Sequence[str],
        values1: Sequence[Any],
        values2: Sequence[Any],
    ) -> float:
        """Weighted constraint distance of Eq. (2).

        *values1* / *values2* are projections in ``lhs + rhs`` order.
        """
        n_lhs = len(lhs)
        total = 0.0
        for attr, a, b in zip(lhs, values1[:n_lhs], values2[:n_lhs]):
            total += self.weights.lhs * self.attribute_distance(attr, a, b)
        for attr, a, b in zip(rhs, values1[n_lhs:], values2[n_lhs:]):
            total += self.weights.rhs * self.attribute_distance(attr, a, b)
        return total

    def repair_cost(
        self,
        attributes: Sequence[str],
        values1: Sequence[Any],
        values2: Sequence[Any],
    ) -> float:
        """Unweighted sum of per-attribute distances (Eq. 3).

        This is the cost of rewriting one projection into the other, and
        the edge weight of the violation graph (Section 3).
        """
        return sum(
            self.attribute_distance(attr, a, b)
            for attr, a, b in zip(attributes, values1, values2)
        )

    def spread(self, attribute: str) -> float:
        """The Euclidean normalizer captured for a numeric attribute."""
        return self._spreads[attribute]

    def cache_size(self) -> int:
        """Number of memoized value pairs (0 when caching is off)."""
        return len(self._cache) if self._cache is not None else 0

    def cache_info(self) -> Dict[str, float]:
        """Memo traffic of this model: hits, misses, size, hit rate."""
        probes = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": self.cache_size(),
            "hit_rate": self.cache_hits / probes if probes else 0.0,
        }
