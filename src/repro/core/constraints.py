"""Integrity constraints: functional dependencies and their CFD extension.

The paper states its model and algorithms for functional dependencies
(FDs) ``phi: X -> Y`` and notes that both the theory and the algorithms
carry over to conditional functional dependencies (CFDs). We implement:

* :class:`FD` — a plain functional dependency with LHS/RHS attribute
  lists, parsing (``FD.parse("City, Street -> District")``), schema
  validation and binding (pre-resolved column indexes).
* :class:`CFD` — an FD plus a pattern tableau. A constant pattern
  restricts the tuples the embedded FD applies to; the repair engine
  reduces each CFD to its embedded FD on the satisfying sub-instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.dataset.relation import Relation, Schema


@dataclass(frozen=True)
class FD:
    """A functional dependency ``lhs -> rhs``.

    Attribute order matters for projections: a pattern over this FD is a
    value tuple in ``lhs + rhs`` order.

    >>> fd = FD.parse("City, Street -> District")
    >>> fd.lhs
    ('City', 'Street')
    >>> fd.rhs
    ('District',)
    >>> fd.attributes
    ('City', 'Street', 'District')
    """

    lhs: Tuple[str, ...]
    rhs: Tuple[str, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise ValueError("an FD needs at least one attribute on each side")
        overlap = set(self.lhs) & set(self.rhs)
        if overlap:
            raise ValueError(f"attributes on both sides of the FD: {sorted(overlap)}")
        if len(set(self.lhs)) != len(self.lhs) or len(set(self.rhs)) != len(self.rhs):
            raise ValueError("duplicate attribute within one side of the FD")
        if not self.name:
            object.__setattr__(self, "name", self._default_name())

    def _default_name(self) -> str:
        return f"{','.join(self.lhs)}->{','.join(self.rhs)}"

    @classmethod
    def parse(cls, text: str, name: str = "") -> "FD":
        """Parse ``"A, B -> C, D"`` into an FD.

        Both ``->`` and the unicode arrow are accepted; whitespace around
        attribute names is stripped.
        """
        normalized = text.replace("→", "->")
        if "->" not in normalized:
            raise ValueError(f"not an FD (missing '->'): {text!r}")
        left, _, right = normalized.partition("->")
        lhs = tuple(part.strip() for part in left.split(",") if part.strip())
        rhs = tuple(part.strip() for part in right.split(",") if part.strip())
        return cls(lhs, rhs, name=name)

    @property
    def attributes(self) -> Tuple[str, ...]:
        """All attributes of the FD, LHS first (projection order)."""
        return self.lhs + self.rhs

    @property
    def attribute_set(self) -> FrozenSet[str]:
        """The attributes as a frozen set (for overlap tests)."""
        return frozenset(self.attributes)

    def overlaps(self, other: "FD") -> bool:
        """Whether the two FDs share any attribute (Section 4.1)."""
        return bool(self.attribute_set & other.attribute_set)

    def validate(self, schema: Schema) -> None:
        """Raise ``KeyError`` if any FD attribute is missing from *schema*."""
        missing = [a for a in self.attributes if a not in schema]
        if missing:
            raise KeyError(f"FD {self.name} uses unknown attribute(s): {missing}")

    def bind(self, schema: Schema) -> "BoundFD":
        """Resolve attribute names to column indexes against *schema*."""
        self.validate(schema)
        return BoundFD(
            fd=self,
            lhs_indexes=schema.indexes_of(self.lhs),
            rhs_indexes=schema.indexes_of(self.rhs),
        )

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BoundFD:
    """An FD with schema positions pre-resolved (hot-path helper)."""

    fd: FD
    lhs_indexes: Tuple[int, ...]
    rhs_indexes: Tuple[int, ...]

    @property
    def indexes(self) -> Tuple[int, ...]:
        return self.lhs_indexes + self.rhs_indexes

    def project(self, row: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """The tuple's pattern over this FD (``lhs + rhs`` order)."""
        return tuple(row[i] for i in self.indexes)


# ----------------------------------------------------------------------
# Conditional functional dependencies
# ----------------------------------------------------------------------
#: The tableau wildcard, matching any value.
WILDCARD = "_"


class PatternRow:
    """One row of a CFD pattern tableau.

    Maps a subset of the embedded FD's attributes to constants; missing
    attributes (and the explicit :data:`WILDCARD`) match anything. A
    tuple *matches* the row when every constant over an LHS attribute
    agrees; a constant over an RHS attribute asserts the value the RHS
    must take for matching tuples.

    Rows are immutable and hashable, so CFDs can key dictionaries (e.g.
    per-constraint threshold mappings).
    """

    __slots__ = ("_items",)

    def __init__(self, constants: Optional[Mapping[str, Any]] = None) -> None:
        items = tuple(sorted((constants or {}).items(), key=lambda kv: kv[0]))
        object.__setattr__(self, "_items", items)

    @property
    def constants(self) -> Dict[str, Any]:
        """The row's constants as a fresh attribute -> value dict."""
        return dict(self._items)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("PatternRow is immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternRow):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        return f"PatternRow({dict(self._items)!r})"

    def lhs_matches(self, fd: FD, record: Mapping[str, Any]) -> bool:
        """Whether *record* satisfies the row's LHS constants."""
        for attr in fd.lhs:
            want = self.constants.get(attr, WILDCARD)
            if want != WILDCARD and record[attr] != want:
                return False
        return True

    def rhs_constants(self, fd: FD) -> Dict[str, Any]:
        """The constants the row asserts over the FD's RHS."""
        return {
            attr: value
            for attr, value in self.constants.items()
            if attr in fd.rhs and value != WILDCARD
        }


@dataclass(frozen=True)
class CFD:
    """A conditional functional dependency: an FD plus a pattern tableau.

    With an empty tableau (or a single all-wildcard row) the CFD is
    exactly its embedded FD. With constant rows, the embedded FD is only
    required to hold on the sub-instance matching each row's LHS
    constants, and RHS constants additionally pin the value.

    The engine supports CFDs by *reduction*: each tableau row selects a
    sub-instance on which the embedded FD is repaired; RHS constants are
    enforced as direct cell corrections first.
    """

    fd: FD
    tableau: Tuple[PatternRow, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"cfd:{self.fd.name}")
        for row in self.tableau:
            unknown = set(row.constants) - set(self.fd.attributes)
            if unknown:
                raise ValueError(
                    f"tableau constants over non-FD attribute(s): {sorted(unknown)}"
                )

    @property
    def is_plain_fd(self) -> bool:
        """True when the tableau imposes no condition at all."""
        return all(not row.constants for row in self.tableau) or not self.tableau

    def matching_tids(self, relation: Relation, row: PatternRow) -> List[int]:
        """Tuple ids of *relation* matching the LHS constants of *row*."""
        return [
            tid
            for tid in relation.tids()
            if row.lhs_matches(self.fd, relation.as_record(tid))
        ]

    def rows_or_wildcard(self) -> Tuple[PatternRow, ...]:
        """The tableau, defaulting to a single all-wildcard row."""
        return self.tableau if self.tableau else (PatternRow(),)


def parse_fds(specs: Iterable[str]) -> List[FD]:
    """Parse several textual FDs at once.

    >>> [fd.name for fd in parse_fds(["A -> B", "B -> C"])]
    ['A->B', 'B->C']
    """
    return [FD.parse(spec) for spec in specs]


def validate_constraints(fds: Iterable[FD], schema: Schema) -> None:
    """Validate a set of FDs against a schema, reporting all failures."""
    problems: List[str] = []
    for fd in fds:
        try:
            fd.validate(schema)
        except KeyError as exc:
            problems.append(str(exc))
    if problems:
        raise KeyError("; ".join(problems))
