"""The repair engine: one facade over every algorithm in the paper.

:class:`Repairer` wires together threshold selection, the FD graph
decomposition (Theorem 5), the component-sharded
:class:`~repro.exec.RepairExecutor` (per-component algorithm dispatch,
optional worker-process parallelism), and repair merging:

* ``exact-s`` / ``greedy-s`` — Section 3 single-FD algorithms; on a
  multi-FD component they are applied *sequentially and independently*
  per FD (the paper's baseline treatment of single-FD repair in multi-FD
  settings).
* ``exact-m`` / ``appro-m`` / ``greedy-m`` — Section 4 joint algorithms,
  run once per connected FD-graph component.

Configuration lives in a frozen :class:`~repro.exec.RepairConfig`;
keyword overrides are applied on top of it. Typical use::

    from repro import FD, RepairConfig, Repairer
    fds = [FD.parse("City -> State"), FD.parse("City, Street -> District")]

    result = Repairer(fds, algorithm="greedy-m").repair(relation)

    # equivalently, with an explicit (shareable, immutable) config:
    config = RepairConfig(algorithm="greedy-m", n_jobs=4)
    result = Repairer(fds, config=config).repair(relation)
    clean = result.relation

The executor guarantees byte-identical output for every ``n_jobs``
value (see ``docs/parallelism.md``).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro._compat import deprecated
from repro.core.constraints import FD, validate_constraints
from repro.core.distances import DistanceModel, Weights
from repro.core.repair import RepairResult, squash_edits
from repro.core.thresholds import suggest_thresholds
from repro.dataset.relation import Relation
from repro.exec.config import RepairConfig
from repro.obs import (
    RunReport,
    Tracer,
    activate,
    add_counters,
    build_report,
    repair_output_hash,
    span,
)
from repro.utils.rng import SeedLike
from repro.utils.timing import Stopwatch

#: name -> (paper section, description); the library's Table 2.
ALGORITHMS: Dict[str, Dict[str, str]] = {
    "exact-s": {
        "section": "3.1",
        "description": "Expansion-based optimal algorithm for a single FD",
        "complexity": "O(mu * |V| * |E|)",
    },
    "greedy-s": {
        "section": "3.2",
        "description": "Greedy algorithm for a single FD",
        "complexity": "O(|I| * |V|)",
    },
    "exact-m": {
        "section": "4.2",
        "description": "Expansion-based optimal algorithm for multiple FDs",
        "complexity": "O(|V|^(|Sigma|+1))",
    },
    "appro-m": {
        "section": "4.3",
        "description": "Per-FD greedy sets joined into targets",
        "complexity": "O(|V|^2 * |Sigma|)",
    },
    "greedy-m": {
        "section": "4.4",
        "description": "Joint greedy with cross-FD synchronization",
        "complexity": "O(|Sigma| * |V|^2)",
    },
}

ThresholdsLike = Union[None, float, Mapping[FD, float]]

#: the pre-RepairConfig positional parameter order, oldest API first
_LEGACY_POSITIONAL: Tuple[str, ...] = (
    "algorithm",
    "weights",
    "thresholds",
    "use_tree",
    "join_strategy",
    "fallback",
    "max_nodes",
    "max_combinations",
    "distance_overrides",
    "threshold_ceiling",
    "rng",
)

# Kept under its historic name for callers of the private helper.
_squash_edits = squash_edits


class Repairer:
    """End-to-end fault-tolerant repair of a relation against FDs.

    The canonical constructor takes the FDs plus a frozen
    :class:`~repro.exec.RepairConfig` and/or keyword-only overrides::

        Repairer(fds, config=RepairConfig(algorithm="exact-m"))
        Repairer(fds, algorithm="exact-m", n_jobs=4)
        Repairer(fds, config=base_config, thresholds=0.4)   # override one field

    Positional arguments beyond *fds* follow the pre-1.1 signature and
    still work, but emit a :class:`DeprecationWarning` (as does the old
    ``rng=`` spelling of ``seed``).

    Parameters
    ----------
    fds:
        The functional dependencies to enforce.
    config:
        A :class:`~repro.exec.RepairConfig`; defaults to
        ``RepairConfig()``. Keyword overrides below are applied on top.
    algorithm:
        One of :data:`ALGORITHMS`. Default ``"greedy-m"`` — the paper's
        best quality/speed trade-off.
    weights:
        LHS/RHS weights of the projection distance (Eq. 2).
    thresholds:
        Per-FD tau mapping, a single scalar for every FD, or ``None`` to
        derive taus from the data with the Section 2.1 gap heuristic at
        repair time.
    use_tree:
        Use the Section 5 target tree for multi-FD repairs (the
        "-Tree" variants of the experiments). Naive target joins
        otherwise.
    join_strategy:
        Violation-detection strategy (see
        :class:`repro.index.simjoin.SimilarityJoin`): ``"indexed"``
        (default — sub-quadratic candidate generation via the blocker
        planner, ``docs/detection.md``), ``"vectorized"`` (the same
        filters batched through numpy at distinct-dictionary-id
        granularity; falls back to ``"indexed"`` when numpy is
        missing), ``"filtered"``, ``"qgram"`` or ``"naive"``. Every
        strategy returns identical violations. ``simjoin_strategy=`` is
        accepted as a synonym.
    fallback:
        For exact algorithms only: ``"error"`` propagates budget
        overruns, ``"greedy"`` degrades to the corresponding greedy
        algorithm — loudly: a
        :class:`~repro.exec.DegradedRepairWarning` is emitted and the
        component recorded in ``result.stats.degraded_components``.
    max_nodes / max_combinations:
        Budgets for the exact expansions.
    distance_overrides:
        Per-attribute distance functions forwarded to
        :class:`~repro.core.distances.DistanceModel`.
    n_jobs:
        Worker processes for the component-sharded executor. ``1``
        (default) = deterministic serial execution in-process; ``-1`` =
        one worker per CPU. Output is byte-identical for every value.
    component_budget:
        Violation-graph node budget per component: an exact algorithm
        is pre-emptively degraded to its greedy counterpart on any
        component larger than this (``None`` = never).
    seed:
        Seed for threshold sampling (previously ``rng``).
    """

    def __init__(
        self,
        fds: Sequence[FD],
        *legacy_args: object,
        config: Optional[RepairConfig] = None,
        **overrides: object,
    ) -> None:
        if not fds:
            raise ValueError("at least one FD is required")
        if legacy_args:
            if config is not None:
                raise TypeError(
                    "pass either config=RepairConfig(...) or positional "
                    "arguments, not both"
                )
            if len(legacy_args) > len(_LEGACY_POSITIONAL):
                raise TypeError(
                    f"Repairer takes at most {len(_LEGACY_POSITIONAL)} "
                    f"positional arguments beyond fds "
                    f"({len(legacy_args)} given)"
                )
            deprecated(
                "positional Repairer arguments beyond `fds` are deprecated; "
                "pass config=RepairConfig(...) or keyword overrides "
                "(e.g. Repairer(fds, algorithm='exact-m'))",
                since="1.1",
            )
            for name, value in zip(_LEGACY_POSITIONAL, legacy_args):
                if name in overrides:
                    raise TypeError(
                        f"Repairer got multiple values for argument {name!r}"
                    )
                overrides[name] = value
        if "rng" in overrides:
            if "seed" in overrides:
                raise TypeError(
                    "pass seed=... (rng= is its deprecated alias), not both"
                )
            if not legacy_args:  # positional use already warned once
                deprecated(
                    "Repairer(rng=...) is deprecated; use seed=...",
                    since="1.1",
                )
            overrides["seed"] = overrides.pop("rng")
        base = config if config is not None else RepairConfig()
        self.config: RepairConfig = base.merged(**overrides)
        self.fds: List[FD] = list(fds)
        self._last_report: Optional[RunReport] = None

    # -- config passthrough (the pre-1.1 attribute surface) -------------
    @property
    def algorithm(self) -> str:
        return self.config.algorithm

    @property
    def weights(self) -> Weights:
        return self.config.weights

    @property
    def use_tree(self) -> bool:
        return self.config.use_tree

    @property
    def join_strategy(self) -> str:
        return self.config.join_strategy

    @property
    def simjoin_strategy(self) -> str:
        """Alias of :attr:`join_strategy` (the CLI flag spelling)."""
        return self.config.join_strategy

    @property
    def fallback(self) -> str:
        return self.config.fallback

    @property
    def max_nodes(self) -> Optional[int]:
        return self.config.max_nodes

    @property
    def max_combinations(self) -> int:
        return self.config.max_combinations

    @property
    def n_jobs(self) -> int:
        return self.config.n_jobs

    @property
    def component_budget(self) -> Optional[int]:
        return self.config.component_budget

    @property
    def seed(self) -> SeedLike:
        return self.config.seed

    @property
    def _thresholds_spec(self) -> ThresholdsLike:
        return self.config.thresholds

    @property
    def _distance_overrides(self):
        return self.config.distance_overrides

    @property
    def _threshold_ceiling(self) -> object:
        return self.config.threshold_ceiling

    @property
    def _rng(self) -> SeedLike:
        return self.config.seed

    # ------------------------------------------------------------------
    def build_model(self, relation: Relation) -> DistanceModel:
        """The distance model this repairer would use on *relation*."""
        return DistanceModel(
            relation,
            weights=self.config.weights,
            overrides=self.config.distance_overrides,
        )

    def resolve_thresholds(
        self, relation: Relation, model: Optional[DistanceModel] = None
    ) -> Dict[FD, float]:
        """Materialize the per-FD tau mapping for *relation*."""
        spec = self.config.thresholds
        if isinstance(spec, Mapping):
            missing = [fd for fd in self.fds if fd not in spec]
            if missing:
                raise KeyError(
                    f"no threshold for FD(s): {[fd.name for fd in missing]}"
                )
            return {fd: float(spec[fd]) for fd in self.fds}
        if isinstance(spec, (int, float)):
            return {fd: float(spec) for fd in self.fds}
        model = model or self.build_model(relation)
        return suggest_thresholds(
            relation,
            self.fds,
            model,
            ceiling=self.config.threshold_ceiling,
            rng=self.config.seed,
        )

    def _executor(self):
        from repro.exec.executor import RepairExecutor

        return RepairExecutor(self.config)

    # -- detectors -------------------------------------------------------
    def _extra_detectors(self) -> Tuple[str, ...]:
        """Configured detector names beyond the built-in FD path."""
        spec = self.config.detectors
        if not spec:
            return ()
        return tuple(name for name in spec if name != "fd")

    def _run_detectors(self, relation: Relation, model, thresholds):
        """Run the configured non-FD detectors; [] when none.

        Emits one ``detector_cells_flagged.<name>`` counter per
        detector into the active tracer (``docs/observability.md``).
        """
        names = self._extra_detectors()
        if not names:
            return []
        from repro.detect import DetectorContext, run_detectors

        context = DetectorContext(
            fds=self.fds,
            model=model,
            thresholds=thresholds,
            seed=self.config.seed,
        )
        verdicts = run_detectors(relation, names, context)
        add_counters(
            {
                f"detector_cells_flagged.{v.detector}": len(v.cells)
                for v in verdicts
            }
        )
        return verdicts

    # -- observability ---------------------------------------------------
    def _tracer(self, relation: Relation, operation: str) -> Optional[Tracer]:
        """A fresh run tracer when ``config.trace`` is on, else ``None``."""
        if not self.config.trace:
            return None
        return Tracer(
            "run",
            operation=operation,
            rows=len(relation),
            fds=[fd.name for fd in self.fds],
            algorithm=self.config.algorithm,
        )

    def _finish_report(
        self,
        tracer: Optional[Tracer],
        relation: Relation,
        operation: str,
        result_digest: Dict[str, object],
    ) -> Optional[RunReport]:
        if tracer is None:
            return None
        report = build_report(
            tracer,
            operation=operation,
            config=self.config,
            relation=relation,
            result=result_digest,
        )
        self._last_report = report
        return report

    def report(self) -> RunReport:
        """The :class:`~repro.obs.RunReport` of the last traced run.

        Requires ``trace=True`` in the config (or the CLI ``--trace`` /
        ``--report``): untraced runs keep the instrumentation points as
        no-ops and record nothing. The report covers the most recent
        :meth:`repair`, :meth:`detect`, or :meth:`repair_many` call.
        """
        if self._last_report is None:
            raise RuntimeError(
                "no traced run to report: construct the Repairer with "
                "trace=True (or RepairConfig(trace=True)) and call "
                "repair()/detect() first"
            )
        return self._last_report

    # ------------------------------------------------------------------
    def detect(self, relation: Relation):
        """Detection only: the FT-violations this repairer would resolve.

        Returns a :class:`repro.core.detection.DetectionReport`; nothing
        is modified. Useful to review suspects before committing to an
        automatic repair, or to gate a pipeline on ``report.is_clean()``.
        Like :meth:`repair`, the report carries ``.stats``
        (:class:`~repro.exec.ExecutionStats`: per-FD seconds, cache and
        filter counters) and ``.timings``; detection shards one task per
        FD under ``n_jobs``.
        """
        validate_constraints(self.fds, relation.schema)
        tracer = self._tracer(relation, "detect")
        watch = Stopwatch()
        with activate(tracer):
            with watch.measure("model"), span("model"):
                model = self.build_model(relation)
            with watch.measure("thresholds"), span("thresholds"):
                thresholds = self.resolve_thresholds(relation, model)
            verdicts = []
            if self._extra_detectors():
                with watch.measure("detectors"), span("detectors"):
                    verdicts = self._run_detectors(
                        relation, model, thresholds
                    )
            report = self._executor().detect(relation, self.fds, thresholds)
        for verdict in verdicts:
            report.detector_verdicts[verdict.detector] = verdict
        if verdicts:
            report.stats["detector_cells_flagged"] = {
                v.detector: len(v.cells) for v in verdicts
            }
        report.timings.update(watch.totals)
        report.run_report = self._finish_report(
            tracer,
            relation,
            "detect",
            {"violations": report.total_violations},
        )
        return report

    # ------------------------------------------------------------------
    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation*; the input is never mutated."""
        validate_constraints(self.fds, relation.schema)
        tracer = self._tracer(relation, "repair")
        watch = Stopwatch()
        with activate(tracer):
            with watch.measure("model"), span("model"):
                model = self.build_model(relation)
            with watch.measure("thresholds"), span("thresholds"):
                thresholds = self.resolve_thresholds(relation, model)
            verdicts = []
            if self._extra_detectors():
                with watch.measure("detectors"), span("detectors"):
                    verdicts = self._run_detectors(
                        relation, model, thresholds
                    )
            result = self._executor().repair(
                relation, self.fds, thresholds, verdicts=verdicts or None
            )
        if verdicts:
            result.stats["detector_cells_flagged"] = {
                v.detector: len(v.cells) for v in verdicts
            }
        result.timings.update(watch.totals)
        result.run_report = self._finish_report(
            tracer,
            relation,
            "repair",
            {
                "edits": len(result.edits),
                "cost": round(result.cost, 9),
                "output_hash": repair_output_hash(result.edits, result.cost),
            },
        )
        return result

    def repair_many(
        self, relations: Sequence[Relation]
    ) -> List[RepairResult]:
        """Repair a batch of relations through one shared executor run.

        All components of all relations enter a single task queue, so a
        batch parallelizes under ``n_jobs`` even when each individual
        relation has few FD-graph components. Results come back in input
        order; each is exactly what :meth:`repair` would have produced.
        """
        watch = Stopwatch()
        jobs = []
        tracer: Optional[Tracer] = None
        if self.config.trace and relations:
            tracer = Tracer(
                "run",
                operation="repair_many",
                jobs=len(relations),
                fds=[fd.name for fd in self.fds],
                algorithm=self.config.algorithm,
            )
        with activate(tracer):
            with watch.measure("thresholds"), span("thresholds"):
                for relation in relations:
                    validate_constraints(self.fds, relation.schema)
                    model = self.build_model(relation)
                    jobs.append(
                        (relation, self.fds,
                         self.resolve_thresholds(relation, model))
                    )
            results = self._executor().repair_many(jobs)
        for result in results:
            result.timings.setdefault("thresholds", watch.total("thresholds"))
        if tracer is not None and relations:
            # one whole-batch report, fingerprinted on the first relation
            batch = self._finish_report(
                tracer,
                relations[0],
                "repair_many",
                {
                    "jobs": len(results),
                    "edits": sum(len(r.edits) for r in results),
                    "cost": round(sum(r.cost for r in results), 9),
                },
            )
            for result in results:
                result.run_report = batch
        return results
