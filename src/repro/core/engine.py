"""The repair engine: one facade over every algorithm in the paper.

:class:`Repairer` wires together threshold selection, the FD graph
decomposition (Theorem 5), per-component algorithm dispatch, and repair
merging:

* ``exact-s`` / ``greedy-s`` — Section 3 single-FD algorithms; on a
  multi-FD component they are applied *sequentially and independently*
  per FD (the paper's baseline treatment of single-FD repair in multi-FD
  settings).
* ``exact-m`` / ``appro-m`` / ``greedy-m`` — Section 4 joint algorithms,
  run once per connected FD-graph component.

Typical use::

    from repro import FD, Repairer
    fds = [FD.parse("City -> State"), FD.parse("City, Street -> District")]
    result = Repairer(fds, algorithm="greedy-m").repair(relation)
    clean = result.relation
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.constraints import FD, validate_constraints
from repro.core.distances import DistanceModel, Weights
from repro.core.multi.appro import repair_multi_fd_appro
from repro.core.multi.exact import CombinationLimitError, repair_multi_fd_exact
from repro.core.multi.fdgraph import fd_components
from repro.core.multi.greedy import repair_multi_fd_greedy
from repro.core.repair import RepairResult, merge_results
from repro.core.single.exact import repair_single_fd_exact
from repro.core.single.greedy import repair_single_fd_greedy
from repro.core.single.mis import ExpansionLimitError
from repro.core.thresholds import suggest_thresholds
from repro.dataset.relation import Relation
from repro.utils.rng import SeedLike

#: name -> (paper section, description); the library's Table 2.
ALGORITHMS: Dict[str, Dict[str, str]] = {
    "exact-s": {
        "section": "3.1",
        "description": "Expansion-based optimal algorithm for a single FD",
        "complexity": "O(mu * |V| * |E|)",
    },
    "greedy-s": {
        "section": "3.2",
        "description": "Greedy algorithm for a single FD",
        "complexity": "O(|I| * |V|)",
    },
    "exact-m": {
        "section": "4.2",
        "description": "Expansion-based optimal algorithm for multiple FDs",
        "complexity": "O(|V|^(|Sigma|+1))",
    },
    "appro-m": {
        "section": "4.3",
        "description": "Per-FD greedy sets joined into targets",
        "complexity": "O(|V|^2 * |Sigma|)",
    },
    "greedy-m": {
        "section": "4.4",
        "description": "Joint greedy with cross-FD synchronization",
        "complexity": "O(|Sigma| * |V|^2)",
    },
}

ThresholdsLike = Union[None, float, Mapping[FD, float]]


class Repairer:
    """End-to-end fault-tolerant repair of a relation against FDs.

    Parameters
    ----------
    fds:
        The functional dependencies to enforce.
    algorithm:
        One of :data:`ALGORITHMS`. Default ``"greedy-m"`` — the paper's
        best quality/speed trade-off.
    weights:
        LHS/RHS weights of the projection distance (Eq. 2).
    thresholds:
        Per-FD tau mapping, a single scalar for every FD, or ``None`` to
        derive taus from the data with the Section 2.1 gap heuristic at
        repair time.
    use_tree:
        Use the Section 5 target tree for multi-FD repairs (the
        "-Tree" variants of the experiments). Naive target joins
        otherwise.
    join_strategy:
        Violation-detection filter stack (see
        :class:`repro.index.simjoin.SimilarityJoin`).
    fallback:
        For exact algorithms only: ``"error"`` propagates budget
        overruns, ``"greedy"`` silently degrades to the corresponding
        greedy algorithm (recorded in ``result.stats``).
    max_nodes / max_combinations:
        Budgets for the exact expansions.
    distance_overrides:
        Per-attribute distance functions forwarded to
        :class:`~repro.core.distances.DistanceModel`.
    rng:
        Seed for threshold sampling.
    """

    def __init__(
        self,
        fds: Sequence[FD],
        algorithm: str = "greedy-m",
        weights: Weights = Weights(),
        thresholds: ThresholdsLike = None,
        use_tree: bool = True,
        join_strategy: str = "filtered",
        fallback: str = "error",
        max_nodes: Optional[int] = 200_000,
        max_combinations: int = 1_000_000,
        distance_overrides: Optional[Dict[str, object]] = None,
        threshold_ceiling: object = "median",
        rng: SeedLike = None,
    ) -> None:
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            )
        if fallback not in ("error", "greedy"):
            raise ValueError("fallback must be 'error' or 'greedy'")
        if not fds:
            raise ValueError("at least one FD is required")
        self.fds: List[FD] = list(fds)
        self.algorithm = algorithm
        self.weights = weights
        self._thresholds_spec = thresholds
        self.use_tree = use_tree
        self.join_strategy = join_strategy
        self.fallback = fallback
        self.max_nodes = max_nodes
        self.max_combinations = max_combinations
        self._distance_overrides = distance_overrides
        self._threshold_ceiling = threshold_ceiling
        self._rng = rng

    # ------------------------------------------------------------------
    def build_model(self, relation: Relation) -> DistanceModel:
        """The distance model this repairer would use on *relation*."""
        return DistanceModel(
            relation, weights=self.weights, overrides=self._distance_overrides
        )

    def resolve_thresholds(
        self, relation: Relation, model: Optional[DistanceModel] = None
    ) -> Dict[FD, float]:
        """Materialize the per-FD tau mapping for *relation*."""
        if isinstance(self._thresholds_spec, Mapping):
            missing = [fd for fd in self.fds if fd not in self._thresholds_spec]
            if missing:
                raise KeyError(
                    f"no threshold for FD(s): {[fd.name for fd in missing]}"
                )
            return {fd: float(self._thresholds_spec[fd]) for fd in self.fds}
        if isinstance(self._thresholds_spec, (int, float)):
            return {fd: float(self._thresholds_spec) for fd in self.fds}
        model = model or self.build_model(relation)
        return suggest_thresholds(
            relation,
            self.fds,
            model,
            ceiling=self._threshold_ceiling,
            rng=self._rng,
        )

    # ------------------------------------------------------------------
    def detect(self, relation: Relation):
        """Detection only: the FT-violations this repairer would resolve.

        Returns a :class:`repro.core.detection.DetectionReport`; nothing
        is modified. Useful to review suspects before committing to an
        automatic repair, or to gate a pipeline on ``report.is_clean()``.
        """
        from repro.core.detection import detect as _detect

        validate_constraints(self.fds, relation.schema)
        model = self.build_model(relation)
        thresholds = self.resolve_thresholds(relation, model)
        return _detect(relation, self.fds, model, thresholds)

    # ------------------------------------------------------------------
    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation*; the input is never mutated."""
        validate_constraints(self.fds, relation.schema)
        model = self.build_model(relation)
        thresholds = self.resolve_thresholds(relation, model)
        parts: List[RepairResult] = []
        for component in fd_components(self.fds):
            parts.append(
                self._repair_component(relation, component, model, thresholds)
            )
        merged = merge_results(relation, parts)
        merged.stats["algorithm"] = self.algorithm
        merged.stats["thresholds"] = {fd.name: thresholds[fd] for fd in self.fds}
        merged.stats["fd_components"] = len(parts)
        return merged

    # ------------------------------------------------------------------
    def _repair_component(
        self,
        relation: Relation,
        component: List[FD],
        model: DistanceModel,
        thresholds: Dict[FD, float],
    ) -> RepairResult:
        if self.algorithm in ("exact-s", "greedy-s"):
            return self._repair_sequential(relation, component, model, thresholds)
        if self.algorithm == "appro-m":
            return repair_multi_fd_appro(
                relation,
                component,
                model,
                thresholds,
                use_tree=self.use_tree,
                join_strategy=self.join_strategy,
            )
        if self.algorithm == "greedy-m":
            return repair_multi_fd_greedy(
                relation,
                component,
                model,
                thresholds,
                use_tree=self.use_tree,
                join_strategy=self.join_strategy,
            )
        # exact-m
        try:
            return repair_multi_fd_exact(
                relation,
                component,
                model,
                thresholds,
                use_tree=self.use_tree,
                max_nodes=self.max_nodes,
                max_combinations=self.max_combinations,
                join_strategy=self.join_strategy,
            )
        except (ExpansionLimitError, CombinationLimitError):
            if self.fallback != "greedy":
                raise
            result = repair_multi_fd_greedy(
                relation,
                component,
                model,
                thresholds,
                use_tree=self.use_tree,
                join_strategy=self.join_strategy,
            )
            result.stats["fallback_from"] = "exact-m"
            return result

    def _repair_sequential(
        self,
        relation: Relation,
        component: List[FD],
        model: DistanceModel,
        thresholds: Dict[FD, float],
    ) -> RepairResult:
        """Apply the single-FD algorithm FD by FD on the evolving data."""
        current = relation
        edits = []
        total = 0.0
        for fd in component:
            if self.algorithm == "exact-s":
                try:
                    step = repair_single_fd_exact(
                        current,
                        fd,
                        model,
                        thresholds[fd],
                        max_nodes=self.max_nodes,
                        join_strategy=self.join_strategy,
                    )
                except ExpansionLimitError:
                    if self.fallback != "greedy":
                        raise
                    step = repair_single_fd_greedy(
                        current, fd, model, thresholds[fd],
                        join_strategy=self.join_strategy,
                    )
                    step.stats["fallback_from"] = "exact-s"
            else:
                step = repair_single_fd_greedy(
                    current, fd, model, thresholds[fd],
                    join_strategy=self.join_strategy,
                )
            current = step.relation
            edits.extend(step.edits)
            total += step.cost
        return RepairResult(current, _squash_edits(edits), total, {})


def _squash_edits(edits):
    """Collapse repeated rewrites of the same cell into the final one.

    Sequential per-FD repair can touch a cell twice; the net effect is a
    single old -> final rewrite (and none at all when the cell returns to
    its original value).
    """
    from repro.core.repair import CellEdit

    first_old: Dict = {}
    last_new: Dict = {}
    order: List = []
    for edit in edits:
        if edit.cell not in first_old:
            first_old[edit.cell] = edit.old
            order.append(edit.cell)
        last_new[edit.cell] = edit.new
    return [
        CellEdit(cell[0], cell[1], first_old[cell], last_new[cell])
        for cell in order
        if first_old[cell] != last_new[cell]
    ]
