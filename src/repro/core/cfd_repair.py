"""Conditional-FD repair by reduction (the paper's Section 2 extension).

The paper develops its model for FDs and notes that "both theoretical
results and algorithms can be applied on its extension, conditional
functional dependencies". This module realizes that extension by
*reduction*: a CFD is an embedded FD plus a pattern tableau, and

1. **constant RHS patterns** are enforced directly — a tuple matching a
   row's LHS constants whose RHS cell is *similar* to the asserted
   constant (within the CFD's tau) is corrected to it; a very different
   value is left alone (it more likely signals an LHS error, which step
   2's similarity machinery handles);
2. **each tableau row** restricts the instance to its matching tuples,
   and the embedded FD is repaired on that sub-instance with the
   standard single-FD machinery (Greedy-S by default, Exact-S on
   request), edits being mapped back to the original tuple ids.

CFDs are processed independently and sequentially; joint multi-CFD
repair (the analogue of Section 4) is future work the paper itself does
not develop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.constraints import CFD, FD, PatternRow
from repro.core.distances import DistanceModel, Weights
from repro.core.repair import CellEdit, RepairResult, apply_edits
from repro.core.single.exact import repair_single_fd_exact
from repro.core.single.greedy import repair_single_fd_greedy
from repro.core.thresholds import suggest_threshold_for_fd
from repro.dataset.relation import Relation

ThresholdsLike = Union[None, float, Dict[CFD, float]]


class CFDRepairer:
    """Fault-tolerant repair against a set of CFDs.

    Parameters
    ----------
    cfds:
        The conditional functional dependencies to enforce. Plain FDs
        can be passed wrapped as ``CFD(fd)``.
    algorithm:
        ``"greedy-s"`` (default) or ``"exact-s"`` for the embedded-FD
        repairs.
    thresholds:
        Per-CFD tau mapping, one scalar for all, or ``None`` to derive
        each tau from the matching sub-instance with the gap heuristic.
    """

    def __init__(
        self,
        cfds: Sequence[CFD],
        algorithm: str = "greedy-s",
        weights: Weights = Weights(),
        thresholds: ThresholdsLike = None,
        max_nodes: Optional[int] = 200_000,
    ) -> None:
        if not cfds:
            raise ValueError("at least one CFD is required")
        if algorithm not in ("greedy-s", "exact-s"):
            raise ValueError("algorithm must be 'greedy-s' or 'exact-s'")
        self.cfds: List[CFD] = list(cfds)
        self.algorithm = algorithm
        self.weights = weights
        self._thresholds_spec = thresholds
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    def repair(self, relation: Relation) -> RepairResult:
        """Repair *relation* against every CFD; input is not mutated."""
        for cfd in self.cfds:
            cfd.fd.validate(relation.schema)
        current = relation.copy()
        edits: List[CellEdit] = []
        stats: Dict[str, object] = {
            "algorithm": f"cfd-{self.algorithm}",
            "constants_enforced": 0,
            "rows_repaired": 0,
        }
        for cfd in self.cfds:
            model = DistanceModel(current, weights=self.weights)
            tau = self._threshold_for(cfd, current, model)
            for row in cfd.rows_or_wildcard():
                constant_edits = self._enforce_constants(
                    current, cfd, row, model, tau
                )
                stats["constants_enforced"] += len(constant_edits)
                for edit in constant_edits:
                    current.set_value(edit.tid, edit.attribute, edit.new)
                edits.extend(constant_edits)

                row_edits = self._repair_row(current, cfd, row, model, tau)
                stats["rows_repaired"] += 1 if row_edits else 0
                for edit in row_edits:
                    current.set_value(edit.tid, edit.attribute, edit.new)
                edits.extend(row_edits)
        merged = _squash(edits)
        cost = sum(
            DistanceModel(relation, weights=self.weights).attribute_distance(
                e.attribute, e.old, e.new
            )
            for e in merged
        )
        return RepairResult(current, merged, cost, stats)

    # ------------------------------------------------------------------
    def _threshold_for(
        self, cfd: CFD, relation: Relation, model: DistanceModel
    ) -> float:
        if isinstance(self._thresholds_spec, dict):
            if cfd not in self._thresholds_spec:
                raise KeyError(f"no threshold for {cfd.name}")
            return float(self._thresholds_spec[cfd])
        if isinstance(self._thresholds_spec, (int, float)):
            return float(self._thresholds_spec)
        return suggest_threshold_for_fd(relation, cfd.fd, model)

    def _enforce_constants(
        self,
        relation: Relation,
        cfd: CFD,
        row: PatternRow,
        model: DistanceModel,
        tau: float,
    ) -> List[CellEdit]:
        """Step 1: pin RHS constants for matching, similar cells."""
        constants = row.rhs_constants(cfd.fd)
        if not constants:
            return []
        edits: List[CellEdit] = []
        for tid in cfd.matching_tids(relation, row):
            for attr, constant in constants.items():
                value = relation.value(tid, attr)
                if value == constant:
                    continue
                if model.attribute_distance(attr, value, constant) <= tau:
                    edits.append(CellEdit(tid, attr, value, constant))
        return edits

    def _repair_row(
        self,
        relation: Relation,
        cfd: CFD,
        row: PatternRow,
        model: DistanceModel,
        tau: float,
    ) -> List[CellEdit]:
        """Step 2: embedded-FD repair on the row's sub-instance."""
        tids = cfd.matching_tids(relation, row)
        if len(tids) < 2:
            return []
        sub = Relation(relation.schema)
        for tid in tids:
            sub.append(relation.row(tid))
        sub_model = DistanceModel(sub, weights=self.weights)
        if self.algorithm == "exact-s":
            result = repair_single_fd_exact(
                sub, cfd.fd, sub_model, tau, max_nodes=self.max_nodes
            )
        else:
            result = repair_single_fd_greedy(sub, cfd.fd, sub_model, tau)
        return [
            CellEdit(tids[edit.tid], edit.attribute, edit.old, edit.new)
            for edit in result.edits
        ]


def _squash(edits: List[CellEdit]) -> List[CellEdit]:
    """Collapse repeated rewrites of the same cell."""
    first_old: Dict = {}
    last_new: Dict = {}
    order: List = []
    for edit in edits:
        if edit.cell not in first_old:
            first_old[edit.cell] = edit.old
            order.append(edit)
        last_new[edit.cell] = edit.new
    return [
        CellEdit(e.tid, e.attribute, first_old[e.cell], last_new[e.cell])
        for e in order
        if first_old[e.cell] != last_new[e.cell]
    ]
