"""Resumable branch-and-bound frontier kernel for MIS enumeration.

This module factors the level-synchronous work-list loop out of
:func:`repro.core.single.mis.enumerate_maximal_independent_sets` into a
portable, *resumable* kernel:

* :class:`SearchKernel` — the immutable search ingredients (adjacency
  masks, multiplicities, Eq. (5) min-out terms, Eq. (6) cost rows). It
  can be built from a :class:`~repro.core.graph.ViolationGraph` in the
  parent process or rebuilt in a worker from plain shipped arrays — the
  floats travel verbatim, so bounds and costs are bit-identical on both
  sides.
* :class:`FrontierState` — the complete mutable state of an enumeration
  between two level boundaries: the frontier's parallel lists, the
  incumbent upper bound, and the uppers pending their fold. A state can
  be cut into contiguous chunks and each chunk explored independently:
  ``lower`` and ``coverage`` are pure functions of ``(mask, level)``, so
  equal masks at equal level are *identical* nodes, and concatenating
  the chunks' final frontiers in chunk order (first occurrence kept)
  reproduces the serial enumeration output exactly (``docs/search.md``,
  ``docs/parallelism.md``).
* :meth:`SearchKernel.advance` — the verbatim level loop, stoppable at
  any level boundary (``stop_level``), after a cooperative node budget
  (``yield_budget``: the work-stealing checkpoint), and wired for an
  :class:`IncumbentBound` exchanged across processes at each boundary.

The serial path through :meth:`advance` performs exactly the statistics
accounting, emission order, pruning decisions and budget-trip point of
the pre-refactor loop — the Hypothesis differential suite
(``tests/test_search_bitset.py``) pins it against the set-based oracle.

Determinism note: an incumbent bound may only *prune* — any exchanged
value is the cost of a concrete feasible repair, hence ``>=`` the
optimum, and pruning is strict (``lower > best_upper``), so no
optimal-cost set is ever dropped. Bounds change how much of the tree is
explored, never which set wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.graph import mask_bits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.graph import ViolationGraph

try:  # pragma: no cover - numpy ships with the toolchain
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

#: float tolerance of the winner tie-break (kept from the original scan)
TIE_EPSILON = 1e-12


class ExpansionLimitError(RuntimeError):
    """Raised when enumeration exceeds the caller's node budget.

    Carries the configured *limit* and the *nodes_generated* count that
    tripped it (plus the level reached), so budget tuning can start from
    the numbers in the message instead of guesswork. When the trip
    happened inside a split subtree task, the executor attaches the
    subtree's segment path as ``.subtree`` before re-raising.
    """

    def __init__(self, limit: int, nodes_generated: int, level: int) -> None:
        super().__init__(
            f"expansion exceeded the {limit}-node budget "
            f"({nodes_generated} nodes generated at level {level})"
        )
        self.limit = limit
        self.nodes_generated = nodes_generated
        self.level = level
        self.subtree: Optional[Tuple[int, ...]] = None

    def __reduce__(self):
        # RuntimeError's default reduce passes args=(message,) to the
        # 3-argument __init__ and breaks unpickling across the process
        # boundary; rebuild from the structured fields instead and carry
        # any post-hoc attribution (``subtree``) through the state dict.
        return (
            type(self),
            (self.limit, self.nodes_generated, self.level),
            self.__dict__.copy(),
        )


@dataclass
class ExpansionStats:
    """Counters from one enumeration run."""

    levels: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    duplicates_removed: int = 0
    non_maximal_discarded: int = 0
    sets_enumerated: int = 0
    #: frontier nodes processed by the work-list loop
    search_nodes_expanded: int = 0
    #: big-int mask operations on the hot path (conflict / FTC / coverage)
    search_bitset_ops: int = 0
    #: prune checks served by a memoized (carried) bound
    search_bound_hits: int = 0
    #: expansion paths merged into an already-frontier prefix-mask
    search_dominance_prunes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "levels": self.levels,
            "nodes_generated": self.nodes_generated,
            "nodes_pruned": self.nodes_pruned,
            "duplicates_removed": self.duplicates_removed,
            "non_maximal_discarded": self.non_maximal_discarded,
            "sets_enumerated": self.sets_enumerated,
            "search_nodes_expanded": self.search_nodes_expanded,
            "search_bitset_ops": self.search_bitset_ops,
            "search_bound_hits": self.search_bound_hits,
            "search_dominance_prunes": self.search_dominance_prunes,
        }

    def merge_delta(self, other: "ExpansionStats", nodes_base: int) -> None:
        """Fold a subtree run's counters into this (caller's) stats.

        *other* started its node count at *nodes_base* (the shared
        serial-prefix count), so only the delta is added.
        """
        self.levels = max(self.levels, other.levels)
        self.nodes_generated += other.nodes_generated - nodes_base
        self.nodes_pruned += other.nodes_pruned
        self.duplicates_removed += other.duplicates_removed
        self.non_maximal_discarded += other.non_maximal_discarded
        self.search_nodes_expanded += other.search_nodes_expanded
        self.search_bitset_ops += other.search_bitset_ops
        self.search_bound_hits += other.search_bound_hits
        self.search_dominance_prunes += other.search_dominance_prunes


class IncumbentBound:
    """Interface of a shared best-upper-bound cell (see ``exec/bounds.py``).

    :meth:`tighten` merges the caller's incumbent with the shared cell:
    it returns the smaller of the two, adopting a tighter published
    value (a *hit*) or publishing the caller's improvement. Reads and
    writes are lock-free; a lost update only loosens a bound, which is
    always sound.
    """

    def tighten(self, current: float) -> float:  # pragma: no cover
        raise NotImplementedError


@dataclass
class FrontierState:
    """A resumable enumeration cut at a level boundary.

    ``level`` is the next level to process; ``masks``/``lower``/
    ``coverage`` are the frontier's parallel lists; ``pending_upper``
    holds Eq. (6) uppers emitted at the previous level, folded into
    ``best_upper`` at the next boundary (empty whenever the state is
    shipped between processes — :meth:`SearchKernel.advance` folds
    before yielding).
    """

    level: int
    masks: List[int]
    lower: List[float]
    coverage: List[int]
    best_upper: float = float("inf")
    pending_upper: List[float] = field(default_factory=list)


def min_outgoing_costs(
    graph: "ViolationGraph", vertices: Sequence[int]
) -> Dict[int, float]:
    """Per-vertex cheapest directed repair cost to any neighbor.

    The Eq. (5) ingredient: a vertex left out of the independent set must
    be repaired to *some* neighbor, costing at least this much.
    """
    out: Dict[int, float] = {}
    allowed = set(vertices)
    for v in vertices:
        costs = [
            graph.multiplicity(v) * cost
            for u, cost in graph.neighbors(v).items()
            if u in allowed
        ]
        out[v] = min(costs) if costs else 0.0
    return out


class SearchKernel:
    """The immutable ingredients of one component's MIS search.

    Built either from a live :class:`~repro.core.graph.ViolationGraph`
    (:meth:`for_graph`) or from plain arrays shipped to a worker — the
    two construct bit-identical bounds because the floats themselves are
    shipped, never recomputed.
    """

    def __init__(
        self,
        adjacency: Sequence[int],
        multiplicities: Sequence[int],
        prune: bool,
        min_out: Optional[Sequence[float]] = None,
        cost_rows: Optional[Sequence[Sequence[float]]] = None,
    ) -> None:
        self.n = len(adjacency)
        self.adjacency = list(adjacency)
        self.multiplicities = list(multiplicities)
        self.full_mask = (1 << self.n) - 1
        self.prune = prune
        self.min_out: List[float] = list(min_out) if min_out is not None else []
        self.cost_rows: Optional[List[List[float]]] = (
            [list(row) for row in cost_rows] if cost_rows is not None else None
        )
        self.cost_columns = None
        if prune and self.cost_rows is not None and _np is not None:
            self.cost_columns = _np.array(self.cost_rows, dtype=float)

    @classmethod
    def for_graph(
        cls,
        graph: "ViolationGraph",
        order: Sequence[int],
        prune: bool,
        with_costs: bool = False,
    ) -> "SearchKernel":
        """Build the kernel for the induced subgraph on *order*.

        ``with_costs`` forces the cost rows in even when ``prune`` is
        off (the winner scan of ``best_maximal_independent_set`` needs
        them regardless of pruning).
        """
        masks = graph.subgraph_masks(order)
        min_out: Optional[List[float]] = None
        cost_rows = None
        if prune:
            by_vertex = min_outgoing_costs(graph, order)
            min_out = [by_vertex[v] for v in order]
        if prune or with_costs:
            cost_rows = masks.cost_rows()
        return cls(
            masks.adjacency, masks.multiplicities, prune, min_out, cost_rows
        )

    # ------------------------------------------------------------------
    def seed(self, stats: ExpansionStats) -> FrontierState:
        """The level-1 root state (vertex 0 alone), counted like serial."""
        stats.nodes_generated += 1
        state = FrontierState(
            level=1,
            masks=[1],
            lower=[0.0],
            coverage=[1 | self.adjacency[0]],
        )
        if self.prune:
            state.pending_upper.append(self.upper_of(1))
        return state

    def upper_of(self, mask: int) -> float:
        """Eq. (6) for one prefix-mask, computed once at emission.

        The member-column minimum is order-independent, so the
        vectorized path returns the same doubles the oracle's ``min()``
        produces; the outer accumulation walks outside vertices in dense
        (= access) order, the oracle's sum order.
        """
        members = mask_bits(mask)
        if self.cost_columns is not None:
            column = self.cost_columns[:, members].min(axis=1).tolist()
        else:
            rows = self.cost_rows
            assert rows is not None
            column = [
                min(rows[i][j] for j in members) for i in range(self.n)
            ]
        total = 0.0
        multiplicities = self.multiplicities
        outside = self.full_mask & ~mask
        while outside:
            low = outside & -outside
            index = low.bit_length() - 1
            total += multiplicities[index] * column[index]
            outside ^= low
        return total

    def fresh_lower(self, mask: int, upto: int) -> float:
        """Eq. (5) over dense prefix ``[0, upto)``, left-to-right."""
        min_out = self.min_out
        total = 0.0
        for index in range(upto):
            if not (mask >> index) & 1:
                total += min_out[index]
        return total

    def fold_pending(
        self, state: FrontierState, bound: Optional[IncumbentBound] = None
    ) -> None:
        """Fold pending Eq. (6) uppers into the incumbent at a boundary.

        Exactly the oracle's fold point; when a shared *bound* is wired,
        this is also where the incumbent is exchanged (lock-free read,
        publish on improvement) — the only cross-worker touch point.
        """
        best_upper = state.best_upper
        for value in state.pending_upper:
            if value < best_upper:
                best_upper = value
        state.pending_upper = []
        if bound is not None:
            best_upper = bound.tighten(best_upper)
        state.best_upper = best_upper

    # ------------------------------------------------------------------
    def advance(
        self,
        state: FrontierState,
        stats: ExpansionStats,
        max_nodes: Optional[int] = None,
        stop_level: Optional[int] = None,
        yield_budget: Optional[int] = None,
        bound: Optional[IncumbentBound] = None,
    ) -> bool:
        """Run the level loop from ``state.level``; return True if done.

        Stops early (returning False, state resumable) at the first
        level boundary past *stop_level* or once *yield_budget* nodes
        were generated by this call — the cooperative checkpoint the
        work-stealing dispatcher re-splits stragglers at. Pending uppers
        are always folded before an early return, so shipped states
        carry ``pending_upper == []``.
        """
        n = self.n
        adjacency = self.adjacency
        prune = self.prune
        min_out = self.min_out
        start_nodes = stats.nodes_generated
        stop = n if stop_level is None else min(stop_level, n)
        while state.level < stop:
            level = state.level
            stats.levels = level
            if prune:
                # Fold the uppers of everything emitted into this
                # frontier — the exact set the oracle folds at the top
                # of the level, before any prune check reads it.
                self.fold_pending(state, bound)
            if (
                yield_budget is not None
                and stats.nodes_generated - start_nodes >= yield_budget
            ):
                return False
            vertex_adjacency = adjacency[level]
            vertex_bit = 1 << level
            prefix_mask = (vertex_bit << 1) - 1
            best_upper = state.best_upper
            frontier_masks = state.masks
            frontier_lower = state.lower
            frontier_coverage = state.coverage
            pending_upper = state.pending_upper

            emitted_index: Dict[int, int] = {}
            next_masks: List[int] = []
            next_lower: List[float] = []
            next_coverage: List[int] = []

            def emit(mask: int, lower: float, coverage: int) -> None:
                if mask in emitted_index:
                    stats.duplicates_removed += 1
                    stats.search_dominance_prunes += 1
                    return
                emitted_index[mask] = len(next_masks)
                stats.nodes_generated += 1
                if max_nodes is not None and stats.nodes_generated > max_nodes:
                    raise ExpansionLimitError(
                        max_nodes, stats.nodes_generated, level
                    )
                next_masks.append(mask)
                next_lower.append(lower)
                next_coverage.append(coverage)
                if prune:
                    pending_upper.append(self.upper_of(mask))

            for position in range(len(frontier_masks)):
                mask = frontier_masks[position]
                lower = frontier_lower[position]
                stats.search_nodes_expanded += 1
                if prune:
                    # The bound was carried from the parent level — a
                    # memo hit where the oracle recomputes from scratch.
                    stats.search_bound_hits += 1
                    if lower > best_upper:
                        stats.nodes_pruned += 1
                        continue
                coverage = frontier_coverage[position]
                stats.search_bitset_ops += 1
                if vertex_adjacency & mask == 0:
                    # FT-consistent: the only child adds the vertex.
                    emit(
                        mask | vertex_bit,
                        lower,
                        coverage | vertex_adjacency | vertex_bit,
                    )
                else:
                    # Still maximal in the larger prefix; the excluded
                    # vertex appends its Eq. (5) term to the carried sum.
                    emit(
                        mask,
                        lower + min_out[level] if prune else 0.0,
                        coverage,
                    )
                    # FTC child: strip the conflicting members, add the
                    # vertex, re-derive its coverage, test maximality.
                    candidate = (mask & ~vertex_adjacency) | vertex_bit
                    candidate_coverage = candidate
                    remaining = candidate
                    while remaining:
                        low = remaining & -remaining
                        candidate_coverage |= adjacency[low.bit_length() - 1]
                        remaining ^= low
                        stats.search_bitset_ops += 1
                    if prefix_mask & ~candidate_coverage == 0:
                        emit(
                            candidate,
                            self.fresh_lower(candidate, level + 1)
                            if prune
                            else 0.0,
                            candidate_coverage,
                        )
                    else:
                        stats.non_maximal_discarded += 1
            state.masks = next_masks
            state.lower = next_lower
            state.coverage = next_coverage
            state.level = level + 1
        return state.level >= n

    # ------------------------------------------------------------------
    def mask_assignment_cost(self, member_mask: int) -> float:
        """Grouped repair cost of fixing every outside vertex with the set.

        The bitset port of the reference ``_assignment_cost`` — same
        floats, same accumulation order (dense / ascending).
        """
        cost_rows = self.cost_rows
        assert cost_rows is not None, "kernel built without cost rows"
        members = mask_bits(member_mask)
        adjacency = self.adjacency
        multiplicities = self.multiplicities
        total = 0.0
        outside = self.full_mask & ~member_mask
        while outside:
            low = outside & -outside
            index = low.bit_length() - 1
            pool = adjacency[index] & member_mask
            row = cost_rows[index]
            cheapest = min(
                row[j] for j in (mask_bits(pool) if pool else members)
            )
            total += multiplicities[index] * cheapest
            outside ^= low
        return total


def better_candidate(
    cost: float,
    members: List[int],
    best_cost: float,
    best_members: Optional[List[int]],
) -> bool:
    """The winner comparator of ``best_maximal_independent_set``.

    Strictly-cheaper wins; within ``TIE_EPSILON`` the lexicographically
    smaller sorted member list wins. Used identically by the serial
    scan, by chunk-local scans in subtree workers, and by the parent's
    segment-ordered reduction — the fold is associative whenever costs
    are epsilon-separated, which is what keeps split winner selection
    byte-identical to the serial scan (``docs/parallelism.md``).
    """
    if cost < best_cost - TIE_EPSILON:
        return True
    return (
        abs(cost - best_cost) <= TIE_EPSILON
        and best_members is not None
        and members < best_members
    )


def select_best_mask(
    kernel: SearchKernel, masks: Sequence[int], order: Sequence[int]
) -> Optional[Tuple[int, float, List[int]]]:
    """Scan *masks* in order; return (mask, cost, sorted original members).

    The chunk-local half of the winner reduction: the same comparator,
    in frontier order, over the same floats as the serial scan.
    """
    best: Optional[Tuple[int, float, List[int]]] = None
    best_cost = float("inf")
    best_members: Optional[List[int]] = None
    for mask in masks:
        cost = kernel.mask_assignment_cost(mask)
        members = sorted(order[i] for i in mask_bits(mask))
        if better_candidate(cost, members, best_cost, best_members):
            best = (mask, cost, members)
            best_cost = cost
            best_members = members
    return best
