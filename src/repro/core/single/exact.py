"""Exact-S: optimal single-FD repair via expansion enumeration (Sec. 3.1).

Finds the *best maximal independent set* of the violation graph — the
one whose induced repair (every excluded pattern rewritten to its
cheapest neighbor inside the set) has minimum total cost — which
Theorem 2 shows yields the optimal valid repair. The search runs
independently per connected component of the graph: components share no
edges, so their best sets combine into the global optimum.

The problem is NP-hard (Theorem 3); *max_nodes* caps the expansion tree
and raises :class:`~repro.core.single.mis.ExpansionLimitError` when a
component is too entangled, letting callers fall back to Greedy-S.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.graph import ViolationGraph, accumulate_join_counters
from repro.core.repair import RepairResult, apply_edits, edits_from_assignment
from repro.core.single.mis import ExpansionStats, best_maximal_independent_set
from repro.dataset.relation import Relation


def repair_single_fd_exact(
    relation: Relation,
    fd: FD,
    model: DistanceModel,
    tau: float,
    prune: bool = True,
    max_nodes: Optional[int] = 200_000,
    join_strategy: str = "filtered",
    grouping: bool = True,
    registry=None,
) -> RepairResult:
    """Optimal repair of *relation* w.r.t. a single FD.

    Parameters mirror the paper's knobs: *prune* toggles the Eq. (5)/(6)
    bounds, *grouping* the Section 3.1 tuple grouping, *join_strategy*
    the violation-detection filter stack. *registry* shares detection
    indexes with other joins of the same run.
    """
    graph = ViolationGraph.build(
        relation,
        fd,
        model,
        tau,
        join_strategy=join_strategy,
        grouping=grouping,
        registry=registry,
    )
    assignment, cost, stats = solve_graph_exact(graph, prune=prune, max_nodes=max_nodes)
    edits = materialize_pattern_assignment(relation, graph, assignment)
    repaired = apply_edits(relation, edits)
    stats.update(
        {
            "algorithm": "exact-s",
            "graph_vertices": len(graph),
            "graph_edges": graph.edge_count,
        }
    )
    accumulate_join_counters(stats, [graph])
    return RepairResult(repaired, edits, cost, stats)


def solve_graph_exact(
    graph: ViolationGraph,
    prune: bool = True,
    max_nodes: Optional[int] = 200_000,
) -> Tuple[Dict[int, int], float, Dict[str, int]]:
    """Best-MIS repair assignment for a violation graph.

    Returns ``(assignment, cost, stats)`` where *assignment* maps each
    repaired vertex to its target vertex.
    """
    assignment: Dict[int, int] = {}
    total = 0.0
    stats = ExpansionStats()
    for component in graph.connected_components():
        if len(component) == 1:
            continue  # isolated pattern: consistent, keep as-is
        best = best_maximal_independent_set(
            graph, component, prune=prune, max_nodes=max_nodes, stats=stats
        )
        members = set(best)
        for vertex in component:
            if vertex in members:
                continue
            target = graph.best_repair_target(vertex, members)
            assert target is not None  # components have >= 2 vertices
            assignment[vertex] = target
            total += graph.repair_cost(vertex, target)
    return assignment, total, stats.as_dict()


def materialize_pattern_assignment(
    relation: Relation,
    graph: ViolationGraph,
    assignment: Dict[int, int],
):
    """Turn a vertex->vertex repair assignment into cell edits.

    Every tuple carrying a repaired pattern gets the target pattern's
    values over the FD's attributes.
    """
    tid_to_values: Dict[int, Tuple] = {}
    for source, target in assignment.items():
        values = graph.patterns[target].values
        for tid in graph.patterns[source].tids:
            tid_to_values[tid] = values
    return edits_from_assignment(relation, graph.fd.attributes, tid_to_values)
