"""The subtree-dispatch hook: how core search reaches the executor.

The branch-and-bound enumeration (:mod:`repro.core.single.mis`) can
decompose a giant component's exploration into independently explorable
subtree tasks — but the *core* layer must not know about process pools.
This module inverts the dependency: the executor installs a
:class:`SubtreeDispatcher` through a :func:`use_dispatcher` context, and
the search kernels consult :func:`current_dispatcher` when a component
crosses the configured split threshold. With no dispatcher installed
(serial runs, worker processes, every existing caller) nothing changes.

Two dispatch modes exist, chosen by the determinism argument that holds
for each (``docs/parallelism.md``):

* ``"enumerate"`` — only for ``prune=False`` (the Exact-M candidate
  enumeration): chunked exploration merged by concatenation in chunk
  order with first-occurrence dedup reproduces the serial output list
  *exactly*, order included.
* ``"best"`` — for the pruned Exact-S winner search: chunks score their
  own candidates and return chunk winners; the parent reduces them in
  segment order with the serial comparator. Pruning under the shared
  incumbent bound may only discard provably-beaten sets, so the winner
  is unchanged.

The context variable is process-local by construction, but a ``fork``
started mid-dispatch would inherit it — dispatcher implementations must
therefore refuse to activate outside their creating process (see
``PoolSubtreeDispatcher.wants``).
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.core.single.frontier import (
    ExpansionStats,
    FrontierState,
    SearchKernel,
)

#: dispatch modes and the pruning regime each is sound for
MODE_ENUMERATE = "enumerate"  #: exact list merge; requires prune=False
MODE_BEST = "best"  #: winner reduction; the pruned optimal-repair search


@dataclass
class SplitRequest:
    """Everything a dispatcher needs to explore a cut enumeration.

    The *state* is cut at a level boundary with ``pending_upper``
    already folded; *stats* is the caller's live counter object — the
    dispatcher merges subtree deltas into it so budget accounting and
    observability see one consistent run.
    """

    kernel: SearchKernel
    state: FrontierState
    stats: ExpansionStats
    mode: str
    max_nodes: Optional[int]
    fd_name: str
    order: List[int]  #: original vertex ids, for tie-breaks and labels


class SubtreeDispatcher:
    """Strategy interface for exploring a split frontier."""

    def wants(self, n_vertices: int, prune: bool, mode: str) -> bool:
        """Should a component of this size be split at all?"""
        raise NotImplementedError

    def fanout(self) -> int:
        """Desired number of subtree chunks (the frontier-width target)."""
        raise NotImplementedError

    def explore(self, request: SplitRequest) -> Any:
        """Explore the request's frontier to completion.

        Returns the merged final mask list for ``mode="enumerate"``, or
        the winning ``(mask, cost, sorted_members)`` triple (``None``
        when no candidate survives) for ``mode="best"``.
        """
        raise NotImplementedError


_DISPATCHER: ContextVar[Optional[SubtreeDispatcher]] = ContextVar(
    "repro_subtree_dispatcher", default=None
)


def current_dispatcher() -> Optional[SubtreeDispatcher]:
    """The dispatcher installed for the current context, if any."""
    return _DISPATCHER.get()


@contextmanager
def use_dispatcher(
    dispatcher: SubtreeDispatcher,
) -> Iterator[SubtreeDispatcher]:
    """Install *dispatcher* for the duration of the block."""
    token = _DISPATCHER.set(dispatcher)
    try:
        yield dispatcher
    finally:
        _DISPATCHER.reset(token)
