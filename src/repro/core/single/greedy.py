"""Greedy-S: approximate single-FD repair (Section 3.2, Algorithm 2).

Grows an *expected best* independent set one vertex at a time:

* the first vertex minimizes the **initial cost** (Eq. 7) — the cost of
  repairing all its neighbors to it;
* every further vertex is a candidate still FT-consistent with the set
  and minimizes the **incremental cost** (Eq. 8) — how much the running
  repair bill changes if it joins: neighbors already covered by the set
  may get a cheaper target (negative contribution), uncovered neighbors
  start paying their way to the newcomer.

The loop ends when no consistent candidate remains, i.e. the set is
maximal; excluded vertices are then repaired to their cheapest neighbor
inside the set. Complexity O(|I| * |V|) on the grouped graph.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.graph import ViolationGraph, accumulate_join_counters
from repro.core.repair import RepairResult, apply_edits
from repro.core.single.exact import materialize_pattern_assignment
from repro.dataset.relation import Relation
from repro.obs import span


def greedy_independent_set(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    seed_dominant: bool = True,
    counters: Optional[Dict[str, int]] = None,
) -> FrozenSet[int]:
    """Algorithm 2's expected best maximal independent set.

    Operates on the induced subgraph on *vertices* (default: all).

    With ``seed_dominant`` (default), vertices that are multiplicity-
    dominant over their whole neighborhood are admitted first, in
    multiplicity order, before the Eq. (7)/(8) cost loop takes over.
    This extends the paper's frequency-ordering insight (Section 3.1:
    frequent patterns make good early independent sets) from Exact-S's
    access order to the greedy: at high error rates, a true anchor's
    incremental cost is inflated by *foreign* satellites (other groups'
    errors that happen to land near its values and will later be
    repaired to their own anchors), and the raw Eq. (8) ordering can
    myopically crown a cheap typo variant instead. Dominance seeding is
    exact-faithful — a pattern more frequent than everything it
    conflicts with belongs to the optimal set in all but adversarial
    cases — and ``seed_dominant=False`` restores the paper's literal
    greedy (the ablation benches compare both).

    *counters* (optional) accumulates search instrumentation
    (``search_heap_revalidations``) into the caller's stats dict.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if not order:
        return frozenset()
    with span(
        "greedy/grow", fd=graph.fd.name, vertices=len(order)
    ) as grow_span:
        chosen, revalidations = _grow(graph, order, seed_dominant)
        grow_span.set(
            independent_set_size=len(chosen),
            heap_revalidations=revalidations,
        )
    if counters is not None:
        counters["search_heap_revalidations"] = (
            counters.get("search_heap_revalidations", 0) + revalidations
        )
    return chosen


def _grow(
    graph: ViolationGraph, order: Sequence[int], seed_dominant: bool
) -> Tuple[FrozenSet[int], int]:
    """The Eq. (7)/(8) growth loop behind :func:`greedy_independent_set`.

    Returns ``(chosen set, heap revalidations)``. The growth loop keeps
    candidates in a lazy min-heap keyed by their last computed Eq. (8)
    cost: adding a vertex only changes the incremental cost of
    candidates that share a neighbor with it (the cost reads
    ``current_cost`` solely on the candidate's own neighborhood), so
    only that two-hop ball is recomputed per round instead of the whole
    pool. Stale heap entries — superseded keys, or candidates absorbed
    into conflict — are discarded on pop and counted as revalidations.
    Pop order ``(cost, vertex)`` matches the old full scan's
    ``min(..., key=lambda t: (incremental_cost(t), t))`` tie-break, so
    the chosen sequence is identical.
    """
    allowed = set(order)

    def directed(v: int, u: int) -> float:
        """omega(v, u): repair group v to u's values."""
        return graph.multiplicity(v) * graph.neighbors(v)[u]

    # Isolated vertices join for free and never interact; seed with them.
    chosen: Set[int] = {
        v for v in order if not any(u in allowed for u in graph.neighbors(v))
    }
    candidates: Set[int] = {v for v in order if v not in chosen}
    # current cheapest repair target cost for vertices adjacent to the set
    current_cost: Dict[int, float] = {}

    if seed_dominant and candidates:
        for v in sorted(candidates, key=lambda u: (-graph.multiplicity(u), u)):
            if v not in candidates:
                continue  # absorbed by an earlier dominant pick
            rank = (graph.multiplicity(v), -v)
            neighborhood = [u for u in graph.neighbors(v) if u in allowed]
            if all(
                (graph.multiplicity(u), -u) < rank for u in neighborhood
            ):
                chosen.add(v)
                candidates.discard(v)
                _absorb(graph, v, allowed, candidates, current_cost)

    if not chosen and candidates:
        # Initial cost (Eq. 7): repair every neighbor to the vertex.
        def initial_cost(t: int) -> float:
            return sum(
                directed(v, t) for v in graph.neighbors(t) if v in allowed
            )

        first = min(candidates, key=lambda t: (initial_cost(t), t))
        chosen.add(first)
        candidates.discard(first)
        _absorb(graph, first, allowed, candidates, current_cost)
    elif chosen:
        # The seeded isolated vertices have no neighbors: nothing to absorb.
        pass

    def incremental_cost(t: int) -> float:
        """Eq. (8) for candidate t against the current set."""
        delta = 0.0
        for v in graph.neighbors(t):
            if v not in allowed:
                continue
            cost_to_t = directed(v, t)
            if v in current_cost:  # v in N(t) ∩ N(I)
                delta += min(current_cost[v], cost_to_t) - current_cost[v]
            else:  # v in N(t) \ N(I)
                delta += cost_to_t
        return delta

    current_key: Dict[int, float] = {t: incremental_cost(t) for t in candidates}
    heap: List[Tuple[float, int]] = [
        (cost, t) for t, cost in current_key.items()
    ]
    heapq.heapify(heap)
    revalidations = 0
    while candidates:
        cost, best = heapq.heappop(heap)
        if best not in candidates or cost != current_key[best]:
            revalidations += 1
            continue
        chosen.add(best)
        candidates.discard(best)
        del current_key[best]
        touched = graph.neighbors(best)
        _absorb(graph, best, allowed, candidates, current_cost)
        affected: Set[int] = set()
        for v in touched:
            if v in allowed:
                for t in graph.neighbors(v):
                    if t in candidates:
                        affected.add(t)
        for t in affected:
            fresh = incremental_cost(t)
            if fresh != current_key[t]:
                current_key[t] = fresh
                heapq.heappush(heap, (fresh, t))

    return frozenset(chosen), revalidations


def _absorb(
    graph: ViolationGraph,
    added: int,
    allowed: Set[int],
    candidates: Set[int],
    current_cost: Dict[int, float],
) -> None:
    """Update candidate pool and repair-cost map after adding a vertex."""
    for v, base in graph.neighbors(added).items():
        if v not in allowed:
            continue
        candidates.discard(v)  # now in conflict with the set
        cost = graph.multiplicity(v) * base
        if v not in current_cost or cost < current_cost[v]:
            current_cost[v] = cost


def repair_single_fd_greedy(
    relation: Relation,
    fd: FD,
    model: DistanceModel,
    tau: float,
    join_strategy: str = "filtered",
    grouping: bool = True,
    registry=None,
) -> RepairResult:
    """Greedy repair of *relation* w.r.t. a single FD.

    *registry* shares detection indexes with other joins of the same
    run (see :class:`repro.index.registry.AttributeIndexRegistry`).
    """
    graph = ViolationGraph.build(
        relation,
        fd,
        model,
        tau,
        join_strategy=join_strategy,
        grouping=grouping,
        registry=registry,
    )
    search_counters: Dict[str, int] = {}
    independent = greedy_independent_set(graph, counters=search_counters)
    assignment, cost = graph.repair_assignment(independent)
    edits = materialize_pattern_assignment(relation, graph, assignment)
    repaired = apply_edits(relation, edits)
    stats = {
        "algorithm": "greedy-s",
        "graph_vertices": len(graph),
        "graph_edges": graph.edge_count,
        "independent_set_size": len(independent),
        **search_counters,
    }
    accumulate_join_counters(stats, [graph])
    return RepairResult(repaired, edits, cost, stats)
