"""Maximal-independent-set enumeration via the expansion tree (Section 3.1).

Independent sets satisfy the a-priori property: every subset of an
independent set is independent. The expansion algorithm exploits this by
visiting vertices in order ``v_1 .. v_n`` and maintaining, per level
``i``, all maximal independent sets of the induced prefix ``D_i``:

* if ``v_{i+1}`` is FT-consistent with a set ``I``, the only child is
  ``I ∪ {v_{i+1}}``;
* otherwise ``I`` survives unchanged (it is still maximal), and
  ``FTC(v_{i+1}, I) ∪ {v_{i+1}}`` becomes a second child when it is
  maximal w.r.t. the new prefix and not a duplicate.

For the *optimal repair* search, a node may be pruned when its repair
lower bound (Eq. 5) exceeds the best known upper bound (Eq. 6): every
repair reachable from the node is then provably beaten by an already
known feasible repair.

The production engine (:func:`enumerate_maximal_independent_sets`) runs
the level-synchronous schedule as an explicit work-list branch-and-bound
over the :class:`~repro.core.graph.ComponentMasks` bitset view:

* each frontier node is one prefix-mask; FT-conflict, ``FTC``, and
  prefix-maximality checks are ``&``/``|`` word operations against a
  per-node *coverage mask* (members plus their neighborhoods);
* the Eq. (5) lower bound is **memoized per prefix-mask** and carried
  incrementally level to level (the same left-to-right float
  accumulation the scratch recomputation performs, so bounds are
  bit-identical to the oracle's);
* the Eq. (6) upper bound is computed **once per emitted mask** (the
  oracle recomputes it for every frontier node at every level) and
  folded into the incumbent at the next level boundary — exactly the
  point the oracle's fold becomes visible to pruning decisions;
* nodes with equal prefix-masks are merged (*dominance*): later
  expansion paths reaching an already-frontier mask are dominated by
  the first and dropped, which is also what bounds the tree width.

Every decision the engine takes — emission order, duplicate merging,
pruning, the node count that trips :class:`ExpansionLimitError` — is
bit-for-bit identical to the set-based reference implementation, which
is kept as :func:`enumerate_maximal_independent_sets_setbased` and
cross-checked by the Hypothesis differential suite
(``tests/test_search_bitset.py``), the same oracle discipline the
``two_row``/``banded`` distance kernels follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.core.graph import ViolationGraph, mask_bits
from repro.obs import span

try:  # pragma: no cover - exercised indirectly; numpy ships with the toolchain
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]


class ExpansionLimitError(RuntimeError):
    """Raised when enumeration exceeds the caller's node budget.

    Carries the configured *limit* and the *nodes_generated* count that
    tripped it (plus the level reached), so budget tuning can start from
    the numbers in the message instead of guesswork.
    """

    def __init__(self, limit: int, nodes_generated: int, level: int) -> None:
        super().__init__(
            f"expansion exceeded the {limit}-node budget "
            f"({nodes_generated} nodes generated at level {level})"
        )
        self.limit = limit
        self.nodes_generated = nodes_generated
        self.level = level


@dataclass
class ExpansionStats:
    """Counters from one enumeration run."""

    levels: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    duplicates_removed: int = 0
    non_maximal_discarded: int = 0
    sets_enumerated: int = 0
    #: frontier nodes processed by the work-list loop
    search_nodes_expanded: int = 0
    #: big-int mask operations on the hot path (conflict / FTC / coverage)
    search_bitset_ops: int = 0
    #: prune checks served by a memoized (carried) bound
    search_bound_hits: int = 0
    #: expansion paths merged into an already-frontier prefix-mask
    search_dominance_prunes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "levels": self.levels,
            "nodes_generated": self.nodes_generated,
            "nodes_pruned": self.nodes_pruned,
            "duplicates_removed": self.duplicates_removed,
            "non_maximal_discarded": self.non_maximal_discarded,
            "sets_enumerated": self.sets_enumerated,
            "search_nodes_expanded": self.search_nodes_expanded,
            "search_bitset_ops": self.search_bitset_ops,
            "search_bound_hits": self.search_bound_hits,
            "search_dominance_prunes": self.search_dominance_prunes,
        }


def _min_outgoing_cost(graph: ViolationGraph, vertices: Sequence[int]) -> Dict[int, float]:
    """Per-vertex cheapest directed repair cost to any neighbor.

    The Eq. (5) ingredient: a vertex left out of the independent set must
    be repaired to *some* neighbor, costing at least this much.
    """
    out: Dict[int, float] = {}
    allowed = set(vertices)
    for v in vertices:
        costs = [
            graph.multiplicity(v) * cost
            for u, cost in graph.neighbors(v).items()
            if u in allowed
        ]
        out[v] = min(costs) if costs else 0.0
    return out


def _lower_bound(
    prefix: Sequence[int],
    independent: FrozenSet[int],
    min_out: Dict[int, float],
) -> float:
    """Eq. (5): vertices already excluded must pay their cheapest repair."""
    return sum(min_out[v] for v in prefix if v not in independent)


def _upper_bound(
    graph: ViolationGraph,
    vertices: Sequence[int],
    independent: FrozenSet[int],
) -> float:
    """Eq. (6): repair *every* outside vertex into the set right now.

    This is the cost of a concrete feasible repair, hence an upper bound
    on the optimum reachable from any superset of ``independent``.
    """
    total = 0.0
    members = list(independent)
    for v in vertices:
        if v in independent:
            continue
        total += graph.multiplicity(v) * min(
            graph.pair_cost(v, u) for u in members
        )
    return total


def enumerate_maximal_independent_sets(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = False,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> List[FrozenSet[int]]:
    """All maximal independent sets of the induced subgraph on *vertices*.

    With ``prune=True`` the enumeration keeps only sets that can still
    lead to the minimum-cost repair (sound for the optimization, not for
    exhaustive enumeration). *max_nodes* bounds the total number of tree
    nodes; exceeding it raises :class:`ExpansionLimitError` so callers
    can fall back to the greedy algorithm.

    This is the bitset engine (module docstring); results, statistics,
    and the budget-trip point are identical to
    :func:`enumerate_maximal_independent_sets_setbased`.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if stats is None:
        stats = ExpansionStats()
    if not order:
        return []
    with span(
        "mis/expand", fd=graph.fd.name, vertices=len(order), prune=prune
    ) as expand_span:
        masks = graph.subgraph_masks(order)
        adjacency = masks.adjacency
        n = len(order)
        infinity = float("inf")
        best_upper = infinity

        min_out: List[float] = []
        cost_columns = None
        multiplicities = masks.multiplicities
        if prune:
            by_vertex = _min_outgoing_cost(graph, order)
            min_out = [by_vertex[v] for v in order]
            cost_rows = masks.cost_rows()
            if _np is not None:
                cost_columns = _np.array(cost_rows, dtype=float)

        def upper_of(mask: int) -> float:
            """Eq. (6) for one prefix-mask, computed once at emission.

            The member-column minimum is order-independent, so the
            vectorized path returns the same doubles the oracle's
            ``min()`` produces; the outer accumulation walks outside
            vertices in dense (= access) order, the oracle's sum order.
            """
            members = mask_bits(mask)
            if cost_columns is not None:
                column = cost_columns[:, members].min(axis=1).tolist()
            else:
                rows = cost_rows
                column = [
                    min(rows[i][j] for j in members) for i in range(n)
                ]
            total = 0.0
            outside = masks.full_mask & ~mask
            while outside:
                low = outside & -outside
                index = low.bit_length() - 1
                total += multiplicities[index] * column[index]
                outside ^= low
            return total

        def fresh_lower(mask: int, upto: int) -> float:
            """Eq. (5) over dense prefix ``[0, upto)``, left-to-right."""
            total = 0.0
            for index in range(upto):
                if not (mask >> index) & 1:
                    total += min_out[index]
            return total

        # The frontier: parallel lists indexed per node. ``coverage`` is
        # members ∪ their neighborhoods — the maximality certificate.
        frontier_masks: List[int] = [1]
        frontier_lower: List[float] = [0.0]
        frontier_coverage: List[int] = [1 | adjacency[0]]
        stats.nodes_generated += 1
        pending_upper: List[float] = [upper_of(1)] if prune else []

        for level in range(1, n):
            stats.levels = level
            vertex_adjacency = adjacency[level]
            vertex_bit = 1 << level
            prefix_mask = (vertex_bit << 1) - 1
            if prune:
                # Fold the uppers of everything emitted into this
                # frontier — the exact set the oracle folds at the top
                # of the level, before any prune check reads it.
                for value in pending_upper:
                    if value < best_upper:
                        best_upper = value
                pending_upper = []

            emitted_index: Dict[int, int] = {}
            next_masks: List[int] = []
            next_lower: List[float] = []
            next_coverage: List[int] = []

            def emit(mask: int, lower: float, coverage: int) -> None:
                if mask in emitted_index:
                    stats.duplicates_removed += 1
                    stats.search_dominance_prunes += 1
                    return
                emitted_index[mask] = len(next_masks)
                stats.nodes_generated += 1
                if max_nodes is not None and stats.nodes_generated > max_nodes:
                    raise ExpansionLimitError(
                        max_nodes, stats.nodes_generated, level
                    )
                next_masks.append(mask)
                next_lower.append(lower)
                next_coverage.append(coverage)
                if prune:
                    pending_upper.append(upper_of(mask))

            for position in range(len(frontier_masks)):
                mask = frontier_masks[position]
                lower = frontier_lower[position]
                stats.search_nodes_expanded += 1
                if prune:
                    # The bound was carried from the parent level — a
                    # memo hit where the oracle recomputes from scratch.
                    stats.search_bound_hits += 1
                    if lower > best_upper:
                        stats.nodes_pruned += 1
                        continue
                coverage = frontier_coverage[position]
                stats.search_bitset_ops += 1
                if vertex_adjacency & mask == 0:
                    # FT-consistent: the only child adds the vertex.
                    emit(
                        mask | vertex_bit,
                        lower,
                        coverage | vertex_adjacency | vertex_bit,
                    )
                else:
                    # Still maximal in the larger prefix; the excluded
                    # vertex appends its Eq. (5) term to the carried sum.
                    emit(
                        mask,
                        lower + min_out[level] if prune else 0.0,
                        coverage,
                    )
                    # FTC child: strip the conflicting members, add the
                    # vertex, re-derive its coverage, test maximality.
                    candidate = (mask & ~vertex_adjacency) | vertex_bit
                    candidate_coverage = candidate
                    remaining = candidate
                    while remaining:
                        low = remaining & -remaining
                        candidate_coverage |= adjacency[low.bit_length() - 1]
                        remaining ^= low
                        stats.search_bitset_ops += 1
                    if prefix_mask & ~candidate_coverage == 0:
                        emit(
                            candidate,
                            fresh_lower(candidate, level + 1) if prune else 0.0,
                            candidate_coverage,
                        )
                    else:
                        stats.non_maximal_discarded += 1
            frontier_masks = next_masks
            frontier_lower = next_lower
            frontier_coverage = next_coverage
        stats.sets_enumerated = len(frontier_masks)
        expand_span.set(**stats.as_dict())
    order_tuple = masks.order
    return [
        frozenset(order_tuple[i] for i in mask_bits(mask))
        for mask in frontier_masks
    ]


def enumerate_maximal_independent_sets_setbased(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = False,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> List[FrozenSet[int]]:
    """Reference set-based expansion (differential-test oracle).

    The pre-bitset implementation, kept verbatim (modulo the richer
    :class:`ExpansionLimitError`) so the Hypothesis suite can assert the
    production engine reproduces its results, emission order, node
    accounting, and budget-trip point exactly.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if stats is None:
        stats = ExpansionStats()
    if not order:
        return []
    min_out = _min_outgoing_cost(graph, order) if prune else {}

    current: List[FrozenSet[int]] = [frozenset({order[0]})]
    stats.nodes_generated += 1
    best_upper = float("inf")

    for level in range(1, len(order)):
        stats.levels = level
        vertex = order[level]
        # Vertices decided so far (D_i of Eq. 5). `vertex` itself is NOT
        # part of the bound's prefix: it may still join the set at zero
        # cost, so charging its min-out repair would overestimate the
        # bound and prune optimal branches.
        decided = order[:level]
        prefix = order[: level + 1]
        if prune:
            for node in current:
                best_upper = min(best_upper, _upper_bound(graph, order, node))
        next_level: Dict[FrozenSet[int], None] = {}

        def emit(candidate: FrozenSet[int]) -> None:
            if candidate in next_level:
                stats.duplicates_removed += 1
                return
            next_level[candidate] = None
            stats.nodes_generated += 1
            if max_nodes is not None and stats.nodes_generated > max_nodes:
                raise ExpansionLimitError(
                    max_nodes, stats.nodes_generated, level
                )

        for node in current:
            if prune and _lower_bound(decided, node, min_out) > best_upper:
                stats.nodes_pruned += 1
                continue
            adjacency = graph.neighbors(vertex)
            if not any(member in adjacency for member in node):
                emit(node | {vertex})
            else:
                emit(node)  # still maximal in the larger prefix
                candidate = graph.consistent_subset(vertex, node) | {vertex}
                if _is_maximal_in_prefix(graph, candidate, prefix):
                    emit(frozenset(candidate))
                else:
                    stats.non_maximal_discarded += 1
        current = list(next_level)
    stats.sets_enumerated = len(current)
    return current


def _is_maximal_in_prefix(
    graph: ViolationGraph, candidate: Set[int], prefix: Sequence[int]
) -> bool:
    """Maximality of *candidate* within the induced prefix subgraph."""
    for v in prefix:
        if v in candidate:
            continue
        adjacency = graph.neighbors(v)
        if not any(member in adjacency for member in candidate):
            return False
    return True


def brute_force_maximal_independent_sets(
    graph: ViolationGraph, vertices: Optional[Sequence[int]] = None
) -> List[FrozenSet[int]]:
    """Reference enumerator by subset expansion (test oracle only).

    Exponential in the vertex count; used to cross-check the expansion
    algorithm on small graphs.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    results: Set[FrozenSet[int]] = set()

    def extend(candidate: Set[int], remaining: List[int]) -> None:
        if not remaining:
            if _is_maximal_in_prefix(graph, candidate, order):
                results.add(frozenset(candidate))
            return
        vertex, rest = remaining[0], remaining[1:]
        adjacency = graph.neighbors(vertex)
        if not any(member in adjacency for member in candidate):
            extend(candidate | {vertex}, rest)
        extend(candidate, rest)

    if order:
        extend(set(), order)
    return sorted(results, key=lambda s: sorted(s))


def best_maximal_independent_set(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = True,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> FrozenSet[int]:
    """The independent set whose induced repair is cheapest (Theorem 2)."""
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    candidates = enumerate_maximal_independent_sets(
        graph, order, prune=prune, max_nodes=max_nodes, stats=stats
    )
    if not candidates:
        raise ValueError("no vertices to enumerate over")
    masks = graph.subgraph_masks(order)
    adjacency = masks.adjacency
    cost_rows = masks.cost_rows()
    multiplicities = masks.multiplicities
    full_mask = masks.full_mask
    index_of = masks.index_of

    def mask_assignment_cost(member_mask: int, members: List[int]) -> float:
        """:func:`_assignment_cost` over the bitset view (same floats)."""
        total = 0.0
        outside = full_mask & ~member_mask
        while outside:
            low = outside & -outside
            index = low.bit_length() - 1
            pool = adjacency[index] & member_mask
            row = cost_rows[index]
            cheapest = min(
                row[j] for j in (mask_bits(pool) if pool else members)
            )
            total += multiplicities[index] * cheapest
            outside ^= low
        return total

    best: Optional[FrozenSet[int]] = None
    best_cost = float("inf")
    for candidate in candidates:
        member_mask = 0
        for v in candidate:
            member_mask |= 1 << index_of[v]
        cost = mask_assignment_cost(member_mask, mask_bits(member_mask))
        if cost < best_cost - 1e-12 or (
            abs(cost - best_cost) <= 1e-12
            and best is not None
            and sorted(candidate) < sorted(best)
        ):
            best, best_cost = candidate, cost
    assert best is not None
    return best


def _assignment_cost(
    graph: ViolationGraph, vertices: Sequence[int], independent: FrozenSet[int]
) -> float:
    """Grouped repair cost of fixing all of *vertices* with *independent*."""
    total = 0.0
    members = list(independent)
    for v in vertices:
        if v in independent:
            continue
        adjacency = graph.neighbors(v)
        neighbor_members = [u for u in members if u in adjacency]
        pool = neighbor_members if neighbor_members else members
        total += graph.multiplicity(v) * min(graph.pair_cost(v, u) for u in pool)
    return total
