"""Maximal-independent-set enumeration via the expansion tree (Section 3.1).

Independent sets satisfy the a-priori property: every subset of an
independent set is independent. The expansion algorithm exploits this by
visiting vertices in order ``v_1 .. v_n`` and maintaining, per level
``i``, all maximal independent sets of the induced prefix ``D_i``:

* if ``v_{i+1}`` is FT-consistent with a set ``I``, the only child is
  ``I ∪ {v_{i+1}}``;
* otherwise ``I`` survives unchanged (it is still maximal), and
  ``FTC(v_{i+1}, I) ∪ {v_{i+1}}`` becomes a second child when it is
  maximal w.r.t. the new prefix and not a duplicate.

For the *optimal repair* search, a node may be pruned when its repair
lower bound (Eq. 5) exceeds the best known upper bound (Eq. 6): every
repair reachable from the node is then provably beaten by an already
known feasible repair.

The production engine (:func:`enumerate_maximal_independent_sets`) runs
the level-synchronous schedule as an explicit work-list branch-and-bound
over the :class:`~repro.core.graph.ComponentMasks` bitset view; the
loop itself lives in the resumable
:class:`~repro.core.single.frontier.SearchKernel` so giant components
can be cut at a level boundary into independently explorable subtree
tasks (:mod:`repro.core.single.subtree`, ``docs/parallelism.md``):

* each frontier node is one prefix-mask; FT-conflict, ``FTC``, and
  prefix-maximality checks are ``&``/``|`` word operations against a
  per-node *coverage mask* (members plus their neighborhoods);
* the Eq. (5) lower bound is **memoized per prefix-mask** and carried
  incrementally level to level (the same left-to-right float
  accumulation the scratch recomputation performs, so bounds are
  bit-identical to the oracle's);
* the Eq. (6) upper bound is computed **once per emitted mask** (the
  oracle recomputes it for every frontier node at every level) and
  folded into the incumbent at the next level boundary — exactly the
  point the oracle's fold becomes visible to pruning decisions;
* nodes with equal prefix-masks are merged (*dominance*): later
  expansion paths reaching an already-frontier mask are dominated by
  the first and dropped, which is also what bounds the tree width.

Every decision the serial engine takes — emission order, duplicate
merging, pruning, the node count that trips
:class:`ExpansionLimitError` — is bit-for-bit identical to the set-based
reference implementation, which is kept as
:func:`enumerate_maximal_independent_sets_setbased` and cross-checked by
the Hypothesis differential suite (``tests/test_search_bitset.py``), the
same oracle discipline the ``two_row``/``banded`` distance kernels
follow. When a subtree dispatcher is installed, the split exploration
reproduces the same *output* (the enumerate-mode merge is exact; the
best-mode winner is bound-independent) while counters reflect the extra
duplicated exploration across chunks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from repro.core.graph import ViolationGraph, mask_bits
from repro.core.single.frontier import (
    ExpansionLimitError,
    ExpansionStats,
    SearchKernel,
    better_candidate,
    min_outgoing_costs,
    select_best_mask,
)
from repro.core.single.subtree import (
    MODE_BEST,
    MODE_ENUMERATE,
    SplitRequest,
    SubtreeDispatcher,
    current_dispatcher,
)
from repro.obs import span

__all__ = [
    "ExpansionLimitError",
    "ExpansionStats",
    "enumerate_maximal_independent_sets",
    "enumerate_maximal_independent_sets_setbased",
    "best_maximal_independent_set",
    "brute_force_maximal_independent_sets",
]


def _min_outgoing_cost(
    graph: ViolationGraph, vertices: Sequence[int]
) -> Dict[int, float]:
    """Back-compat alias of :func:`~repro.core.single.frontier.min_outgoing_costs`."""
    return min_outgoing_costs(graph, vertices)


def _lower_bound(
    prefix: Sequence[int],
    independent: FrozenSet[int],
    min_out: Dict[int, float],
) -> float:
    """Eq. (5): vertices already excluded must pay their cheapest repair."""
    return sum(min_out[v] for v in prefix if v not in independent)


def _upper_bound(
    graph: ViolationGraph,
    vertices: Sequence[int],
    independent: FrozenSet[int],
) -> float:
    """Eq. (6): repair *every* outside vertex into the set right now.

    This is the cost of a concrete feasible repair, hence an upper bound
    on the optimum reachable from any superset of ``independent``.
    """
    total = 0.0
    members = list(independent)
    for v in vertices:
        if v in independent:
            continue
        total += graph.multiplicity(v) * min(
            graph.pair_cost(v, u) for u in members
        )
    return total


def _advance_to_split(
    kernel: SearchKernel,
    state,
    stats: ExpansionStats,
    dispatcher: SubtreeDispatcher,
    max_nodes: Optional[int],
) -> bool:
    """Serial prefix: widen the frontier until it can feed the fanout.

    Returns True when the enumeration *finished* during the prefix (the
    tree was too small to split — the caller completes locally, which is
    exactly the serial path).
    """
    target = max(2, dispatcher.fanout())
    while True:
        if kernel.advance(
            state, stats, max_nodes=max_nodes, stop_level=state.level + 1
        ):
            return True
        if len(state.masks) >= target:
            return False


def enumerate_maximal_independent_sets(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = False,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> List[FrozenSet[int]]:
    """All maximal independent sets of the induced subgraph on *vertices*.

    With ``prune=True`` the enumeration keeps only sets that can still
    lead to the minimum-cost repair (sound for the optimization, not for
    exhaustive enumeration). *max_nodes* bounds the total number of tree
    nodes; exceeding it raises :class:`ExpansionLimitError` so callers
    can fall back to the greedy algorithm.

    This is the bitset engine (module docstring); results, statistics,
    and the budget-trip point are identical to
    :func:`enumerate_maximal_independent_sets_setbased`. When a subtree
    dispatcher is installed (``repro.core.single.subtree``) and the
    component crosses its threshold, the un-pruned enumeration is split
    into subtree tasks whose merged output is the same list in the same
    order (pruned enumerations never split here — only the winner search
    in :func:`best_maximal_independent_set` does).
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if stats is None:
        stats = ExpansionStats()
    if not order:
        return []
    dispatcher = current_dispatcher()
    split_wanted = (
        dispatcher is not None
        and not prune  # the exact-merge theorem needs an unpruned tree
        and dispatcher.wants(len(order), prune=False, mode=MODE_ENUMERATE)
    )
    with span(
        "mis/expand", fd=graph.fd.name, vertices=len(order), prune=prune
    ) as expand_span:
        masks = graph.subgraph_masks(order)
        kernel = SearchKernel.for_graph(graph, order, prune=prune)
        state = kernel.seed(stats)
        final_masks: Optional[List[int]] = None
        if split_wanted:
            assert dispatcher is not None
            if not _advance_to_split(kernel, state, stats, dispatcher, max_nodes):
                final_masks = dispatcher.explore(
                    SplitRequest(
                        kernel=kernel,
                        state=state,
                        stats=stats,
                        mode=MODE_ENUMERATE,
                        max_nodes=max_nodes,
                        fd_name=graph.fd.name,
                        order=list(order),
                    )
                )
        if final_masks is None:
            kernel.advance(state, stats, max_nodes=max_nodes)
            final_masks = state.masks
        stats.sets_enumerated = len(final_masks)
        expand_span.set(**stats.as_dict())
    order_tuple = masks.order
    return [
        frozenset(order_tuple[i] for i in mask_bits(mask))
        for mask in final_masks
    ]


def enumerate_maximal_independent_sets_setbased(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = False,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> List[FrozenSet[int]]:
    """Reference set-based expansion (differential-test oracle).

    The pre-bitset implementation, kept verbatim (modulo the richer
    :class:`ExpansionLimitError`) so the Hypothesis suite can assert the
    production engine reproduces its results, emission order, node
    accounting, and budget-trip point exactly.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if stats is None:
        stats = ExpansionStats()
    if not order:
        return []
    min_out = _min_outgoing_cost(graph, order) if prune else {}

    current: List[FrozenSet[int]] = [frozenset({order[0]})]
    stats.nodes_generated += 1
    best_upper = float("inf")

    for level in range(1, len(order)):
        stats.levels = level
        vertex = order[level]
        # Vertices decided so far (D_i of Eq. 5). `vertex` itself is NOT
        # part of the bound's prefix: it may still join the set at zero
        # cost, so charging its min-out repair would overestimate the
        # bound and prune optimal branches.
        decided = order[:level]
        prefix = order[: level + 1]
        if prune:
            for node in current:
                best_upper = min(best_upper, _upper_bound(graph, order, node))
        next_level: Dict[FrozenSet[int], None] = {}

        def emit(candidate: FrozenSet[int]) -> None:
            if candidate in next_level:
                stats.duplicates_removed += 1
                return
            next_level[candidate] = None
            stats.nodes_generated += 1
            if max_nodes is not None and stats.nodes_generated > max_nodes:
                raise ExpansionLimitError(
                    max_nodes, stats.nodes_generated, level
                )

        for node in current:
            if prune and _lower_bound(decided, node, min_out) > best_upper:
                stats.nodes_pruned += 1
                continue
            adjacency = graph.neighbors(vertex)
            if not any(member in adjacency for member in node):
                emit(node | {vertex})
            else:
                emit(node)  # still maximal in the larger prefix
                candidate = graph.consistent_subset(vertex, node) | {vertex}
                if _is_maximal_in_prefix(graph, candidate, prefix):
                    emit(frozenset(candidate))
                else:
                    stats.non_maximal_discarded += 1
        current = list(next_level)
    stats.sets_enumerated = len(current)
    return current


def _is_maximal_in_prefix(
    graph: ViolationGraph, candidate: Set[int], prefix: Sequence[int]
) -> bool:
    """Maximality of *candidate* within the induced prefix subgraph."""
    for v in prefix:
        if v in candidate:
            continue
        adjacency = graph.neighbors(v)
        if not any(member in adjacency for member in candidate):
            return False
    return True


def brute_force_maximal_independent_sets(
    graph: ViolationGraph, vertices: Optional[Sequence[int]] = None
) -> List[FrozenSet[int]]:
    """Reference enumerator by subset expansion (test oracle only).

    Exponential in the vertex count; used to cross-check the expansion
    algorithm on small graphs.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    results: Set[FrozenSet[int]] = set()

    def extend(candidate: Set[int], remaining: List[int]) -> None:
        if not remaining:
            if _is_maximal_in_prefix(graph, candidate, order):
                results.add(frozenset(candidate))
            return
        vertex, rest = remaining[0], remaining[1:]
        adjacency = graph.neighbors(vertex)
        if not any(member in adjacency for member in candidate):
            extend(candidate | {vertex}, rest)
        extend(candidate, rest)

    if order:
        extend(set(), order)
    return sorted(results, key=lambda s: sorted(s))


def _best_via_split(
    graph: ViolationGraph,
    order: List[int],
    prune: bool,
    max_nodes: Optional[int],
    stats: ExpansionStats,
    dispatcher: SubtreeDispatcher,
) -> FrozenSet[int]:
    """Winner search with the frontier split into subtree tasks.

    Chunks score their own surviving candidates; the parent reduces the
    chunk winners in segment order with the serial comparator. Shared
    incumbent bounds may only prune provably-beaten sets, so the winner
    matches the serial scan (``docs/parallelism.md``).
    """
    with span(
        "mis/expand",
        fd=graph.fd.name,
        vertices=len(order),
        prune=prune,
        split=True,
    ) as expand_span:
        kernel = SearchKernel.for_graph(
            graph, order, prune=prune, with_costs=True
        )
        state = kernel.seed(stats)
        winner = None
        if _advance_to_split(kernel, state, stats, dispatcher, max_nodes):
            # Finished during the serial prefix: score locally — the
            # same scan, comparator and floats as the unsplit path.
            stats.sets_enumerated = len(state.masks)
            winner = select_best_mask(kernel, state.masks, order)
        else:
            winner = dispatcher.explore(
                SplitRequest(
                    kernel=kernel,
                    state=state,
                    stats=stats,
                    mode=MODE_BEST,
                    max_nodes=max_nodes,
                    fd_name=graph.fd.name,
                    order=list(order),
                )
            )
        expand_span.set(**stats.as_dict())
    if winner is None:
        raise ValueError("no vertices to enumerate over")
    mask = winner[0]
    return frozenset(order[i] for i in mask_bits(mask))


def best_maximal_independent_set(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = True,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> FrozenSet[int]:
    """The independent set whose induced repair is cheapest (Theorem 2)."""
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if stats is None:
        stats = ExpansionStats()
    dispatcher = current_dispatcher()
    if (
        order
        and dispatcher is not None
        and dispatcher.wants(len(order), prune=prune, mode=MODE_BEST)
    ):
        return _best_via_split(
            graph, order, prune, max_nodes, stats, dispatcher
        )
    candidates = enumerate_maximal_independent_sets(
        graph, order, prune=prune, max_nodes=max_nodes, stats=stats
    )
    if not candidates:
        raise ValueError("no vertices to enumerate over")
    kernel = SearchKernel.for_graph(graph, order, prune=prune, with_costs=True)
    index_of = graph.subgraph_masks(order).index_of

    best: Optional[FrozenSet[int]] = None
    best_cost = float("inf")
    best_members: Optional[List[int]] = None
    for candidate in candidates:
        member_mask = 0
        for v in candidate:
            member_mask |= 1 << index_of[v]
        cost = kernel.mask_assignment_cost(member_mask)
        members = sorted(candidate)
        if better_candidate(cost, members, best_cost, best_members):
            best, best_cost, best_members = candidate, cost, members
    assert best is not None
    return best


def _assignment_cost(
    graph: ViolationGraph, vertices: Sequence[int], independent: FrozenSet[int]
) -> float:
    """Grouped repair cost of fixing all of *vertices* with *independent*."""
    total = 0.0
    members = list(independent)
    for v in vertices:
        if v in independent:
            continue
        adjacency = graph.neighbors(v)
        neighbor_members = [u for u in members if u in adjacency]
        pool = neighbor_members if neighbor_members else members
        total += graph.multiplicity(v) * min(graph.pair_cost(v, u) for u in pool)
    return total
