"""Maximal-independent-set enumeration via the expansion tree (Section 3.1).

Independent sets satisfy the a-priori property: every subset of an
independent set is independent. The expansion algorithm exploits this by
visiting vertices in order ``v_1 .. v_n`` and maintaining, per level
``i``, all maximal independent sets of the induced prefix ``D_i``:

* if ``v_{i+1}`` is FT-consistent with a set ``I``, the only child is
  ``I ∪ {v_{i+1}}``;
* otherwise ``I`` survives unchanged (it is still maximal), and
  ``FTC(v_{i+1}, I) ∪ {v_{i+1}}`` becomes a second child when it is
  maximal w.r.t. the new prefix and not a duplicate.

For the *optimal repair* search, a node may be pruned when its repair
lower bound (Eq. 5) exceeds the best known upper bound (Eq. 6): every
repair reachable from the node is then provably beaten by an already
known feasible repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.core.graph import ViolationGraph
from repro.obs import span


class ExpansionLimitError(RuntimeError):
    """Raised when enumeration exceeds the caller's node budget."""


@dataclass
class ExpansionStats:
    """Counters from one enumeration run."""

    levels: int = 0
    nodes_generated: int = 0
    nodes_pruned: int = 0
    duplicates_removed: int = 0
    non_maximal_discarded: int = 0
    sets_enumerated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "levels": self.levels,
            "nodes_generated": self.nodes_generated,
            "nodes_pruned": self.nodes_pruned,
            "duplicates_removed": self.duplicates_removed,
            "non_maximal_discarded": self.non_maximal_discarded,
            "sets_enumerated": self.sets_enumerated,
        }


def _min_outgoing_cost(graph: ViolationGraph, vertices: Sequence[int]) -> Dict[int, float]:
    """Per-vertex cheapest directed repair cost to any neighbor.

    The Eq. (5) ingredient: a vertex left out of the independent set must
    be repaired to *some* neighbor, costing at least this much.
    """
    out: Dict[int, float] = {}
    allowed = set(vertices)
    for v in vertices:
        costs = [
            graph.multiplicity(v) * cost
            for u, cost in graph.neighbors(v).items()
            if u in allowed
        ]
        out[v] = min(costs) if costs else 0.0
    return out


def _lower_bound(
    prefix: Sequence[int],
    independent: FrozenSet[int],
    min_out: Dict[int, float],
) -> float:
    """Eq. (5): vertices already excluded must pay their cheapest repair."""
    return sum(min_out[v] for v in prefix if v not in independent)


def _upper_bound(
    graph: ViolationGraph,
    vertices: Sequence[int],
    independent: FrozenSet[int],
) -> float:
    """Eq. (6): repair *every* outside vertex into the set right now.

    This is the cost of a concrete feasible repair, hence an upper bound
    on the optimum reachable from any superset of ``independent``.
    """
    total = 0.0
    members = list(independent)
    for v in vertices:
        if v in independent:
            continue
        total += graph.multiplicity(v) * min(
            graph.pair_cost(v, u) for u in members
        )
    return total


def enumerate_maximal_independent_sets(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = False,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> List[FrozenSet[int]]:
    """All maximal independent sets of the induced subgraph on *vertices*.

    With ``prune=True`` the enumeration keeps only sets that can still
    lead to the minimum-cost repair (sound for the optimization, not for
    exhaustive enumeration). *max_nodes* bounds the total number of tree
    nodes; exceeding it raises :class:`ExpansionLimitError` so callers
    can fall back to the greedy algorithm.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    if stats is None:
        stats = ExpansionStats()
    if not order:
        return []
    with span(
        "mis/expand", fd=graph.fd.name, vertices=len(order), prune=prune
    ) as expand_span:
        min_out = _min_outgoing_cost(graph, order) if prune else {}

        current: List[FrozenSet[int]] = [frozenset({order[0]})]
        stats.nodes_generated += 1
        best_upper = float("inf")

        for level in range(1, len(order)):
            stats.levels = level
            vertex = order[level]
            # Vertices decided so far (D_i of Eq. 5). `vertex` itself is NOT
            # part of the bound's prefix: it may still join the set at zero
            # cost, so charging its min-out repair would overestimate the
            # bound and prune optimal branches.
            decided = order[:level]
            prefix = order[: level + 1]
            if prune:
                for node in current:
                    best_upper = min(
                        best_upper, _upper_bound(graph, order, node)
                    )
            next_level: Dict[FrozenSet[int], None] = {}

            def emit(candidate: FrozenSet[int]) -> None:
                if candidate in next_level:
                    stats.duplicates_removed += 1
                    return
                next_level[candidate] = None
                stats.nodes_generated += 1
                if max_nodes is not None and stats.nodes_generated > max_nodes:
                    raise ExpansionLimitError(
                        f"expansion exceeded {max_nodes} nodes at level {level}"
                    )

            for node in current:
                if prune and _lower_bound(decided, node, min_out) > best_upper:
                    stats.nodes_pruned += 1
                    continue
                adjacency = graph.neighbors(vertex)
                if not any(member in adjacency for member in node):
                    emit(node | {vertex})
                else:
                    emit(node)  # still maximal in the larger prefix
                    candidate = graph.consistent_subset(vertex, node) | {vertex}
                    if _is_maximal_in_prefix(graph, candidate, prefix):
                        emit(frozenset(candidate))
                    else:
                        stats.non_maximal_discarded += 1
            current = list(next_level)
        stats.sets_enumerated = len(current)
        expand_span.set(**stats.as_dict())
    return current


def _is_maximal_in_prefix(
    graph: ViolationGraph, candidate: Set[int], prefix: Sequence[int]
) -> bool:
    """Maximality of *candidate* within the induced prefix subgraph."""
    for v in prefix:
        if v in candidate:
            continue
        adjacency = graph.neighbors(v)
        if not any(member in adjacency for member in candidate):
            return False
    return True


def brute_force_maximal_independent_sets(
    graph: ViolationGraph, vertices: Optional[Sequence[int]] = None
) -> List[FrozenSet[int]]:
    """Reference enumerator by subset expansion (test oracle only).

    Exponential in the vertex count; used to cross-check the expansion
    algorithm on small graphs.
    """
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    results: Set[FrozenSet[int]] = set()

    def extend(candidate: Set[int], remaining: List[int]) -> None:
        if not remaining:
            if _is_maximal_in_prefix(graph, candidate, order):
                results.add(frozenset(candidate))
            return
        vertex, rest = remaining[0], remaining[1:]
        adjacency = graph.neighbors(vertex)
        if not any(member in adjacency for member in candidate):
            extend(candidate | {vertex}, rest)
        extend(candidate, rest)

    if order:
        extend(set(), order)
    return sorted(results, key=lambda s: sorted(s))


def best_maximal_independent_set(
    graph: ViolationGraph,
    vertices: Optional[Sequence[int]] = None,
    prune: bool = True,
    max_nodes: Optional[int] = None,
    stats: Optional[ExpansionStats] = None,
) -> FrozenSet[int]:
    """The independent set whose induced repair is cheapest (Theorem 2)."""
    order = list(vertices) if vertices is not None else list(range(len(graph)))
    candidates = enumerate_maximal_independent_sets(
        graph, order, prune=prune, max_nodes=max_nodes, stats=stats
    )
    if not candidates:
        raise ValueError("no vertices to enumerate over")
    best: Optional[FrozenSet[int]] = None
    best_cost = float("inf")
    for candidate in candidates:
        cost = _assignment_cost(graph, order, candidate)
        if cost < best_cost - 1e-12 or (
            abs(cost - best_cost) <= 1e-12
            and best is not None
            and sorted(candidate) < sorted(best)
        ):
            best, best_cost = candidate, cost
    assert best is not None
    return best


def _assignment_cost(
    graph: ViolationGraph, vertices: Sequence[int], independent: FrozenSet[int]
) -> float:
    """Grouped repair cost of fixing all of *vertices* with *independent*."""
    total = 0.0
    members = list(independent)
    for v in vertices:
        if v in independent:
            continue
        adjacency = graph.neighbors(v)
        neighbor_members = [u for u in members if u in adjacency]
        pool = neighbor_members if neighbor_members else members
        total += graph.multiplicity(v) * min(graph.pair_cost(v, u) for u in pool)
    return total
