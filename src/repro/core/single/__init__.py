"""Single-constraint repair algorithms (Section 3)."""

from repro.core.single.exact import repair_single_fd_exact
from repro.core.single.greedy import greedy_independent_set, repair_single_fd_greedy
from repro.core.single.mis import (
    ExpansionLimitError,
    ExpansionStats,
    brute_force_maximal_independent_sets,
    enumerate_maximal_independent_sets,
)

__all__ = [
    "repair_single_fd_exact",
    "repair_single_fd_greedy",
    "greedy_independent_set",
    "enumerate_maximal_independent_sets",
    "brute_force_maximal_independent_sets",
    "ExpansionLimitError",
    "ExpansionStats",
]
