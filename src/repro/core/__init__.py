"""The paper's primary contribution: fault-tolerant cost-based repairing."""

from repro.core.cfd_repair import CFDRepairer
from repro.core.detection import DetectionReport, detect
from repro.core.incremental import IncrementalRepairer
from repro.core.constraints import CFD, FD, PatternRow, parse_fds
from repro.core.distances import (
    DistanceModel,
    Weights,
    jaccard_distance,
    levenshtein,
    normalized_edit_distance,
    normalized_euclidean,
)
from repro.core.engine import ALGORITHMS, Repairer
from repro.core.repair import CellEdit, RepairResult, apply_edits
from repro.core.thresholds import suggest_threshold, suggest_thresholds
from repro.core.violation import (
    FTViolation,
    Pattern,
    ft_violation_pairs,
    group_patterns,
    is_consistent,
    is_consistent_all,
    is_ft_consistent,
    is_ft_consistent_all,
)

__all__ = [
    "FD",
    "CFD",
    "PatternRow",
    "parse_fds",
    "DistanceModel",
    "Weights",
    "levenshtein",
    "normalized_edit_distance",
    "normalized_euclidean",
    "jaccard_distance",
    "Repairer",
    "CFDRepairer",
    "DetectionReport",
    "IncrementalRepairer",
    "detect",
    "ALGORITHMS",
    "CellEdit",
    "RepairResult",
    "apply_edits",
    "suggest_threshold",
    "suggest_thresholds",
    "Pattern",
    "FTViolation",
    "group_patterns",
    "ft_violation_pairs",
    "is_ft_consistent",
    "is_ft_consistent_all",
    "is_consistent",
    "is_consistent_all",
]
