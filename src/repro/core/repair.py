"""Repair value objects: cell edits, repairs, and results.

A repair is a set of cell rewrites. We record them explicitly (rather
than only producing the repaired relation) because the evaluation metrics
(Section 6.1) are defined over repaired cells: precision is the fraction
of *repaired* cells restored to the truth, recall the fraction of
*erroneous* cells restored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.dataset.relation import Cell, Relation


@dataclass(frozen=True)
class CellEdit:
    """One cell rewrite: (tid, attribute): old -> new."""

    tid: int
    attribute: str
    old: Any
    new: Any

    @property
    def cell(self) -> Cell:
        return (self.tid, self.attribute)

    def __str__(self) -> str:
        return f"t{self.tid}[{self.attribute}]: {self.old!r} -> {self.new!r}"


@dataclass
class RepairResult:
    """Outcome of one repair run.

    Attributes
    ----------
    relation:
        The repaired relation (the input is never mutated).
    edits:
        The applied cell rewrites, deduplicated, in application order.
    cost:
        Eq. (4) database repair cost — the sum over tuples of the
        per-attribute distances between the original and repaired values.
    stats:
        Free-form counters from the algorithm (graph sizes, nodes
        expanded, prunings...). Keys are algorithm-specific. Results
        produced by the :class:`repro.exec.RepairExecutor` carry an
        :class:`repro.exec.ExecutionStats` here — a dict subclass, so
        every existing ``stats["..."]`` consumer keeps working, with
        typed accessors (``stats.degraded``, ``stats.cache_hit_rate``,
        ``stats.components``...) on top.
    timings:
        Phase name -> wall seconds (``model``, ``thresholds``,
        ``execute``). Empty for results built outside the engine.
    run_report:
        The :class:`~repro.obs.RunReport` of this run when the engine
        ran with ``trace=True`` (spans tree, unified counters, config,
        dataset fingerprint); ``None`` otherwise.
    """

    relation: Relation
    edits: List[CellEdit]
    cost: float
    stats: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    run_report: Optional[Any] = None

    @property
    def edited_cells(self) -> List[Cell]:
        return [edit.cell for edit in self.edits]

    def edits_by_cell(self) -> Dict[Cell, CellEdit]:
        """Last-write-wins view of the edits keyed by cell."""
        return {edit.cell: edit for edit in self.edits}

    def summary(self) -> str:
        """One-line human summary (execution stats appended when known)."""
        text = f"{len(self.edits)} cell edit(s), repair cost {self.cost:.4f}"
        describe = getattr(self.stats, "describe", None)
        if describe is not None:
            detail = describe()
            if detail:
                text += f" [{detail}]"
        return text


def apply_edits(relation: Relation, edits: Iterable[CellEdit]) -> Relation:
    """Return a copy of *relation* with *edits* applied in order."""
    repaired = relation.copy()
    for edit in edits:
        repaired.set_value(edit.tid, edit.attribute, edit.new)
    return repaired


def collect_edits(
    original: Relation, repaired: Relation
) -> List[CellEdit]:
    """Diff two same-schema relations into cell edits."""
    if original.schema != repaired.schema or len(original) != len(repaired):
        raise ValueError("relations must share schema and cardinality to diff")
    edits: List[CellEdit] = []
    names = original.schema.names
    for tid in original.tids():
        row_old = original.row(tid)
        row_new = repaired.row(tid)
        for attr, old, new in zip(names, row_old, row_new):
            if old != new:
                edits.append(CellEdit(tid, attr, old, new))
    return edits


def edits_from_assignment(
    relation: Relation,
    attributes: Tuple[str, ...],
    tid_to_values: Mapping[int, Tuple],
) -> List[CellEdit]:
    """Cell edits that set *attributes* of each tid to the given values.

    Values are positional, matching *attributes*; unchanged cells are
    skipped.
    """
    edits: List[CellEdit] = []
    for tid, values in tid_to_values.items():
        if len(values) != len(attributes):
            raise ValueError(
                f"value tuple of length {len(values)} for {len(attributes)} attributes"
            )
        for attr, new in zip(attributes, values):
            old = relation.value(tid, attr)
            if old != new:
                edits.append(CellEdit(tid, attr, old, new))
    return edits


def squash_edits(edits: Iterable[CellEdit]) -> List[CellEdit]:
    """Collapse repeated rewrites of the same cell into the final one.

    Sequential per-FD repair can touch a cell twice; the net effect is a
    single old -> final rewrite (and none at all when the cell returns to
    its original value).
    """
    first_old: Dict[Cell, Any] = {}
    last_new: Dict[Cell, Any] = {}
    order: List[Cell] = []
    for edit in edits:
        if edit.cell not in first_old:
            first_old[edit.cell] = edit.old
            order.append(edit.cell)
        last_new[edit.cell] = edit.new
    return [
        CellEdit(cell[0], cell[1], first_old[cell], last_new[cell])
        for cell in order
        if first_old[cell] != last_new[cell]
    ]


def merge_results(
    relation: Relation, parts: Iterable[RepairResult]
) -> RepairResult:
    """Combine component-wise repairs into one result.

    Components operate on disjoint attribute sets (Section 4.1's FD
    graph), so edits cannot conflict; costs add.
    """
    all_edits: List[CellEdit] = []
    total = 0.0
    stats: Dict[str, Any] = {}
    seen_cells: Dict[Cell, CellEdit] = {}
    for part in parts:
        for edit in part.edits:
            if edit.cell in seen_cells and seen_cells[edit.cell].new != edit.new:
                raise ValueError(
                    f"conflicting edits for cell {edit.cell}: "
                    f"{seen_cells[edit.cell].new!r} vs {edit.new!r}"
                )
            seen_cells[edit.cell] = edit
        all_edits.extend(part.edits)
        total += part.cost
        for key, value in part.stats.items():
            if isinstance(value, (int, float)) and key in stats:
                stats[key] = stats[key] + value
            else:
                stats[key] = value
    repaired = apply_edits(relation, all_edits)
    return RepairResult(repaired, all_edits, total, stats)
