"""Incremental repair: fit once, repair arriving tuples in O(search).

Batch repair recomputes violation graphs from scratch; a feed that
receives a handful of records per second should not. The incremental
repairer splits the paper's pipeline at its natural seam:

* :meth:`IncrementalRepairer.fit` runs the expensive part once on a
  reference instance — per-FD violation graphs, (dominance-seeded)
  independent sets, and one target tree per FD-graph component;
* :meth:`IncrementalRepairer.repair_record` then answers "how should
  this one tuple look" by checking its per-FD patterns against the
  fitted sets and, if any is unresolved, rewriting the component
  attributes to the nearest fitted target (the same rule the batch
  algorithms apply).

The fitted sets are read-only by default — arriving garbage cannot
corrupt the model. With ``absorb=True``, a record whose patterns are
FT-consistent with every fitted set (a genuinely new, clean entity) is
*absorbed*: its patterns join the sets and the affected component's
target tree is rebuilt, so later look-alikes repair toward it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel, Weights
from repro.core.engine import Repairer
from repro.core.multi.fdgraph import component_attributes, fd_components
from repro.core.multi.target_tree import TargetTree
from repro.core.repair import CellEdit
from repro.core.violation import PreparedProjection
from repro.dataset.relation import Relation, ValueDictionary


class NotFittedError(RuntimeError):
    """repair_record was called before fit."""


class _Component:
    """Fitted state for one connected FD-graph component.

    When the fitted relation's per-attribute intern tables
    (:class:`~repro.dataset.relation.ValueDictionary`, PR 6) are passed
    in, element membership is keyed on dense value-id tuples instead of
    raw value tuples: ``resolved`` hashes a handful of small ints per FD
    rather than re-hashing the record's strings, and the fitted state
    shares the batch substrate's intern tables instead of duplicating
    every string. Records carrying values the fit never saw (and
    patterns absorbed from such records) fall back to the raw-value
    sets, which stay complete alongside the id sets.
    """

    def __init__(
        self,
        fds: Sequence[FD],
        elements_per_fd: List[List[Tuple]],
        model: DistanceModel,
        dictionaries: Optional[Mapping[str, ValueDictionary]] = None,
    ) -> None:
        self.fds = list(fds)
        self.attributes: Tuple[str, ...] = tuple(component_attributes(fds))
        self.elements_per_fd = [list(e) for e in elements_per_fd]
        self._element_sets = [set(e) for e in elements_per_fd]
        self._model = model
        self._dictionaries = dict(dictionaries) if dictionaries else None
        #: per-FD sets of element id tuples; an entry is ``None`` when
        #: some element of that FD is not encodable (no dictionaries, or
        #: a value outside the intern tables)
        self._element_ids: Optional[List[Optional[set]]] = None
        if self._dictionaries is not None:
            self._element_ids = [
                self._encode_all(fd, elements)
                for fd, elements in zip(self.fds, self.elements_per_fd)
            ]
        self.tree = TargetTree(self.fds, self.elements_per_fd, model)

    # -- dictionary-id keying ------------------------------------------
    def _encode(self, fd: FD, values: Tuple) -> Optional[Tuple[int, ...]]:
        """*values* as dense value ids, or ``None`` on any unseen value.

        Equal values intern to equal ids (the PR-6 invariant), so id
        tuples are equal iff the value tuples are — id-set membership is
        exactly raw-set membership for encodable patterns.
        """
        dicts = self._dictionaries
        if dicts is None:
            return None
        try:
            return tuple(
                dicts[attr].id_of(value)
                for attr, value in zip(fd.attributes, values)
            )
        except (KeyError, TypeError):
            return None

    def _encode_all(
        self, fd: FD, elements: Sequence[Tuple]
    ) -> Optional[set]:
        encoded = set()
        for element in elements:
            key = self._encode(fd, element)
            if key is None:
                return None
            encoded.add(key)
        return encoded

    def resolved(self, record: Mapping[str, object]) -> bool:
        ids = self._element_ids
        for pos, (fd, members) in enumerate(
            zip(self.fds, self._element_sets)
        ):
            pattern = tuple(record[a] for a in fd.attributes)
            id_set = ids[pos] if ids is not None else None
            if id_set is not None:
                key = self._encode(fd, pattern)
                if key is not None:
                    # id sets are complete for encodable patterns, so
                    # the verdict is exact — no raw-set re-check needed
                    if key not in id_set:
                        return False
                    continue
            if pattern not in members:
                return False
        return True

    def consistent_everywhere(
        self, record: Mapping[str, object], thresholds: Dict[FD, float]
    ) -> bool:
        """No fitted element FT-violates any of the record's patterns.

        The record's pattern is prepared **once per FD**
        (:class:`~repro.core.violation.PreparedProjection`: one Myers
        PEQ table per attribute) and streamed over the fitted elements,
        instead of paying a fresh kernel preparation per element. Same
        accepted pairs and ``kernel_calls`` accounting as the pairwise
        :func:`~repro.core.violation.projection_distance_within`.
        """
        for fd, elements in zip(self.fds, self.elements_per_fd):
            pattern = tuple(record[a] for a in fd.attributes)
            tau = thresholds[fd]
            prepared = PreparedProjection(self._model, fd, pattern)
            for element in elements:
                if element == pattern:
                    continue
                if prepared.distance_within(element, tau) is not None:
                    return False
        return True

    def absorb(self, record: Mapping[str, object]) -> None:
        changed = False
        for pos, (fd, elements, members) in enumerate(
            zip(self.fds, self.elements_per_fd, self._element_sets)
        ):
            pattern = tuple(record[a] for a in fd.attributes)
            if pattern not in members:
                elements.append(pattern)
                members.add(pattern)
                if self._element_ids is not None:
                    id_set = self._element_ids[pos]
                    if id_set is not None:
                        key = self._encode(fd, pattern)
                        if key is not None:
                            id_set.add(key)
                        # unseen values stay raw-only; dictionaries are
                        # shared with the fitted relation and absorb
                        # must not grow them behind its back
                changed = True
        if changed:
            self.tree = TargetTree(self.fds, self.elements_per_fd, self._model)


class IncrementalRepairer:
    """Fit on a reference instance, then repair records one at a time.

    Parameters mirror :class:`~repro.core.engine.Repairer` where they
    apply; set selection uses the (dominance-seeded) per-FD greedy.
    """

    def __init__(
        self,
        fds: Sequence[FD],
        weights: Weights = Weights(),
        thresholds=None,
        absorb: bool = False,
    ) -> None:
        if not fds:
            raise ValueError("at least one FD is required")
        self.fds: List[FD] = list(fds)
        self.weights = weights
        self._thresholds_spec = thresholds
        self.absorb = absorb
        self._components: Optional[List[_Component]] = None
        self._model: Optional[DistanceModel] = None
        self._thresholds: Optional[Dict[FD, float]] = None
        self.records_seen = 0
        self.records_repaired = 0
        self.records_absorbed = 0

    # ------------------------------------------------------------------
    def fit(self, relation: Relation) -> "IncrementalRepairer":
        """Learn the repair model from *relation* (ideally mostly clean)."""
        from repro.core.multi.appro import greedy_sets_per_fd

        facade = Repairer(
            self.fds, weights=self.weights, thresholds=self._thresholds_spec
        )
        model = facade.build_model(relation)
        thresholds = facade.resolve_thresholds(relation, model)
        components: List[_Component] = []
        for component_fds in fd_components(self.fds):
            _, elements = greedy_sets_per_fd(
                relation, component_fds, model, thresholds, seed_dominant=True
            )
            # share the fitted relation's intern tables so membership
            # tests run on dense value ids (PR-6 columnar substrate)
            dictionaries = {
                attr: relation.dictionary(attr)
                for attr in component_attributes(component_fds)
            }
            components.append(
                _Component(component_fds, elements, model, dictionaries)
            )
        self._components = components
        self._model = model
        self._thresholds = thresholds
        return self

    @property
    def is_fitted(self) -> bool:
        return self._components is not None

    # ------------------------------------------------------------------
    def repair_record(
        self, record: Mapping[str, object]
    ) -> Tuple[Dict[str, object], List[CellEdit]]:
        """Repair one record; returns (repaired record, pseudo-edits).

        Edits use tid 0 (records have no tuple id); attributes outside
        every constraint pass through untouched.
        """
        if self._components is None:
            raise NotFittedError("call fit() before repair_record()")
        assert self._thresholds is not None
        self.records_seen += 1
        repaired = dict(record)
        edits: List[CellEdit] = []
        for component in self._components:
            missing = [
                a for a in component.attributes if a not in repaired
            ]
            if missing:
                raise KeyError(f"record is missing attribute(s): {missing}")
            if component.resolved(repaired):
                continue
            if self.absorb and component.consistent_everywhere(
                repaired, self._thresholds
            ):
                component.absorb(repaired)
                self.records_absorbed += 1
                continue
            values = tuple(repaired[a] for a in component.attributes)
            target, _cost = component.tree.nearest_target(values)
            for attr, new in zip(component.attributes, target.values):
                old = repaired[attr]
                if old != new:
                    edits.append(CellEdit(0, attr, old, new))
                    repaired[attr] = new
        if edits:
            self.records_repaired += 1
        return repaired, edits

    def repair_batch(self, relation: Relation) -> Relation:
        """Repair every tuple of *relation* through the fitted model."""
        if self._components is None:
            raise NotFittedError("call fit() before repair_batch()")
        out = Relation(relation.schema)
        names = relation.schema.names
        for tid in relation.tids():
            repaired, _ = self.repair_record(relation.as_record(tid))
            out.append([repaired[a] for a in names])
        return out


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
_PERSIST_VERSION = 1


def _schema_to_spec(schema) -> List[List[str]]:
    return [[attr.name, attr.kind] for attr in schema]


def _schema_from_spec(spec) -> "Schema":
    from repro.dataset.relation import Attribute, Schema

    return Schema(Attribute(name, kind) for name, kind in spec)


def save_model(repairer: IncrementalRepairer, path) -> None:
    """Persist a fitted :class:`IncrementalRepairer` to a JSON file.

    Only the fitted state travels: schema, numeric spreads, FDs,
    thresholds, per-component independent-set elements, counters.
    Distance-function overrides are not serializable and must be
    re-supplied at load time if used.
    """
    import json

    if repairer._components is None or repairer._model is None:
        raise NotFittedError("fit() the repairer before saving it")
    assert repairer._thresholds is not None
    payload = {
        "version": _PERSIST_VERSION,
        "schema": _schema_to_spec(repairer._model.schema),
        "weights": [repairer.weights.lhs, repairer.weights.rhs],
        "spreads": repairer._model.spreads,
        "absorb": repairer.absorb,
        "fds": [
            {"lhs": list(fd.lhs), "rhs": list(fd.rhs), "name": fd.name}
            for fd in repairer.fds
        ],
        "thresholds": {
            fd.name: repairer._thresholds[fd] for fd in repairer.fds
        },
        "components": [
            {
                "fd_names": [fd.name for fd in component.fds],
                "elements": [
                    [list(element) for element in elements]
                    for elements in component.elements_per_fd
                ],
            }
            for component in repairer._components
        ],
        "counters": {
            "records_seen": repairer.records_seen,
            "records_repaired": repairer.records_repaired,
            "records_absorbed": repairer.records_absorbed,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_model(path) -> IncrementalRepairer:
    """Restore a fitted :class:`IncrementalRepairer` from a JSON file."""
    import json

    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _PERSIST_VERSION:
        raise ValueError(
            f"unsupported model version {payload.get('version')!r}"
        )
    schema = _schema_from_spec(payload["schema"])
    weights = Weights(*payload["weights"])
    fds = [
        FD(tuple(spec["lhs"]), tuple(spec["rhs"]), name=spec["name"])
        for spec in payload["fds"]
    ]
    by_name = {fd.name: fd for fd in fds}
    thresholds = {
        by_name[name]: float(tau)
        for name, tau in payload["thresholds"].items()
    }
    model = DistanceModel.from_parts(schema, payload["spreads"], weights)

    def _revive(values, fd_attrs):
        kinds = [schema.kind_of(a) for a in fd_attrs]
        return tuple(
            float(v) if kind == "numeric" else v
            for v, kind in zip(values, kinds)
        )

    repairer = IncrementalRepairer(
        fds,
        weights=weights,
        thresholds=thresholds,
        absorb=bool(payload["absorb"]),
    )
    components: List[_Component] = []
    for spec in payload["components"]:
        component_fds = [by_name[name] for name in spec["fd_names"]]
        elements = [
            [_revive(values, fd.attributes) for values in element_list]
            for fd, element_list in zip(component_fds, spec["elements"])
        ]
        components.append(_Component(component_fds, elements, model))
    repairer._components = components
    repairer._model = model
    repairer._thresholds = thresholds
    counters = payload.get("counters", {})
    repairer.records_seen = counters.get("records_seen", 0)
    repairer.records_repaired = counters.get("records_repaired", 0)
    repairer.records_absorbed = counters.get("records_absorbed", 0)
    return repairer
