"""Multiple-constraint repair algorithms (Sections 4-5)."""

from repro.core.multi.fdgraph import fd_components, fds_share_attributes
from repro.core.multi.targets import (
    Target,
    TargetJoinError,
    join_targets,
    nearest_target_naive,
)
from repro.core.multi.target_tree import TargetTree
from repro.core.multi.exact import repair_multi_fd_exact
from repro.core.multi.appro import repair_multi_fd_appro
from repro.core.multi.greedy import repair_multi_fd_greedy

__all__ = [
    "fd_components",
    "fds_share_attributes",
    "Target",
    "TargetJoinError",
    "join_targets",
    "nearest_target_naive",
    "TargetTree",
    "repair_multi_fd_exact",
    "repair_multi_fd_appro",
    "repair_multi_fd_greedy",
]
