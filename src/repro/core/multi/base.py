"""Shared plumbing for the multi-FD repairers.

Once each FD of a connected component has a chosen independent set, the
remaining work is identical across Exact-M / Appro-M / Greedy-M
(Algorithms 3-4, last lines): join the sets into targets, leave alone
every tuple whose per-FD projections all live inside the chosen sets,
and rewrite each remaining ("unresolved") tuple's component attributes
to its nearest target.

Tuples sharing the full component projection behave identically, so the
scan groups them first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.multi.fdgraph import component_attributes
from repro.core.multi.target_tree import TargetTree
from repro.core.multi.targets import join_targets, nearest_target_naive
from repro.core.repair import CellEdit, edits_from_assignment
from repro.dataset.relation import Relation
from repro.obs import span


def component_projections(
    relation: Relation, attributes: Sequence[str]
) -> Dict[Tuple, List[int]]:
    """Group tuple ids by their projection on *attributes*."""
    indexes = relation.schema.indexes_of(attributes)
    groups: Dict[Tuple, List[int]] = {}
    for tid in relation.tids():
        groups.setdefault(relation.project_indexes(tid, indexes), []).append(tid)
    return groups


def _fd_slices(
    fds: Sequence[FD], attributes: Sequence[str]
) -> List[Tuple[int, ...]]:
    """Positions of each FD's attributes inside the component projection."""
    position = {attr: i for i, attr in enumerate(attributes)}
    return [tuple(position[a] for a in fd.attributes) for fd in fds]


def split_resolved(
    projections: Dict[Tuple, List[int]],
    fds: Sequence[FD],
    attributes: Sequence[str],
    elements_per_fd: Sequence[Sequence[Tuple]],
) -> Tuple[List[Tuple], List[Tuple]]:
    """Partition component projections into (resolved, unresolved).

    A projection is resolved when, for every FD, its induced pattern is
    an element of that FD's chosen independent set.
    """
    slices = _fd_slices(fds, attributes)
    element_sets: List[Set[Tuple]] = [set(e) for e in elements_per_fd]
    resolved: List[Tuple] = []
    unresolved: List[Tuple] = []
    for projection in projections:
        ok = all(
            tuple(projection[i] for i in idx) in members
            for idx, members in zip(slices, element_sets)
        )
        (resolved if ok else unresolved).append(projection)
    return resolved, unresolved


def evaluate_sets(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    elements_per_fd: Sequence[Sequence[Tuple]],
    use_tree: bool = True,
) -> float:
    """Total Eq. (3) cost of repairing with the given independent sets.

    The inner loop of Exact-M's combination scan (Algorithm 3, lines
    13-20): join the sets, then charge every unresolved tuple its
    distance to the nearest target.
    """
    attributes = tuple(component_attributes(fds))
    projections = component_projections(relation, attributes)
    _, unresolved = split_resolved(projections, fds, attributes, elements_per_fd)
    if not unresolved:
        return 0.0
    if use_tree:
        tree = TargetTree(fds, elements_per_fd, model)
        lookup = tree.nearest_target
    else:
        targets = join_targets(fds, elements_per_fd)

        def lookup(values: Tuple):
            return nearest_target_naive(model, targets, values)

    total = 0.0
    for projection in unresolved:
        _, cost = lookup(projection)
        total += cost * len(projections[projection])
    return total


def repair_with_sets(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    elements_per_fd: Sequence[Sequence[Tuple]],
    use_tree: bool = True,
) -> Tuple[List[CellEdit], float, Dict[str, object]]:
    """Materialize the repair induced by the chosen independent sets.

    Returns (cell edits, Eq. (3) cost over the component attributes,
    stats). The input relation is not modified.
    """
    attributes = tuple(component_attributes(fds))
    projections = component_projections(relation, attributes)
    _, unresolved = split_resolved(projections, fds, attributes, elements_per_fd)
    stats: Dict[str, object] = {
        "component_attributes": len(attributes),
        "distinct_projections": len(projections),
        "unresolved_projections": len(unresolved),
    }
    if not unresolved:
        return [], 0.0, stats

    tree: TargetTree | None = None
    with span("targets/build", fds=[fd.name for fd in fds]) as build_span:
        if use_tree:
            tree = TargetTree(fds, elements_per_fd, model)
            lookup = tree.nearest_target
            stats["target_tree_nodes"] = tree.node_count
            build_span.set(kind="tree", nodes=tree.node_count)
        else:
            targets = join_targets(fds, elements_per_fd)
            stats["targets_materialized"] = len(targets)
            build_span.set(kind="materialized", targets=len(targets))

            def lookup(values: Tuple):
                return nearest_target_naive(model, targets, values)

    with span("targets/search", unresolved=len(unresolved)) as search_span:
        tid_to_values: Dict[int, Tuple] = {}
        total = 0.0
        for projection in unresolved:
            target, cost = lookup(projection)
            total += cost * len(projections[projection])
            for tid in projections[projection]:
                tid_to_values[tid] = target.values
        if tree is not None:
            stats["target_tree_nodes_visited"] = tree.nodes_visited
            stats["target_tree_nodes_pruned"] = tree.nodes_pruned
            stats["target_tree_edist_hits"] = tree.edist_hits
            search_span.set(
                searches=tree.searches,
                nodes_visited=tree.nodes_visited,
                nodes_pruned=tree.nodes_pruned,
                edist_hits=tree.edist_hits,
                f_trajectory=[round(f, 6) for f in tree.f_trajectory],
            )
    edits = edits_from_assignment(relation, attributes, tid_to_values)
    return edits, total, stats
