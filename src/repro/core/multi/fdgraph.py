"""The FD graph (Section 4.1).

Vertices are FDs; an edge joins two FDs sharing at least one attribute.
Theorem 5: FDs in different connected components can be repaired
independently and optimally by composing per-component optima — so
every multi-FD algorithm first splits the constraint set into components
and handles each on its own.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.constraints import FD
from repro.utils.unionfind import UnionFind


def fds_share_attributes(a: FD, b: FD) -> bool:
    """Edge predicate of the FD graph."""
    return a.overlaps(b)


def fd_components(fds: Sequence[FD]) -> List[List[FD]]:
    """Connected components of the FD graph, preserving input order.

    >>> from repro.core.constraints import parse_fds
    >>> comps = fd_components(parse_fds(
    ...     ["A -> B", "B -> C", "X -> Y"]))
    >>> [[fd.name for fd in comp] for comp in comps]
    [['A->B', 'B->C'], ['X->Y']]
    """
    fds = list(fds)
    uf = UnionFind(range(len(fds)))
    for i, left in enumerate(fds):
        for j in range(i + 1, len(fds)):
            if fds_share_attributes(left, fds[j]):
                uf.union(i, j)
    components: List[List[FD]] = []
    seen = {}
    for i, fd in enumerate(fds):
        root = uf.find(i)
        if root not in seen:
            seen[root] = len(components)
            components.append([])
        components[seen[root]].append(fd)
    return components


def component_attributes(fds: Sequence[FD]) -> List[str]:
    """Union of the component's attributes, in first-appearance order."""
    seen: List[str] = []
    for fd in fds:
        for attr in fd.attributes:
            if attr not in seen:
                seen.append(attr)
    return seen
