"""Appro-M: the single-FD greedy, extended to multiple FDs (Section 4.3).

Run Greedy-S once per FD to get one expected-best independent set each,
join them into targets, and repair every unresolved tuple to its nearest
target. O(|V|^2 * |Sigma|); no cross-FD awareness during set selection —
that is Greedy-M's job (Section 4.4).

When the per-FD greedy sets happen to admit no joint target (possible on
adversarial inputs; the paper does not discuss the case), the fallback
retries with the *full* pattern sets of the disagreeing FDs removed one
at a time, and ultimately repairs FDs sequentially and independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.graph import ViolationGraph, accumulate_join_counters
from repro.core.multi.base import repair_with_sets
from repro.core.multi.targets import TargetJoinError
from repro.core.repair import RepairResult, apply_edits
from repro.core.single.greedy import greedy_independent_set
from repro.dataset.relation import Relation
from repro.index.registry import AttributeIndexRegistry


def greedy_sets_per_fd(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    join_strategy: str = "filtered",
    seed_dominant: bool = True,
    registry: Optional[AttributeIndexRegistry] = None,
    counters: Optional[Dict[str, int]] = None,
) -> Tuple[List[ViolationGraph], List[List[Tuple]]]:
    """One Greedy-S independent set per FD, as element value-tuples.

    ``seed_dominant`` is on by default (see
    :func:`repro.core.single.greedy.greedy_independent_set`): the literal
    Eq. (7)/(8) greedy occasionally crowns a cheap typo pattern, and the
    joint-target repair amplifies every such flip into a wholesale
    rewrite — precision then swings wildly between runs. Pass ``False``
    for the paper-literal behaviour; ``benchmarks/test_ablation_seeding``
    quantifies the difference.
    """
    if registry is None:
        registry = AttributeIndexRegistry()  # shared across the per-FD joins
    graphs: List[ViolationGraph] = []
    elements: List[List[Tuple]] = []
    for fd in fds:
        graph = ViolationGraph.build(
            relation,
            fd,
            model,
            thresholds[fd],
            join_strategy=join_strategy,
            registry=registry,
        )
        chosen = greedy_independent_set(
            graph, seed_dominant=seed_dominant, counters=counters
        )
        graphs.append(graph)
        elements.append([graph.patterns[v].values for v in sorted(chosen)])
    return graphs, elements


def repair_multi_fd_appro(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    use_tree: bool = True,
    join_strategy: str = "filtered",
) -> RepairResult:
    """Appro-M repair of one FD-graph component."""
    fds = list(fds)
    search_counters: Dict[str, int] = {}
    graphs, elements = greedy_sets_per_fd(
        relation, fds, model, thresholds, join_strategy=join_strategy,
        counters=search_counters,
    )
    try:
        edits, cost, repair_stats = repair_with_sets(
            relation, fds, model, elements, use_tree=use_tree
        )
    except TargetJoinError:
        return _sequential_fallback(relation, fds, model, thresholds, join_strategy)
    repaired = apply_edits(relation, edits)
    stats: Dict[str, object] = {
        "algorithm": "appro-m", **search_counters, **repair_stats
    }
    accumulate_join_counters(stats, graphs)
    return RepairResult(repaired, edits, cost, stats)


def _sequential_fallback(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    join_strategy: str,
) -> RepairResult:
    """Independent, sequential Greedy-S repairs when no joint target exists."""
    from repro.core.single.greedy import repair_single_fd_greedy

    current = relation
    edits = []
    total = 0.0
    for fd in fds:
        result = repair_single_fd_greedy(
            current, fd, model, thresholds[fd], join_strategy=join_strategy
        )
        current = result.relation
        edits.extend(result.edits)
        total += result.cost
    return RepairResult(
        current,
        edits,
        total,
        {"algorithm": "appro-m", "joint_target_fallback": True},
    )
