"""The target tree (Section 5): index + best-first nearest-target search.

Materializing the full join of per-FD independent sets can be
exponential; the target tree shares prefixes instead:

* level ``l_i`` holds the elements of the i-th independent set (sets are
  inserted smallest-first so the root fans out least, Section 5.1);
* a node is attached under every compatible level-(i-1) node — the path
  assignment must agree with the element on shared attributes;
* paths from the root to the deepest level are exactly the targets;
  shorter paths are pruned after construction;
* every node caches the attribute-value sets appearing in its subtree,
  enabling the admissible estimate ``EDIST``.

Search (Algorithm 5) is best-first with
``f(v) = RDIST(v) + EDIST(v)``: the exact cost over attributes fixed by
the path so far, plus a per-attribute lower bound over the values still
reachable below. ``f`` never overestimates, so the first fully expanded
leaf kept as ``C_min`` prunes the rest of the queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.multi.fdgraph import component_attributes
from repro.core.multi.targets import Target, TargetJoinError
from repro.obs import current_tracer

#: max recorded f-values of the first traced search (keeps reports small)
_TRAJECTORY_CAP = 512


class _Node:
    """One target-tree node: an independent-set element plus bookkeeping."""

    __slots__ = (
        "fd",
        "element",
        "parent",
        "children",
        "assignment",
        "subtree_values",
        "edist_memo",
    )

    def __init__(
        self,
        fd: Optional[FD],
        element: Optional[Tuple],
        parent: Optional["_Node"],
    ) -> None:
        self.fd = fd
        self.element = element
        self.parent = parent
        self.children: List["_Node"] = []
        #: attributes fixed by the path from the root down to this node
        self.assignment: Dict[str, object] = dict(parent.assignment) if parent else {}
        if fd is not None and element is not None:
            for attr, value in zip(fd.attributes, element):
                self.assignment[attr] = value
        #: per-attribute values appearing in full-depth descendants
        self.subtree_values: Dict[str, Set] = {}
        #: (attr, query value) -> EDIST term; the subtree value sets are
        #: frozen after construction, so the bound is a pure function of
        #: the query value and can be reused across searches of one tree.
        self.edist_memo: Dict[Tuple[str, object], float] = {}


class TargetTree:
    """Prefix-tree index over the join of per-FD independent sets.

    Parameters
    ----------
    fds:
        The FDs of one connected component of the FD graph.
    elements_per_fd:
        For each FD, the value tuples (in ``fd.attributes`` order) of its
        chosen independent set.
    model:
        Distance oracle used by the search.
    """

    def __init__(
        self,
        fds: Sequence[FD],
        elements_per_fd: Sequence[Sequence[Tuple]],
        model: DistanceModel,
    ) -> None:
        if len(fds) != len(elements_per_fd):
            raise ValueError("one element list per FD is required")
        self.model = model
        #: query/result attribute order — fixed by the *caller's* FD
        #: order, NOT by the internal level order below, so projections
        #: built by the caller line up with targets returned here.
        self.attributes: Tuple[str, ...] = tuple(component_attributes(fds))
        # Smallest sets first: minimal fan-out near the root (Sec. 5.1).
        order = sorted(range(len(fds)), key=lambda i: (len(elements_per_fd[i]), i))
        self.fds: List[FD] = [fds[i] for i in order]
        self._elements: List[List[Tuple]] = [list(elements_per_fd[i]) for i in order]
        self.root = _Node(None, None, None)
        self.node_count = 0
        self._build()
        self.searches = 0
        self.nodes_visited = 0
        self.nodes_pruned = 0
        self.edist_hits = 0
        # Trace-gated f-value trajectory: the popped best-first f values
        # of the *first* search only, capped — enough to plot how fast
        # the bound converges without touching the hot path when off.
        tracer = current_tracer()
        self._record_trajectory = tracer is not None and tracer.enabled
        self.f_trajectory: List[float] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        frontier = [self.root]
        placed: set = set()
        for fd, elements in zip(self.fds, self._elements):
            if not elements:
                raise TargetJoinError(f"empty independent set for {fd.name}")
            # Hash-join on the attributes shared with the levels already
            # placed: bucket the level's elements by their shared-attr
            # values, then each frontier node only meets its bucket —
            # O(|elements| + |frontier| * bucket) instead of the nested
            # all-pairs compatibility scan.
            shared = [
                (pos, attr)
                for pos, attr in enumerate(fd.attributes)
                if attr in placed
            ]
            buckets: Dict[Tuple, List[Tuple]] = {}
            for element in elements:
                key = tuple(element[pos] for pos, _ in shared)
                buckets.setdefault(key, []).append(element)
            next_frontier: List[_Node] = []
            for parent in frontier:
                key = tuple(parent.assignment[attr] for _, attr in shared)
                for element in buckets.get(key, ()):
                    child = _Node(fd, element, parent)
                    parent.children.append(child)
                    next_frontier.append(child)
            if not next_frontier:
                raise TargetJoinError(
                    f"no target survives joining {fd.name}; the independent "
                    "sets disagree on shared attributes"
                )
            placed.update(fd.attributes)
            frontier = next_frontier
        self._prune_incomplete(self.root, depth=0)
        self.node_count = self._collect_subtree_values(self.root)

    def _prune_incomplete(self, node: _Node, depth: int) -> bool:
        """Drop branches that do not reach the last level (non-targets)."""
        if depth == len(self.fds):
            return True
        node.children = [
            child
            for child in node.children
            if self._prune_incomplete(child, depth + 1)
        ]
        return bool(node.children)

    def _collect_subtree_values(self, node: _Node) -> int:
        """Bottom-up attribute-value sets; returns subtree node count."""
        count = 1
        values: Dict[str, Set] = {}
        for child in node.children:
            count += self._collect_subtree_values(child)
            assert child.fd is not None and child.element is not None
            for attr, value in zip(child.fd.attributes, child.element):
                values.setdefault(attr, set()).add(value)
            for attr, child_values in child.subtree_values.items():
                values.setdefault(attr, set()).update(child_values)
        node.subtree_values = values
        return count

    # ------------------------------------------------------------------
    # Enumeration (diagnostics / oracle cross-checks)
    # ------------------------------------------------------------------
    def targets(self) -> List[Target]:
        """Materialize every target (root-to-leaf path)."""
        out: List[Target] = []

        def walk(node: _Node, depth: int) -> None:
            if depth == len(self.fds):
                out.append(
                    Target(
                        self.attributes,
                        tuple(node.assignment[a] for a in self.attributes),
                    )
                )
                return
            for child in node.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return out

    # ------------------------------------------------------------------
    # Best-first search (Algorithm 5)
    # ------------------------------------------------------------------
    def nearest_target(
        self, tuple_values: Sequence
    ) -> Tuple[Target, float]:
        """The target with the minimum Eq. (3) cost to *tuple_values*.

        *tuple_values* follow :attr:`attributes` order. Returns the
        target and the exact repair cost over the component attributes.
        """
        if len(tuple_values) != len(self.attributes):
            raise ValueError(
                f"expected {len(self.attributes)} values, got {len(tuple_values)}"
            )
        self.searches += 1
        query = dict(zip(self.attributes, tuple_values))
        # Per-search memo: each (attribute, candidate value) distance is
        # computed once, however many nodes mention the value. The query
        # value's kernel preparation is built once per attribute and
        # streamed over every candidate (one-vs-many): the RDIST/EDIST
        # legs compare the same query value against many node values.
        memo: Dict[str, Dict[object, float]] = {a: {} for a in self.attributes}
        compare = {
            attr: self.model.prepare_distance(attr, query[attr])
            for attr in self.attributes
        }

        def dist(attr: str, value: object) -> float:
            table = memo[attr]
            hit = table.get(value)
            if hit is None:
                hit = compare[attr](value)
                table[value] = hit
            return hit

        counter = itertools.count()
        heap: List[Tuple[float, int, int, _Node]] = [
            (0.0, next(counter), 0, self.root)
        ]
        c_min = float("inf")
        best: Optional[_Node] = None
        record = self._record_trajectory and self.searches == 1
        trajectory = self.f_trajectory
        while heap:
            f_value, _, depth, node = heapq.heappop(heap)
            if record and len(trajectory) < _TRAJECTORY_CAP:
                trajectory.append(f_value)
            if f_value >= c_min:
                # Everything left in the queue is at least as bad.
                break
            self.nodes_visited += 1
            if depth == len(self.fds):
                c_min = f_value  # leaf f is the exact cost
                best = node
                continue
            for child in node.children:
                f_child = self._f(child, dist, query)
                if f_child < c_min:
                    heapq.heappush(heap, (f_child, next(counter), depth + 1, child))
                else:
                    self.nodes_pruned += 1
        if best is None:
            raise TargetJoinError("target tree is empty")
        return (
            Target(
                self.attributes,
                tuple(best.assignment[a] for a in self.attributes),
            ),
            c_min,
        )

    def _f(self, node: _Node, dist, query: Dict[str, object]) -> float:
        """RDIST + EDIST: exact cost of fixed attributes plus a lower
        bound over attributes still open below *node*.

        EDIST terms depend only on the query value and the node's frozen
        subtree value set, so they are memoized on the node and shared
        across every search of this tree (``edist_hits`` counts reuse);
        a repeated query value skips the whole min-scan.
        """
        rdist = 0.0
        for attr, value in node.assignment.items():
            rdist += dist(attr, value)
        edist = 0.0
        for attr in self.attributes:
            if attr in node.assignment:
                continue
            candidates = node.subtree_values.get(attr)
            if not candidates:
                continue
            key = (attr, query[attr])
            bound = node.edist_memo.get(key)
            if bound is None:
                bound = min(dist(attr, value) for value in candidates)
                node.edist_memo[key] = bound
            else:
                self.edist_hits += 1
            edist += bound
        return rdist + edist
