"""Exact-M: optimal multi-FD repair (Section 4.2, Algorithm 3).

For each FD of a connected component, enumerate its maximal independent
sets with the expansion algorithm, then scan the Cartesian product of
the per-FD set lists: each combination is joined into targets and scored
by the cost of moving every unresolved tuple to its nearest target; the
cheapest combination wins (Theorem 7).

Pruning: before scoring a combination, a lower bound sums, over a
pairwise attribute-disjoint family of the component's FDs (the paper's
``F(phi_j)``, Eq. 10), the cheapest conceivable repair of each excluded
pattern. Disjoint attribute sets cannot double-count cost, so the bound
is sound and a combination whose bound already exceeds the incumbent is
skipped without building its target tree. The scan walks the product as
an explicit-stack DFS so the bound accumulates per FD along the path:
when a *partial* sum already beats the incumbent, the entire subtree of
combinations sharing that prefix is pruned in one step (the bound terms
are nonnegative), instead of re-deriving the skip once per combination.

The bound's per-pattern ingredient (cheapest neighbor) equals the global
cheapest rewrite only under equal LHS/RHS weights, so pruning
auto-disables for skewed weights.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.graph import ViolationGraph, accumulate_join_counters
from repro.core.multi.base import evaluate_sets, repair_with_sets
from repro.core.multi.targets import TargetJoinError
from repro.core.repair import RepairResult, apply_edits
from repro.core.single.mis import (
    ExpansionLimitError,
    ExpansionStats,
    enumerate_maximal_independent_sets,
)
from repro.dataset.relation import Relation
from repro.index.registry import AttributeIndexRegistry
from repro.obs import span


class CombinationLimitError(RuntimeError):
    """Raised when the per-FD set lists multiply beyond the budget."""


def _disjoint_family(fds: Sequence[FD]) -> List[int]:
    """Greedy maximal family of pairwise attribute-disjoint FDs."""
    chosen: List[int] = []
    used: set = set()
    for i, fd in enumerate(fds):
        if not (fd.attribute_set & used):
            chosen.append(i)
            used |= fd.attribute_set
    return chosen


def _solo_lower_bound(graph: ViolationGraph, members: FrozenSet[int]) -> float:
    """Cheapest conceivable repair bill for patterns outside *members*."""
    total = 0.0
    for v in range(len(graph)):
        if v in members:
            continue
        neighbor_costs = graph.neighbors(v).values()
        if neighbor_costs:
            total += graph.multiplicity(v) * min(neighbor_costs)
    return total


def candidate_sets_for_fd(
    graph: ViolationGraph,
    max_nodes: Optional[int],
    max_sets: int,
    stats: ExpansionStats,
) -> Tuple[List[FrozenSet[int]], bool]:
    """Maximal-independent-set candidates for one FD, within budget.

    Returns ``(sets, exhaustive)``. The first choice is full
    enumeration (the literal Algorithm 3). When the expansion tree
    exceeds *max_nodes*, the graph's connected components are
    enumerated separately (their set counts multiply, they never add)
    and the *max_sets* cheapest whole-graph compositions are produced by
    best-first product search over per-component cost-ranked sets —
    the algorithm becomes anytime-optimal and ``exhaustive`` is False.
    """
    try:
        sets = enumerate_maximal_independent_sets(
            graph, prune=False, max_nodes=max_nodes, stats=stats
        )
        if len(sets) <= max_sets:
            return sets, True
        ranked = sorted(sets, key=lambda s: _solo_lower_bound(graph, s))
        return ranked[:max_sets], False
    except ExpansionLimitError:
        return _compose_component_candidates(graph, max_nodes, max_sets, stats), False


def _compose_component_candidates(
    graph: ViolationGraph,
    max_nodes: Optional[int],
    max_sets: int,
    stats: ExpansionStats,
) -> List[FrozenSet[int]]:
    """Best-first composition of per-component maximal independent sets."""
    import heapq

    from repro.core.single.greedy import greedy_independent_set

    per_component: List[List[FrozenSet[int]]] = []
    for component in graph.connected_components():
        if len(component) == 1:
            per_component.append([frozenset(component)])
            continue
        try:
            sets = enumerate_maximal_independent_sets(
                graph, component, prune=False, max_nodes=max_nodes,
                stats=stats,
            )
        except ExpansionLimitError:
            sets = [greedy_independent_set(graph, component)]
        sets.sort(key=lambda s: _component_cost(graph, component, s))
        per_component.append(sets[:max_sets])

    # Best-first search over index vectors, cheapest total cost first.
    costs = [
        [
            _component_cost(graph, comp, s)
            for s in sets
        ]
        for comp, sets in zip(graph.connected_components(), per_component)
    ]
    start = tuple(0 for _ in per_component)
    heap = [(sum(c[0] for c in costs), start)]
    seen = {start}
    out: List[FrozenSet[int]] = []
    while heap and len(out) < max_sets:
        total, vector = heapq.heappop(heap)
        combined: FrozenSet[int] = frozenset().union(
            *(per_component[i][j] for i, j in enumerate(vector))
        )
        out.append(combined)
        for i, j in enumerate(vector):
            if j + 1 < len(per_component[i]):
                nxt = vector[:i] + (j + 1,) + vector[i + 1 :]
                if nxt not in seen:
                    seen.add(nxt)
                    heapq.heappush(
                        heap,
                        (total - costs[i][j] + costs[i][j + 1], nxt),
                    )
    return out


def _component_cost(
    graph: ViolationGraph, component: Sequence[int], members: FrozenSet[int]
) -> float:
    """Grouped repair cost of fixing *component* with *members*."""
    total = 0.0
    member_list = list(members)
    for v in component:
        if v in members:
            continue
        adjacency = graph.neighbors(v)
        pool = [u for u in member_list if u in adjacency] or member_list
        total += graph.multiplicity(v) * min(graph.pair_cost(v, u) for u in pool)
    return total


def repair_multi_fd_exact(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    prune: bool = True,
    use_tree: bool = True,
    max_nodes: Optional[int] = 200_000,
    max_combinations: int = 1_000_000,
    max_sets_per_fd: int = 64,
    join_strategy: str = "filtered",
) -> RepairResult:
    """Optimal joint repair of one FD-graph component.

    *fds* must form a single connected component (the engine splits the
    constraint set beforehand); a single FD degrades to Exact-S
    semantics with the multi-FD repair rule. On instances where full
    per-FD enumeration fits the budgets the result is provably optimal
    (``stats["exhaustive"]`` is True); beyond them the candidate pools
    are cost-ranked and truncated, making the search anytime-optimal.
    """
    fds = list(fds)
    registry = AttributeIndexRegistry()  # shared across the per-FD joins
    graphs = [
        ViolationGraph.build(
            relation,
            fd,
            model,
            thresholds[fd],
            join_strategy=join_strategy,
            registry=registry,
        )
        for fd in fds
    ]
    expansion_stats = ExpansionStats()
    exhaustive = True
    set_lists: List[List[FrozenSet[int]]] = []
    for graph in graphs:
        sets, complete = candidate_sets_for_fd(
            graph,
            max_nodes=max_nodes,
            max_sets=max_sets_per_fd,
            stats=expansion_stats,
        )
        exhaustive = exhaustive and complete
        set_lists.append(sets)

    total_combinations = 1
    for sets in set_lists:
        total_combinations *= max(len(sets), 1)
    if total_combinations > max_combinations:
        raise CombinationLimitError(
            f"{total_combinations} combinations exceed the budget "
            f"of {max_combinations}"
        )

    # Pruning ingredients: per-FD solo bounds and a disjoint family.
    equal_weights = abs(model.weights.lhs - model.weights.rhs) < 1e-12
    do_prune = prune and equal_weights
    family = _disjoint_family(fds) if do_prune else []
    solo_bounds: List[Dict[FrozenSet[int], float]] = []
    if do_prune:
        for graph, sets in zip(graphs, set_lists):
            solo_bounds.append({s: _solo_lower_bound(graph, s) for s in sets})
        # Cheap combinations first: better incumbents appear earlier.
        set_lists = [
            sorted(sets, key=lambda s: solo_bounds[i][s])
            for i, sets in enumerate(set_lists)
        ]

    best_cost = float("inf")
    best_elements: Optional[List[List[Tuple]]] = None
    combos_scored = 0
    combos_pruned = 0
    combos_infeasible = 0
    prune_events = 0
    # Explicit-stack DFS over the product, one FD per depth, visiting
    # leaves in itertools.product order. The family bound accumulates
    # left-to-right along the path (same term order as the old per-combo
    # ``sum``, so the same floats), and solo bounds are nonnegative:
    # once the partial sum at depth d beats the incumbent, *every* leaf
    # below would have been skipped by the per-combo check, so the whole
    # subtree is pruned in O(1) and its leaf count (``suffix_leaves``)
    # booked at once. No leaf in a pruned subtree can lower the
    # incumbent (it would never be scored), so later decisions are
    # unaffected — scored/pruned totals match the flat scan exactly.
    n_fds = len(set_lists)
    suffix_leaves = [1] * (n_fds + 1)
    for i in range(n_fds - 1, -1, -1):
        suffix_leaves[i] = suffix_leaves[i + 1] * len(set_lists[i])
    family_members = set(family)
    in_family = [i in family_members for i in range(n_fds)]
    with span(
        "combinations", total=total_combinations, prune=do_prune
    ) as combo_span:
        if suffix_leaves[0] > 0:
            indices = [0] * n_fds
            running = [0.0] * (n_fds + 1)
            combo: List[FrozenSet[int]] = [frozenset()] * n_fds
            depth = 0
            while depth >= 0:
                if indices[depth] >= len(set_lists[depth]):
                    indices[depth] = 0
                    depth -= 1
                    if depth >= 0:
                        indices[depth] += 1
                    continue
                members = set_lists[depth][indices[depth]]
                partial = running[depth]
                if do_prune and in_family[depth]:
                    partial = partial + solo_bounds[depth][members]
                if (
                    do_prune
                    and best_cost < float("inf")
                    and partial > best_cost
                ):
                    combos_pruned += suffix_leaves[depth + 1]
                    prune_events += 1
                    indices[depth] += 1
                    continue
                combo[depth] = members
                running[depth + 1] = partial
                if depth + 1 < n_fds:
                    depth += 1
                    continue
                elements = [
                    [graphs[i].patterns[v].values for v in sorted(combo[i])]
                    for i in range(len(fds))
                ]
                try:
                    cost = evaluate_sets(
                        relation, fds, model, elements, use_tree=use_tree
                    )
                except TargetJoinError:
                    combos_infeasible += 1
                else:
                    combos_scored += 1
                    if cost < best_cost:
                        best_cost = cost
                        best_elements = elements
                indices[depth] += 1
        combo_span.set(
            scored=combos_scored,
            pruned=combos_pruned,
            infeasible=combos_infeasible,
            prune_events=prune_events,
        )

    if best_elements is None:
        raise TargetJoinError(
            "no feasible combination of independent sets admits a target"
        )
    edits, cost, repair_stats = repair_with_sets(
        relation, fds, model, best_elements, use_tree=use_tree
    )
    repaired = apply_edits(relation, edits)
    stats: Dict[str, object] = {
        "algorithm": "exact-m",
        "exhaustive": exhaustive,
        "combinations_total": total_combinations,
        "combinations_scored": combos_scored,
        "combinations_pruned": combos_pruned,
        "combinations_infeasible": combos_infeasible,
        **expansion_stats.as_dict(),
        **repair_stats,
    }
    accumulate_join_counters(stats, graphs)
    return RepairResult(repaired, edits, cost, stats)
