"""Greedy-M: joint greedy repair across connected FDs (Sec. 4.4, Alg. 4).

Appro-M picks each FD's independent set in isolation; Greedy-M instead
scores every candidate pattern by its **tuple cost** (Eq. 12): if the
pattern joins its FD's set, each conflicting neighbor must be repaired,
and the neighbor's repair target is chosen with *cross-FD
synchronization* — among the consistent alternatives, prefer the one
that eliminates the most FT-violations across the FD and its connected
FDs and triggers the fewest new ones (Example 12), tie-broken by repair
cost. The candidate with the globally smallest tuple cost joins; the
loop ends when every FD's set is maximal. The chosen sets are then
joined into targets and unresolved tuples repaired to their nearest
target, exactly as the other multi-FD algorithms.

Implementation note: Section 4.4 states the repair-target choice must
"eliminate more violations for phi_i and phi_j and trigger less
violations for phi_j", but Eq. (12) itself only charges the phi_i repair
cost. Charging only that cost makes the selection blind to the very
synchronization the section introduces — a pattern that is cheap inside
phi_i's graph but forces neighbor rewrites that violate connected FDs
would still win. We therefore fold the cross-FD effect into the tuple
cost: each triggered (tuple-level) violation in a connected FD is
charged, and each eliminated one credited, at that FD's median edge
cost — the expected price of repairing it later. This is exactly the
trade-off Example 12 walks through, made quantitative.

Candidate scores only improve monotonically in a loose sense, so a lazy
priority queue (re-validate on pop) keeps the O(|Sigma| * |V|^2) bound
practical.
"""

from __future__ import annotations

import heapq
import itertools
from collections import Counter
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.graph import ViolationGraph, accumulate_join_counters
from repro.core.multi.base import repair_with_sets
from repro.core.multi.targets import TargetJoinError
from repro.core.repair import RepairResult, apply_edits
from repro.core.violation import PreparedProjection
from repro.dataset.relation import Relation
from repro.index.registry import AttributeIndexRegistry
from repro.obs import span


class _FDState:
    """Per-FD bookkeeping for the joint greedy loop."""

    def __init__(self, fd: FD, graph: ViolationGraph, relation: Relation) -> None:
        self.fd = fd
        self.graph = graph
        self.chosen: Set[int] = set()
        self.blocked: Set[int] = set()
        #: tuple-level conflict weight of each pattern (sum of neighbor
        #: multiplicities) — "how violated" a pattern currently is.
        self.conflict_weight: List[float] = [
            sum(graph.multiplicity(u) for u in graph.neighbors(v))
            for v in range(len(graph))
        ]
        #: pattern values -> vertex, for novel-pattern lookups
        self.by_values: Dict[Tuple, int] = {
            tuple(p.values): i for i, p in enumerate(graph.patterns)
        }
        #: conflict weight of value tuples not present in the graph
        self._novel_cache: Dict[Tuple, float] = {}
        bound = fd.bind(relation.schema)
        #: tid -> vertex carrying its pattern
        self.vertex_of_tid: Dict[int, int] = {}
        for vertex, pattern in enumerate(graph.patterns):
            for tid in pattern.tids:
                self.vertex_of_tid[tid] = vertex
        self._bound = bound
        self._relation = relation
        #: expected price of repairing one tuple-level violation later
        edge_costs = sorted(
            cost
            for v in range(len(graph))
            for u, cost in graph.neighbors(v).items()
            if u > v
        )
        self.median_edge_cost: float = (
            edge_costs[len(edge_costs) // 2] if edge_costs else 0.5
        )

    def candidates(self) -> List[int]:
        return [
            v
            for v in range(len(self.graph))
            if v not in self.chosen and v not in self.blocked
        ]

    def add(self, vertex: int) -> None:
        self.chosen.add(vertex)
        for neighbor in self.graph.neighbors(vertex):
            if neighbor not in self.chosen:
                self.blocked.add(neighbor)

    def conflicts_of_values(self, values: Tuple, model: DistanceModel, tau: float) -> float:
        """Tuple-level conflict weight of an arbitrary pattern value.

        Existing patterns read the precomputed weight; novel value
        combinations are scored against all patterns (cached), with the
        novel value's kernel preparations built once and streamed over
        the whole pattern list (one-vs-many).
        """
        vertex = self.by_values.get(values)
        if vertex is not None:
            return self.conflict_weight[vertex]
        hit = self._novel_cache.get(values)
        if hit is not None:
            return hit
        prepared = PreparedProjection(model, self.fd, values)
        total = 0.0
        for pattern in self.graph.patterns:
            dist = prepared.distance_within(pattern.values, tau)
            if dist is not None:
                total += pattern.multiplicity
        self._novel_cache[values] = total
        return total


def repair_multi_fd_greedy(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    use_tree: bool = True,
    join_strategy: str = "filtered",
) -> RepairResult:
    """Greedy-M repair of one FD-graph component."""
    fds = list(fds)
    registry = AttributeIndexRegistry()  # shared across the per-FD joins
    states = [
        _FDState(
            fd,
            ViolationGraph.build(
                relation,
                fd,
                model,
                thresholds[fd],
                join_strategy=join_strategy,
                registry=registry,
            ),
            relation,
        )
        for fd in fds
    ]
    #: for each FD index, the connected FDs (sharing attributes)
    linked: List[List[int]] = [
        [j for j, other in enumerate(fds) if j != i and fds[i].overlaps(other)]
        for i in range(len(fds))
    ]
    #: shared attribute positions: (i, j) -> [(pos in fd_i proj, pos in fd_j proj)]
    shared: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for i, j in itertools.permutations(range(len(fds)), 2):
        pairs = [
            (pi, fds[j].attributes.index(attr))
            for pi, attr in enumerate(fds[i].attributes)
            if attr in fds[j].attribute_set
        ]
        if pairs:
            shared[(i, j)] = pairs

    def _cross_fd_delta(i: int, u: int, c: int) -> float:
        """Violation-count change in linked FDs if group *u* moves to *c*.

        Positive = new violations triggered, negative = violations
        eliminated; each counted tuple-level and priced at the linked
        FD's median edge cost.
        """
        state = states[i]
        graph = state.graph
        c_values = graph.patterns[c].values
        delta = 0.0
        for j in linked[i]:
            pairs = shared.get((i, j))
            if not pairs:
                continue
            other = states[j]
            # Group u's tuples by their current FD-j pattern.
            old_patterns = Counter(
                other.vertex_of_tid[tid] for tid in graph.patterns[u].tids
            )
            for old_vertex, count in old_patterns.items():
                old_values = other.graph.patterns[old_vertex].values
                new_values = list(old_values)
                for pos_i, pos_j in pairs:
                    new_values[pos_j] = c_values[pos_i]
                new_values_t = tuple(new_values)
                if new_values_t == old_values:
                    continue
                eliminated = other.conflict_weight[old_vertex]
                triggered = other.conflicts_of_values(
                    new_values_t, model, thresholds[fds[j]]
                )
                delta += count * (triggered - eliminated) * other.median_edge_cost
        return delta

    def best_choice(i: int, u: int, extra: int) -> Tuple[int, float]:
        """Best repair target for pattern *u* of FD *i* (Example 12).

        *extra* is the candidate vertex about to join FD *i*'s set.
        Returns (target vertex, its synchronized repair cost: the Eq. 3
        cost of moving group u there plus the priced cross-FD effect).
        """
        state = states[i]
        graph = state.graph
        members = state.chosen | {extra}
        pool: List[int] = []
        for c in graph.neighbors(u):
            # c must be FT-consistent with the (about to be) chosen set.
            if c in members or not any(
                m in graph.neighbors(c) for m in members
            ):
                pool.append(c)
        if not pool:
            pool = [extra]

        def synchronized_cost(c: int) -> float:
            # The cross-FD delta is clamped at zero: triggered violations
            # are a real future repair bill, but "eliminating" a
            # violation by moving one side away must not earn credit —
            # the other side (the error satellite) is still wrong, and a
            # symmetric credit would reward abandoning large correct
            # groups.
            penalty = max(0.0, _cross_fd_delta(i, u, c))
            return graph.multiplicity(u) * graph.pair_cost(u, c) + penalty

        best = min(pool, key=lambda c: (synchronized_cost(c), c))
        return best, synchronized_cost(best)

    def tuple_cost(i: int, v: int) -> float:
        """Eq. (12): the repair bill a candidate imposes on its neighbors,
        with the cross-FD synchronization folded in (module docstring)."""
        graph = states[i].graph
        total = 0.0
        for u in graph.neighbors(v):
            if u in states[i].chosen:
                continue
            _, cost = best_choice(i, u, v)
            total += cost
        return total

    # tuple_cost(i, v) reads the chosen-set only through best_choice's
    # pool test, which looks at most two hops from each neighbor u of v
    # — i.e. three hops from v. Cross-FD terms (conflict_weight,
    # vertex_of_tid, the monotone novel-pattern memo, median costs) are
    # static for the whole loop. A score therefore stays valid until a
    # vertex within graph distance 3 of it joins the set, so the cache
    # below only drops that ball per addition instead of rescoring the
    # whole candidate pool on every heap revalidation.
    score_cache: Dict[Tuple[int, int], float] = {}
    cache_hits = 0

    def cached_tuple_cost(i: int, v: int) -> float:
        nonlocal cache_hits
        hit = score_cache.get((i, v))
        if hit is not None:
            cache_hits += 1
            return hit
        fresh = tuple_cost(i, v)
        score_cache[(i, v)] = fresh
        return fresh

    def invalidate_ball(i: int, center: int) -> None:
        graph = states[i].graph
        ball = {center}
        frontier = {center}
        for _ in range(3):
            reached = set()
            for u in frontier:
                reached.update(graph.neighbors(u))
            reached -= ball
            ball |= reached
            frontier = reached
        for u in ball:
            score_cache.pop((i, u), None)

    with span("greedy/grow", fds=[fd.name for fd in fds]) as grow_span:
        # Multiplicity-dominant vertices join first (see
        # repro.core.single.greedy.greedy_independent_set for the rationale:
        # a pattern more frequent than everything it conflicts with is the
        # right anchor in all but adversarial cases).
        for state in states:
            graph = state.graph
            for v in sorted(
                range(len(graph)), key=lambda u: (-graph.multiplicity(u), u)
            ):
                if v in state.chosen or v in state.blocked:
                    continue
                rank = (graph.multiplicity(v), -v)
                if all(
                    (graph.multiplicity(u), -u) < rank
                    for u in graph.neighbors(v)
                ):
                    state.add(v)

        # Lazy priority queue over (fd index, vertex) candidates.
        heap: List[Tuple[float, int, int]] = []
        for i, state in enumerate(states):
            for v in state.candidates():
                heapq.heappush(heap, (cached_tuple_cost(i, v), i, v))

        iterations = 0
        revalidations = 0
        while heap:
            score, i, v = heapq.heappop(heap)
            state = states[i]
            if v in state.chosen or v in state.blocked:
                revalidations += 1
                continue
            fresh = cached_tuple_cost(i, v)
            if heap and fresh > heap[0][0] + 1e-12:
                heapq.heappush(heap, (fresh, i, v))
                revalidations += 1
                continue
            state.add(v)
            invalidate_ball(i, v)
            iterations += 1
        grow_span.set(
            iterations=iterations,
            heap_revalidations=revalidations,
            tuple_cost_cache_hits=cache_hits,
        )

    elements = [
        [state.graph.patterns[v].values for v in sorted(state.chosen)]
        for state in states
    ]
    try:
        edits, cost, repair_stats = repair_with_sets(
            relation, fds, model, elements, use_tree=use_tree
        )
    except TargetJoinError:
        from repro.core.multi.appro import _sequential_fallback

        return _sequential_fallback(relation, fds, model, thresholds, join_strategy)
    repaired = apply_edits(relation, edits)
    stats: Dict[str, object] = {
        "algorithm": "greedy-m",
        "iterations": iterations,
        "search_heap_revalidations": revalidations,
        **repair_stats,
    }
    accumulate_join_counters(stats, [state.graph for state in states])
    return RepairResult(repaired, edits, cost, stats)
