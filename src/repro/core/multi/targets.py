"""Joint repair targets (Section 4.1).

Given one independent set per FD of a connected component, a **target**
is a value assignment over the component's attributes obtained by
joining one element from each set, where elements must agree on every
shared attribute ("valid target"). Every unresolved tuple is repaired to
its nearest target, which simultaneously resolves all the component's
constraints (Example 3: t5 is repaired to (New York, Main, Manhattan,
NY), fixing phi2 and phi3 together at minimum cost).

This module provides the naive join and nearest-target scan used as the
reference implementation and test oracle; :mod:`.target_tree` is the
paper's optimized index (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.multi.fdgraph import component_attributes


class TargetJoinError(ValueError):
    """The per-FD independent sets admit no common target."""


@dataclass(frozen=True)
class Target:
    """A full assignment over a component's attributes."""

    attributes: Tuple[str, ...]
    values: Tuple

    def value_of(self, attribute: str) -> object:
        return self.values[self.attributes.index(attribute)]

    def as_mapping(self) -> Dict[str, object]:
        return dict(zip(self.attributes, self.values))


def join_targets(
    fds: Sequence[FD],
    elements_per_fd: Sequence[Sequence[Tuple]],
) -> List[Target]:
    """Naive join of per-FD independent-set elements into targets.

    ``elements_per_fd[i]`` holds value tuples in ``fds[i].attributes``
    order. Raises :class:`TargetJoinError` when no consistent combination
    exists.
    """
    if len(fds) != len(elements_per_fd):
        raise ValueError("one element list per FD is required")
    attributes = tuple(component_attributes(fds))
    partials: List[Dict[str, object]] = [{}]
    for fd, elements in zip(fds, elements_per_fd):
        if not elements:
            raise TargetJoinError(f"empty independent set for {fd.name}")
        extended: List[Dict[str, object]] = []
        for partial in partials:
            for element in elements:
                candidate = _extend(partial, fd, element)
                if candidate is not None:
                    extended.append(candidate)
        if not extended:
            raise TargetJoinError(
                f"no target survives joining {fd.name}; the independent "
                "sets disagree on shared attributes"
            )
        partials = extended
    return [
        Target(attributes, tuple(partial[a] for a in attributes))
        for partial in partials
    ]


def _extend(
    partial: Mapping[str, object], fd: FD, element: Tuple
) -> Optional[Dict[str, object]]:
    """Merge an FD element into a partial assignment, or None on clash."""
    merged = dict(partial)
    for attr, value in zip(fd.attributes, element):
        if attr in merged:
            if merged[attr] != value:
                return None
        else:
            merged[attr] = value
    return merged


def target_cost(
    model: DistanceModel,
    target: Target,
    tuple_values: Sequence,
) -> float:
    """Eq. (3) cost of rewriting a tuple's component projection to *target*."""
    return model.repair_cost(target.attributes, tuple(tuple_values), target.values)


def nearest_target_naive(
    model: DistanceModel,
    targets: Sequence[Target],
    tuple_values: Sequence,
) -> Tuple[Target, float]:
    """Linear scan for the cheapest target (reference for the target tree)."""
    if not targets:
        raise TargetJoinError("no targets to search")
    best: Optional[Target] = None
    best_cost = float("inf")
    for target in targets:
        cost = target_cost(model, target, tuple_values)
        if cost < best_cost:
            best, best_cost = target, cost
    assert best is not None
    return best, best_cost
