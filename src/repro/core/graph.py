"""The violation graph model (Section 3).

Vertices are (grouped) patterns of one FD; an undirected edge joins two
patterns in FT-violation. Each edge carries the **base cost**
``omega(u, v)`` — the unweighted Eq. (3) repair cost of rewriting one
projection into the other. With tuple grouping (Section 3.1) a vertex
stands for all tuples sharing the projection, so the *directed* cost of
repairing group ``u`` to value ``v`` is ``multiplicity(u) * omega(u, v)``
(the paper's directed grouped graph ``G'``).

Repairing with a maximal independent set ``I``:

* members of ``I`` keep their values (mutually FT-consistent),
* every non-member has, by maximality, at least one neighbor in ``I``
  and is rewritten to its cheapest such neighbor.

The search algorithms run on a **bitset view** of the graph
(:class:`ComponentMasks`, handed out by
:meth:`ViolationGraph.subgraph_masks`): the vertices of an induced
subgraph — typically one connected component — are renumbered densely
and every neighborhood becomes one Python big-int mask, so independence
checks, maximality checks, and ``FTC`` intersections collapse to a few
``&``/``|`` word operations instead of per-member set scans (see
``docs/search.md``). Views are cached per vertex order and invalidated
on mutation (:meth:`ViolationGraph.add_edge`).
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import Pattern, group_patterns
from repro.dataset.relation import Cell, Relation
from repro.detect.base import installed_flags
from repro.index.registry import AttributeIndexRegistry
from repro.index.simjoin import SimilarityJoin
from repro.obs import span


def mask_bits(mask: int) -> List[int]:
    """The set bit positions of *mask*, ascending."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


class ComponentMasks:
    """Dense bitset view of the subgraph induced by an ordered vertex list.

    Position ``i`` of every list corresponds to ``order[i]``; bit ``i``
    of every mask likewise. Edges leaving the induced subgraph are
    dropped, so the view of a connected component is self-contained —
    the representation the expansion search and the greedy growth loops
    operate on. Instances are plain-Python (big ints, lists, dicts) and
    therefore pickle with their graph when a component crosses a process
    boundary, though in practice the executor builds graphs — and hence
    masks — worker-locally.
    """

    __slots__ = (
        "order",
        "index_of",
        "adjacency",
        "multiplicities",
        "full_mask",
        "_graph",
        "_cost_rows",
    )

    def __init__(self, graph: "ViolationGraph", order: Sequence[int]) -> None:
        self.order: Tuple[int, ...] = tuple(order)
        self.index_of: Dict[int, int] = {
            v: i for i, v in enumerate(self.order)
        }
        index_of = self.index_of
        adjacency: List[int] = []
        for v in self.order:
            mask = 0
            for u in graph.neighbors(v):
                j = index_of.get(u)
                if j is not None:
                    mask |= 1 << j
            adjacency.append(mask)
        #: per-vertex neighborhood bitmask (induced subgraph only)
        self.adjacency = adjacency
        self.multiplicities: List[int] = [
            graph.multiplicity(v) for v in self.order
        ]
        self.full_mask: int = (1 << len(self.order)) - 1
        self._graph = graph
        self._cost_rows: Optional[List[List[float]]] = None

    def __len__(self) -> int:
        return len(self.order)

    def to_mask(self, vertices: Iterable[int]) -> int:
        """Bitmask of *vertices* (original ids) within this view."""
        mask = 0
        index_of = self.index_of
        for v in vertices:
            mask |= 1 << index_of[v]
        return mask

    def to_vertices(self, mask: int) -> List[int]:
        """Original vertex ids of the set bits, in dense order."""
        order = self.order
        return [order[i] for i in mask_bits(mask)]

    def cost_rows(self) -> List[List[float]]:
        """Dense pairwise Eq. (3) cost matrix over ``order`` (cached).

        ``cost_rows()[i][j] == graph.pair_cost(order[i], order[j])`` —
        the exact same memoized floats the set-based oracles read, laid
        out for O(1) indexed access in the bound computations.
        """
        if self._cost_rows is None:
            graph, order = self._graph, self.order
            self._cost_rows = [
                [graph.pair_cost(v, u) for u in order] for v in order
            ]
        return self._cost_rows


class ViolationGraph:
    """Grouped, weighted violation graph of one FD.

    Vertices are integers (positions into :attr:`patterns`); the pattern
    order is multiplicity-descending, which is also the expansion
    algorithm's recommended access order.
    """

    def __init__(
        self,
        fd: FD,
        model: DistanceModel,
        tau: float,
        patterns: Sequence[Pattern],
        edges: Iterable[Tuple[int, int, float]],
    ) -> None:
        self.fd = fd
        self.model = model
        self.tau = tau
        self.patterns: List[Pattern] = list(patterns)
        #: detection counters of the join that built this graph (empty
        #: when the graph was assembled from precomputed edges)
        self.join_counters: Dict[str, object] = {}
        #: vertex -> names of the detectors that flagged one of its
        #: cells (:meth:`merge_verdicts`); advisory provenance only —
        #: never consulted by the search algorithms
        self.flagged: Dict[int, FrozenSet[str]] = {}
        self._adjacency: List[Dict[int, float]] = [dict() for _ in self.patterns]
        self._pair_cost_cache: Dict[Tuple[int, int], float] = {}
        for u, v, dist in edges:
            base = self._base_cost(u, v)
            self._adjacency[u][v] = base
            self._adjacency[v][u] = base
            # Keep the Eq. (2) distance around for diagnostics.
            self._pair_cost_cache[(min(u, v), max(u, v))] = base
            del dist  # the weighted distance defined the edge; cost drives repair
        # Cached at build time: edge_count sits on hot span/stats paths,
        # and the bitset views are pure functions of the adjacency. Both
        # invalidate together on mutation (add_edge).
        self._edge_count: int = sum(len(adj) for adj in self._adjacency) // 2
        self._masks_cache: Dict[Tuple[int, ...], ComponentMasks] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        relation: Relation,
        fd: FD,
        model: DistanceModel,
        tau: float,
        join_strategy: str = "filtered",
        grouping: bool = True,
        registry: Optional["AttributeIndexRegistry"] = None,
    ) -> "ViolationGraph":
        """Detect FT-violations of *fd* and assemble the graph.

        *grouping* off builds one vertex per tuple (the ungrouped graph
        of Section 3's opening; used by the grouping ablation).
        *registry* shares per-attribute detection indexes across graphs
        of one run (multi-FD repairs build one graph per FD, and FDs
        overlap in attributes); counters stay per-join deltas, so
        summing them over shared-registry graphs remains correct.
        """
        with span("graph", fd=fd.name) as graph_span:
            if grouping:
                patterns = group_patterns(relation, fd)
            else:
                bound = fd.bind(relation.schema)
                patterns = [
                    Pattern(relation.project_indexes(tid, bound.indexes), (tid,))
                    for tid in relation.tids()
                ]
            join = SimilarityJoin(
                fd, model, tau, strategy=join_strategy, registry=registry
            )
            position = {id(p): i for i, p in enumerate(patterns)}
            edges = [
                (position[id(v.left)], position[id(v.right)], v.distance)
                for v in join.join(patterns)
            ]
            graph = cls(fd, model, tau, patterns, edges)
            graph.join_counters = join.counters()
            graph_span.set(
                vertices=len(graph.patterns), edges=graph.edge_count
            )
            # Detector verdicts installed by the executor (config
            # detectors beyond the FD path) annotate vertices before
            # any search sees the graph. With no detectors configured
            # the flag map is None and this is a no-op — the FD-only
            # fast path builds byte-identical graphs.
            flags = installed_flags()
            if flags:
                marked = graph.merge_verdicts(flags)
                if marked:
                    graph_span.set(flagged_patterns=marked)
        return graph

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.patterns)

    @property
    def edge_count(self) -> int:
        """Undirected edge count, cached at build time."""
        return self._edge_count

    def add_edge(self, u: int, v: int, base_cost: Optional[float] = None) -> None:
        """Insert (or reprice) the undirected edge ``{u, v}``.

        *base_cost* defaults to the Eq. (3) cost between the patterns.
        Mutation invalidates the cached edge count bookkeeping and every
        bitset view handed out by :meth:`subgraph_masks`.
        """
        if u == v:
            raise ValueError("self-loops are not allowed in a violation graph")
        base = base_cost if base_cost is not None else self._base_cost(u, v)
        new = v not in self._adjacency[u]
        self._adjacency[u][v] = base
        self._adjacency[v][u] = base
        self._pair_cost_cache[(min(u, v), max(u, v))] = base
        if new:
            self._edge_count += 1
        self._masks_cache.clear()

    def subgraph_masks(
        self, vertices: Optional[Sequence[int]] = None
    ) -> ComponentMasks:
        """The cached :class:`ComponentMasks` view of an induced subgraph.

        *vertices* fixes both membership and the dense renumbering (the
        search algorithms pass their access order); ``None`` means the
        whole graph, where dense index == vertex id.
        """
        order = (
            tuple(vertices)
            if vertices is not None
            else tuple(range(len(self.patterns)))
        )
        hit = self._masks_cache.get(order)
        if hit is None:
            hit = ComponentMasks(self, order)
            self._masks_cache[order] = hit
        return hit

    def merge_verdicts(
        self, flags: Mapping[Cell, AbstractSet[str]]
    ) -> int:
        """Annotate vertices whose cells carry detector flags.

        *flags* maps (tid, attribute) cells to the detector names that
        flagged them (:func:`repro.detect.merge_verdicts`). A vertex is
        marked when any of its pattern's tuples is flagged on any of
        this graph's FD attributes; marks accumulate in
        :attr:`flagged` with union-of-names semantics, so repeated
        merges (or overlapping detectors) compose. Returns the number
        of *newly* marked vertices.

        Annotations are provenance for review and reporting. They are
        deliberately invisible to the search algorithms: the repair a
        graph produces is identical with or without them (the
        byte-identical contract of ``docs/scenarios.md``).
        """
        attributes = self.fd.attributes
        newly = 0
        for vertex, pattern in enumerate(self.patterns):
            names: Set[str] = set()
            for tid in pattern.tids:
                for attribute in attributes:
                    hit = flags.get((tid, attribute))
                    if hit:
                        names.update(hit)
            if not names:
                continue
            before = self.flagged.get(vertex)
            if before is None:
                newly += 1
                self.flagged[vertex] = frozenset(names)
            else:
                self.flagged[vertex] = before | names
        return newly

    def neighbors(self, u: int) -> Dict[int, float]:
        """Adjacent vertices of *u* with base edge costs."""
        return self._adjacency[u]

    def degree(self, u: int) -> int:
        return len(self._adjacency[u])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adjacency[u]

    def multiplicity(self, u: int) -> int:
        return self.patterns[u].multiplicity

    def connected_components(self) -> List[List[int]]:
        """Vertex lists of the connected components (repair units)."""
        seen: Set[int] = set()
        components: List[List[int]] = []
        for start in range(len(self.patterns)):
            if start in seen:
                continue
            stack, component = [start], []
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                for nxt in self._adjacency[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            components.append(sorted(component))
        return components

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------
    def _base_cost(self, u: int, v: int) -> float:
        key = (u, v) if u < v else (v, u)
        hit = self._pair_cost_cache.get(key)
        if hit is None:
            hit = self.model.repair_cost(
                self.fd.attributes,
                self.patterns[u].values,
                self.patterns[v].values,
            )
            self._pair_cost_cache[key] = hit
        return hit

    def pair_cost(self, u: int, v: int) -> float:
        """Base Eq. (3) cost between any two vertices (edge or not)."""
        if u == v:
            return 0.0
        return self._base_cost(u, v)

    def repair_cost(self, u: int, v: int) -> float:
        """Directed grouped cost of rewriting group *u* to *v*'s values."""
        return self.multiplicity(u) * self.pair_cost(u, v)

    # ------------------------------------------------------------------
    # Independent sets
    # ------------------------------------------------------------------
    def is_independent(self, vertices: Iterable[int]) -> bool:
        """No edge joins two members (one ``&`` per member)."""
        masks = self.subgraph_masks()
        adjacency = masks.adjacency
        member_mask = masks.to_mask(vertices)
        remaining = member_mask
        while remaining:
            low = remaining & -remaining
            if adjacency[low.bit_length() - 1] & member_mask:
                return False
            remaining ^= low
        return True

    def is_maximal_independent(self, vertices: Iterable[int]) -> bool:
        """Independent, and no outside vertex can join.

        An outside vertex can join exactly when it misses the *coverage
        mask* — the union of the members and their neighborhoods — so
        maximality is one complement-and-test over the coverage.
        """
        masks = self.subgraph_masks()
        adjacency = masks.adjacency
        member_mask = masks.to_mask(vertices)
        coverage = member_mask
        remaining = member_mask
        while remaining:
            low = remaining & -remaining
            index = low.bit_length() - 1
            if adjacency[index] & member_mask:
                return False  # not independent
            coverage |= adjacency[index]
            remaining ^= low
        return masks.full_mask & ~coverage == 0

    def consistent_subset(self, u: int, vertices: Iterable[int]) -> FrozenSet[int]:
        """``FTC(u, I)``: members of *vertices* not adjacent to *u*."""
        masks = self.subgraph_masks()
        kept = masks.to_mask(vertices) & ~masks.adjacency[u]
        return frozenset(masks.to_vertices(kept))

    def best_repair_target(
        self, u: int, independent_set: Iterable[int]
    ) -> Optional[int]:
        """Cheapest member of *independent_set* to rewrite *u* to.

        Prefers FT-violating neighbors (the paper's repair rule); falls
        back to the globally cheapest member when *u* has no neighbor in
        the set (only possible for non-maximal sets).
        """
        members = list(independent_set)
        if not members:
            return None
        adjacency = self._adjacency[u]
        neighbor_members = [v for v in members if v in adjacency]
        pool = neighbor_members if neighbor_members else members
        return min(pool, key=lambda v: (self.pair_cost(u, v), v))

    def repair_assignment(
        self, independent_set: Iterable[int]
    ) -> Tuple[Dict[int, int], float]:
        """Map every non-member to its repair target; total grouped cost.

        This realizes "repairing based on a maximal independent set"
        (Section 3): members stay, non-members move to their cheapest
        neighbor inside the set.
        """
        member_set = set(independent_set)
        assignment: Dict[int, int] = {}
        total = 0.0
        for u in range(len(self.patterns)):
            if u in member_set:
                continue
            target = self.best_repair_target(u, member_set)
            if target is None:
                raise ValueError("cannot repair against an empty independent set")
            assignment[u] = target
            total += self.repair_cost(u, target)
        return assignment, total


#: the detection counters every strategy reports (see SimilarityJoin);
#: kernel_calls / index_builds / index_reuses are per-join deltas of the
#: shared model and attribute-index registry, so they sum cleanly here
JOIN_COUNTER_KEYS = (
    "possible_pairs",
    "candidates_generated",
    "pairs_examined",
    "pairs_filtered",
    "pairs_verified",
    "kernel_calls",
    "index_builds",
    "index_reuses",
    "distinct_pairs_examined",
    "tuple_fanout",
    "vector_filter_passes",
)


def accumulate_join_counters(
    stats: Dict[str, object], graphs: Iterable["ViolationGraph"]
) -> None:
    """Sum the graphs' detection counters into *stats*, in place.

    Called by every repair algorithm after building its violation
    graphs, so ``result.stats`` (and the CLI ``--stats`` output) report
    how much of the ``P * (P - 1) / 2`` cross product detection
    actually examined. Graphs without counters contribute nothing.
    """
    for graph in graphs:
        for key in JOIN_COUNTER_KEYS:
            value = graph.join_counters.get(key)
            if value is not None:
                stats[key] = int(stats.get(key, 0)) + int(value)
