"""Fault-tolerant violation semantics (Section 2.1).

Two tuples are in an **FT-violation** w.r.t. an FD ``phi: X -> Y`` when

1. their projections on ``X ∪ Y`` differ, and
2. the weighted projection distance (Eq. 2) is at most the threshold
   ``tau``.

A database is **FT-consistent** w.r.t. ``phi`` when no FT-violating pair
exists, and FT-consistent w.r.t. a set of FDs when it is FT-consistent
w.r.t. each.

Tuples sharing the exact projection behave identically, so detection
works on grouped **patterns** (distinct projections with their
multiplicity and member tuple ids) — the paper's tuple-grouping
optimization (Section 3.1), which also shrinks the violation graph.

Classic (equality-based) violations are provided alongside for the
baselines and for Theorem 1 checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.dataset.relation import Relation


@dataclass(frozen=True)
class Pattern:
    """A distinct projection of the relation on an FD's attributes.

    ``values`` are in ``lhs + rhs`` order; ``tids`` are the tuples that
    carry this projection; ``multiplicity == len(tids)``.

    ``ids`` carries the projection as relation value ids when the
    pattern came from :func:`group_patterns` over a dictionary-encoded
    relation (``None`` for hand-built patterns). By the intern
    invariant, equal id tuples mean equal value tuples, so id-keyed
    consumers (the blocker's partitioning) group identically to
    value-keyed ones. Excluded from equality/hashing: two patterns with
    the same values and tids are the same pattern regardless of the
    relation's id assignment.
    """

    values: Tuple
    tids: Tuple[int, ...]
    ids: Optional[Tuple[int, ...]] = field(default=None, compare=False)

    @property
    def multiplicity(self) -> int:
        return len(self.tids)

    def lhs_values(self, fd: FD) -> Tuple:
        return self.values[: len(fd.lhs)]

    def rhs_values(self, fd: FD) -> Tuple:
        return self.values[len(fd.lhs) :]


def group_patterns(relation: Relation, fd: FD) -> List[Pattern]:
    """Group tuples by their projection on *fd*'s attributes.

    Patterns are ordered by descending multiplicity (ties broken by first
    occurrence), the access order Section 3.1 recommends for the
    expansion algorithm: frequent patterns tend to be correct and make
    good early independent sets for pruning.
    """
    bound = fd.bind(relation.schema)
    indexes = bound.indexes
    project_ids = getattr(relation, "project_ids", None)
    if project_ids is not None:
        # Group on value-id tuples: int hashing instead of re-hashing the
        # raw strings of every tuple, and each distinct projection is
        # decoded exactly once. The intern invariant makes this grouping
        # identical to the value-keyed one.
        by_ids: Dict[Tuple[int, ...], List[int]] = {}
        for tid in relation.tids():
            by_ids.setdefault(project_ids(tid, indexes), []).append(tid)
        patterns = [
            Pattern(relation.project_indexes(tids[0], indexes), tuple(tids), key)
            for key, tids in by_ids.items()
        ]
    else:
        by_values: Dict[Tuple, List[int]] = {}
        for tid in relation.tids():
            key = relation.project_indexes(tid, indexes)
            by_values.setdefault(key, []).append(tid)
        patterns = [
            Pattern(values, tuple(tids)) for values, tids in by_values.items()
        ]
    patterns.sort(key=lambda p: (-p.multiplicity, p.tids[0]))
    return patterns


# ----------------------------------------------------------------------
# Distance with sound cheap filters
# ----------------------------------------------------------------------
def _length_lower_bound(model: DistanceModel, fd: FD, v1: Tuple, v2: Tuple) -> float:
    """A cheap lower bound on the weighted projection distance.

    For string attributes ``ned >= |len_a - len_b| / max(len_a, len_b)``;
    for numerics the exact distance is already cheap. Summing the
    weighted per-attribute lower bounds lower-bounds Eq. (2), so a pair
    whose bound exceeds tau can be skipped without any edit-distance
    computation.
    """
    total = 0.0
    n_lhs = len(fd.lhs)
    for pos, attr in enumerate(fd.attributes):
        a, b = v1[pos], v2[pos]
        if a == b:
            continue
        weight = model.weights.lhs if pos < n_lhs else model.weights.rhs
        if isinstance(a, str):
            la, lb = len(a), len(b)
            longest = la if la > lb else lb
            if longest:
                total += weight * abs(la - lb) / longest
        else:
            total += weight * model.attribute_distance(attr, a, b)
    return total


def projection_distance_within(
    model: DistanceModel,
    fd: FD,
    v1: Tuple,
    v2: Tuple,
    tau: float,
    use_filters: bool = True,
) -> Optional[float]:
    """Eq. (2) distance if it is ``<= tau``, else ``None``.

    With *use_filters* the length lower bound rejects hopeless pairs
    before any edit-distance work, and the exact accumulation aborts as
    soon as the running weighted sum exceeds *tau*.
    """
    if use_filters and _length_lower_bound(model, fd, v1, v2) > tau:
        return None
    total = 0.0
    n_lhs = len(fd.lhs)
    for pos, attr in enumerate(fd.attributes):
        a, b = v1[pos], v2[pos]
        if a == b:
            continue
        weight = model.weights.lhs if pos < n_lhs else model.weights.rhs
        total += weight * model.attribute_distance(attr, a, b)
        if total > tau:
            return None
    return total


def projection_distance_within_banded(
    model: DistanceModel,
    fd: FD,
    v1: Tuple,
    v2: Tuple,
    tau: float,
) -> Optional[float]:
    """Eq. (2) distance if ``<= tau``, else ``None`` — banded kernel.

    Semantically identical to :func:`projection_distance_within` (same
    accepted pairs, bit-identical totals): per-attribute distances come
    from :meth:`DistanceModel.attribute_distance_within` with the
    remaining weighted budget, so string attributes run the O(k*n)
    banded Levenshtein instead of the full dynamic program. Used as the
    verify step of the ``indexed`` similarity-join strategy.
    """
    total = 0.0
    n_lhs = len(fd.lhs)
    w_lhs, w_rhs = model.weights.lhs, model.weights.rhs
    for pos, attr in enumerate(fd.attributes):
        a, b = v1[pos], v2[pos]
        if a == b:
            continue
        weight = w_lhs if pos < n_lhs else w_rhs
        if weight <= 0.0:
            continue  # contributes exactly 0.0, like the reference path
        dist = model.attribute_distance_within(attr, a, b, (tau - total) / weight)
        if dist is None:
            return None
        total += weight * dist
        if total > tau:
            return None
    return total


class PreparedProjection:
    """One-vs-many Eq. (2): fix the left projection, stream the rights.

    Wraps :meth:`DistanceModel.prepare_within` /
    :meth:`DistanceModel.prepare_distance` comparers — one per FD
    attribute, each with its Myers PEQ table prepared once — so
    verifying one pattern against a whole candidate list (the shape of
    blocker verification and the greedy conflict loops) pays the
    per-value preparation once instead of per pair. Returned distances,
    accepted pairs, and cache/counter traffic are identical to the
    pairwise :func:`projection_distance_within` /
    :func:`projection_distance_within_banded`.
    """

    __slots__ = (
        "model", "fd", "values", "_weights", "_within", "_exact", "_bound"
    )

    def __init__(self, model: DistanceModel, fd: FD, values: Tuple) -> None:
        self.model = model
        self.fd = fd
        self.values = values
        n_lhs = len(fd.lhs)
        w_lhs, w_rhs = model.weights.lhs, model.weights.rhs
        self._weights = tuple(
            w_lhs if pos < n_lhs else w_rhs for pos in range(len(fd.attributes))
        )
        self._within = tuple(
            model.prepare_within(attr, values[pos])
            for pos, attr in enumerate(fd.attributes)
        )
        self._exact = tuple(
            model.prepare_distance(attr, values[pos])
            for pos, attr in enumerate(fd.attributes)
        )
        # length-bound spec: left lengths resolved once (-1 = non-string)
        self._bound = tuple(
            (
                pos,
                attr,
                self._weights[pos],
                values[pos],
                len(values[pos]) if isinstance(values[pos], str) else -1,
            )
            for pos, attr in enumerate(fd.attributes)
        )

    def length_lower_bound(self, other: Tuple) -> float:
        """Prepared :func:`_length_lower_bound` — identical arithmetic
        (same accumulation order), with the left lengths precomputed."""
        total = 0.0
        model = self.model
        for pos, attr, weight, a, la in self._bound:
            b = other[pos]
            if a == b:
                continue
            if la >= 0:
                lb = len(b)
                longest = la if la > lb else lb
                if longest:
                    total += weight * abs(la - lb) / longest
            else:
                total += weight * model.attribute_distance(attr, a, b)
        return total

    def distance_within_banded(self, other: Tuple, tau: float) -> Optional[float]:
        """One-vs-many :func:`projection_distance_within_banded`."""
        total = 0.0
        values = self.values
        weights = self._weights
        within = self._within
        for pos in range(len(values)):
            a, b = values[pos], other[pos]
            if a == b:
                continue
            weight = weights[pos]
            if weight <= 0.0:
                continue  # contributes exactly 0.0, like the reference path
            dist = within[pos](b, (tau - total) / weight)
            if dist is None:
                return None
            total += weight * dist
            if total > tau:
                return None
        return total

    def distance_within(
        self, other: Tuple, tau: float, use_filters: bool = True
    ) -> Optional[float]:
        """One-vs-many :func:`projection_distance_within`."""
        if use_filters and self.length_lower_bound(other) > tau:
            return None
        total = 0.0
        values = self.values
        weights = self._weights
        exact = self._exact
        for pos in range(len(values)):
            a, b = values[pos], other[pos]
            if a == b:
                continue
            total += weights[pos] * exact[pos](b)
            if total > tau:
                return None
        return total


@dataclass(frozen=True)
class FTViolation:
    """An FT-violating pattern pair with its Eq. (2) distance."""

    left: Pattern
    right: Pattern
    distance: float


def ft_violation_pairs(
    patterns: Sequence[Pattern],
    fd: FD,
    model: DistanceModel,
    tau: float,
    use_filters: bool = True,
) -> List[FTViolation]:
    """All FT-violating pairs among *patterns* (Section 2.1).

    Distinct patterns necessarily differ somewhere, so condition (1) of
    the definition holds by construction; only the distance test remains.
    """
    violations: List[FTViolation] = []
    for i, left in enumerate(patterns):
        for right in patterns[i + 1 :]:
            dist = projection_distance_within(
                model, fd, left.values, right.values, tau, use_filters
            )
            if dist is not None:
                violations.append(FTViolation(left, right, dist))
    return violations


def iter_tuple_violations(
    relation: Relation,
    fd: FD,
    model: DistanceModel,
    tau: float,
) -> Iterator[Tuple[int, int, float]]:
    """Tuple-level FT-violations ``(tid1, tid2, distance)``, tid1 < tid2.

    Expands pattern-level violations back to tuples; useful for
    reporting and for small examples. Quadratic in group sizes — prefer
    the pattern level for algorithmic work.
    """
    patterns = group_patterns(relation, fd)
    for violation in ft_violation_pairs(patterns, fd, model, tau):
        for t1 in violation.left.tids:
            for t2 in violation.right.tids:
                lo, hi = (t1, t2) if t1 < t2 else (t2, t1)
                yield lo, hi, violation.distance


def is_ft_consistent(
    relation: Relation,
    fd: FD,
    model: DistanceModel,
    tau: float,
) -> bool:
    """Whether *relation* is FT-consistent w.r.t. *fd* at threshold *tau*."""
    patterns = group_patterns(relation, fd)
    for i, left in enumerate(patterns):
        for right in patterns[i + 1 :]:
            if (
                projection_distance_within(model, fd, left.values, right.values, tau)
                is not None
            ):
                return False
    return True


def is_ft_consistent_all(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
) -> bool:
    """FT-consistency w.r.t. a whole set of FDs (``D |= Sigma``)."""
    return all(
        is_ft_consistent(relation, fd, model, thresholds[fd]) for fd in fds
    )


# ----------------------------------------------------------------------
# Classic (equality) semantics, for baselines and Theorem 1
# ----------------------------------------------------------------------
def classic_violation_pairs(relation: Relation, fd: FD) -> List[Tuple[int, int]]:
    """Tuple pairs violating *fd* under standard FD semantics.

    ``(t1, t2)`` violates ``X -> Y`` when ``t1[X] == t2[X]`` but
    ``t1[Y] != t2[Y]``.
    """
    bound = fd.bind(relation.schema)
    by_lhs: Dict[Tuple, List[int]] = {}
    for tid in relation.tids():
        key = relation.project_indexes(tid, bound.lhs_indexes)
        by_lhs.setdefault(key, []).append(tid)
    pairs: List[Tuple[int, int]] = []
    for tids in by_lhs.values():
        if len(tids) < 2:
            continue
        rhs = {tid: relation.project_indexes(tid, bound.rhs_indexes) for tid in tids}
        for i, t1 in enumerate(tids):
            for t2 in tids[i + 1 :]:
                if rhs[t1] != rhs[t2]:
                    pairs.append((t1, t2))
    return pairs


def is_consistent(relation: Relation, fd: FD) -> bool:
    """Classic consistency: every LHS group has a single RHS value."""
    bound = fd.bind(relation.schema)
    seen: Dict[Tuple, Tuple] = {}
    for tid in relation.tids():
        lhs = relation.project_indexes(tid, bound.lhs_indexes)
        rhs = relation.project_indexes(tid, bound.rhs_indexes)
        if lhs in seen:
            if seen[lhs] != rhs:
                return False
        else:
            seen[lhs] = rhs
    return True


def is_consistent_all(relation: Relation, fds: Sequence[FD]) -> bool:
    """Classic consistency w.r.t. a set of FDs."""
    return all(is_consistent(relation, fd) for fd in fds)


def subsumes_classic_threshold(fd: FD, model: DistanceModel) -> float:
    """The Theorem 1 bound ``w_r * |Y|``.

    Any ``tau`` at or above this value makes FT-consistency imply classic
    consistency: a classic violation agrees on X (distance 0 there) and
    its RHS contributes at most ``w_r * |Y|``.
    """
    return model.weights.rhs * len(fd.rhs)
