"""Threshold (tau) selection, Section 2.1.

The paper's recipe: compute the pairwise projection distances, sort them
ascending, and when the difference between two adjacent values "suddenly
becomes large", take the smaller value as tau. Erroneous pairs (typos,
single-cell swaps) sit well below legitimate pattern pairs, so the
distribution is bimodal and the largest gap separates the modes.

:func:`suggest_threshold` implements the gap rule on a distance sample;
:func:`suggest_threshold_for_fd` wires it to a relation + FD, sampling
pattern pairs when the instance is large. The paper also notes tau can be
"conservatively decreased" to favour precision — callers do that by
passing ``ceiling``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import group_patterns
from repro.dataset.relation import Relation
from repro.utils.rng import SeedLike, make_rng

#: Sentinel ceiling: cap the gap search at the median positive pairwise
#: distance. Legitimate pattern pairs vastly outnumber error pairs, so
#: the median sits inside the legitimate cluster and the gap found below
#: it separates errors from the legitimate lower tail — the paper's
#: "conservatively decrease tau" guidance, made automatic.
MEDIAN = "median"


def suggest_threshold(
    distances: Sequence[float],
    floor: float = 0.0,
    ceiling: Optional[float] = None,
) -> float:
    """Pick tau at the largest gap of the sorted, positive *distances*.

    Parameters
    ----------
    distances:
        Pairwise projection distances; zeros (identical projections) are
        ignored — identical projections are never violations.
    floor:
        Minimum tau to return; e.g. the Theorem 1 bound ``w_r * |Y|``
        when classic violations must be subsumed.
    ceiling:
        Distances above this value are discarded before looking for the
        gap (they are known-legitimate pairs); also upper-bounds the
        returned tau.

    >>> suggest_threshold([0.05, 0.08, 0.1, 0.62, 0.7])
    0.1
    """
    cleaned = sorted(
        d
        for d in distances
        if d > 0.0 and (ceiling is None or d <= ceiling)
    )
    if not cleaned:
        return floor
    distinct: List[float] = []
    for d in cleaned:
        if not distinct or d > distinct[-1] + 1e-12:
            distinct.append(d)
    if len(distinct) == 1:
        tau = distinct[0]
    else:
        best_gap = -1.0
        tau = distinct[0]
        for lower, upper in zip(distinct, distinct[1:]):
            gap = upper - lower
            if gap > best_gap:
                best_gap = gap
                tau = lower
    tau = max(tau, floor)
    if ceiling is not None:
        tau = min(tau, ceiling)
    return tau


def pairwise_distance_sample(
    relation: Relation,
    fd: FD,
    model: DistanceModel,
    max_pairs: int = 20000,
    rng: SeedLike = None,
) -> List[float]:
    """Projection distances of (a sample of) pattern pairs of *fd*.

    All pairs are used when their count is at most *max_pairs*;
    otherwise a uniform random sample of pairs is drawn.
    """
    patterns = group_patterns(relation, fd)
    n = len(patterns)
    total_pairs = n * (n - 1) // 2
    lhs, rhs = fd.lhs, fd.rhs

    def distance(i: int, j: int) -> float:
        return model.projection_distance(
            lhs, rhs, patterns[i].values, patterns[j].values
        )

    if total_pairs <= max_pairs:
        return [distance(i, j) for i in range(n) for j in range(i + 1, n)]
    random_state = make_rng(rng)
    out: List[float] = []
    for _ in range(max_pairs):
        i = random_state.randrange(n)
        j = random_state.randrange(n - 1)
        if j >= i:
            j += 1
        out.append(distance(i, j))
    return out


CeilingLike = Union[None, float, str]


def _resolve_ceiling(ceiling: CeilingLike, sample: Sequence[float]) -> Optional[float]:
    if ceiling != MEDIAN:
        return ceiling  # type: ignore[return-value]
    positive = sorted(d for d in sample if d > 0)
    if not positive:
        return None
    return positive[len(positive) // 2]


def suggest_threshold_for_fd(
    relation: Relation,
    fd: FD,
    model: DistanceModel,
    floor: float = 0.0,
    ceiling: CeilingLike = MEDIAN,
    max_pairs: int = 20000,
    rng: SeedLike = None,
) -> float:
    """The gap-rule tau for one FD on one relation.

    *ceiling* may be a number, ``None`` (no cap — the paper's literal
    rule), or :data:`MEDIAN` (default; see its docstring).
    """
    sample = pairwise_distance_sample(relation, fd, model, max_pairs, rng)
    return suggest_threshold(
        sample, floor=floor, ceiling=_resolve_ceiling(ceiling, sample)
    )


def suggest_thresholds(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    floor: float = 0.0,
    ceiling: CeilingLike = MEDIAN,
    max_pairs: int = 20000,
    rng: SeedLike = None,
) -> Dict[FD, float]:
    """Per-constraint taus — the paper sets a different tau per FD."""
    random_state = make_rng(rng)
    return {
        fd: suggest_threshold_for_fd(
            relation, fd, model, floor, ceiling, max_pairs, random_state
        )
        for fd in fds
    }
