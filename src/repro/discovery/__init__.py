"""Constraint discovery: mine candidate FDs from the data itself.

The paper assumes the FDs are given; real deployments rarely have them
written down. This package mines approximate functional dependencies
directly from a (possibly dirty) instance so the repair engine has
something to enforce.
"""

from repro.discovery.fds import (
    CandidateFD,
    discover_fds,
    fd_violation_rate,
)

__all__ = ["discover_fds", "CandidateFD", "fd_violation_rate"]
