"""Approximate FD discovery (lattice search with g3 error).

A candidate ``X -> A`` is scored with the classic **g3 error**: the
minimum fraction of tuples that must be removed for the dependency to
hold exactly,

    g3(X -> A) = 1 - (sum over X-groups of the dominant A-count) / N.

On clean data g3 is 0; on dirty data a true dependency has a small
positive g3 (the errors), while a coincidental one scores high. The
search walks LHS combinations level-wise (singletons first) and applies
two classic prunings:

* **minimality** — once ``X -> A`` is accepted, no superset of ``X`` is
  considered for ``A``;
* **key skipping** (optional) — near-unique LHS columns determine
  everything trivially and near-unique RHS columns are determined by
  nothing meaningfully; both are filtered by ``max_uniqueness``.

This is the pragmatic core of TANE-style discovery, sized for the
repair workflow: feed the result to
:class:`~repro.core.engine.Repairer`, ideally after human review.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Sequence, Tuple

from repro.core.constraints import FD
from repro.dataset.relation import Relation


@dataclass(frozen=True)
class CandidateFD:
    """A discovered dependency with its evidence."""

    fd: FD
    violation_rate: float  # g3 error in [0, 1]
    support: int  # tuples in LHS groups of size >= 2 (the evidence base)

    def __str__(self) -> str:
        return (
            f"{self.fd} (g3={self.violation_rate:.4f}, "
            f"support={self.support})"
        )


def fd_violation_rate(relation: Relation, fd: FD) -> float:
    """The g3 error of *fd* on *relation* (0 = holds exactly)."""
    if not len(relation):
        return 0.0
    lhs_idx = relation.schema.indexes_of(fd.lhs)
    rhs_idx = relation.schema.indexes_of(fd.rhs)
    groups: Dict[Tuple, Dict[Tuple, int]] = {}
    for tid in relation.tids():
        lhs = relation.project_indexes(tid, lhs_idx)
        rhs = relation.project_indexes(tid, rhs_idx)
        groups.setdefault(lhs, {})
        groups[lhs][rhs] = groups[lhs].get(rhs, 0) + 1
    kept = sum(max(counts.values()) for counts in groups.values())
    return 1.0 - kept / len(relation)


def _support(relation: Relation, lhs: Sequence[str]) -> int:
    """Tuples that share their LHS value with at least one other tuple."""
    counts = relation.value_counts(list(lhs))
    return sum(c for c in counts.values() if c >= 2)


def discover_fds(
    relation: Relation,
    max_lhs: int = 2,
    max_violation_rate: float = 0.05,
    min_support: int = 2,
    max_uniqueness: float = 0.9,
    attributes: Sequence[str] = (),
) -> List[CandidateFD]:
    """Mine approximate FDs from *relation*.

    Parameters
    ----------
    max_lhs:
        Largest LHS size to consider.
    max_violation_rate:
        Accept candidates with g3 error at most this (0.05 tolerates 5%
        dirty cells — align with your expected error rate).
    min_support:
        Minimum number of tuples inside multi-tuple LHS groups; below it
        the dependency is vacuous (every group a singleton).
    max_uniqueness:
        Columns whose distinct-value ratio exceeds this are skipped as
        LHS singleton *and* RHS (key-like columns yield trivial FDs).
        Multi-attribute LHS combinations are also dropped when their
        combined uniqueness exceeds it.
    attributes:
        Restrict the search to these columns (default: all).

    Returns candidates sorted by (LHS size, violation rate, name) —
    smallest, cleanest first.
    """
    if not 0.0 <= max_violation_rate < 1.0:
        raise ValueError("max_violation_rate must be in [0, 1)")
    if max_lhs < 1:
        raise ValueError("max_lhs must be >= 1")
    names = list(attributes) if attributes else list(relation.schema.names)
    unknown = [a for a in names if a not in relation.schema]
    if unknown:
        raise KeyError(f"unknown attribute(s): {unknown}")
    n = len(relation)
    if n == 0:
        return []

    uniqueness = {
        a: len(relation.active_domain(a)) / n for a in names
    }
    usable = [a for a in names if uniqueness[a] <= max_uniqueness]

    found: List[CandidateFD] = []
    #: RHS attr -> list of accepted LHS sets (for minimality pruning)
    accepted: Dict[str, List[frozenset]] = {}

    for size in range(1, max_lhs + 1):
        for lhs in combinations(usable, size):
            lhs_set = frozenset(lhs)
            support = _support(relation, lhs)
            if support < min_support:
                continue
            if len(relation.value_counts(list(lhs))) / n > max_uniqueness:
                continue  # (near-)key combination: trivial
            for rhs in usable:
                if rhs in lhs_set:
                    continue
                if any(base <= lhs_set for base in accepted.get(rhs, ())):
                    continue  # a subset already determines rhs
                fd = FD(tuple(lhs), (rhs,))
                rate = fd_violation_rate(relation, fd)
                if rate <= max_violation_rate + 1e-12:
                    accepted.setdefault(rhs, []).append(lhs_set)
                    found.append(CandidateFD(fd, rate, support))

    found.sort(key=lambda c: (len(c.fd.lhs), c.violation_rate, c.fd.name))
    return found
