"""The pluggable detector registry.

Detectors register under a short name; configs, the CLI and the
scenario matrix address them by that name::

    from repro.detect import register_detector, Detector

    @register_detector("checksum")
    class ChecksumDetector(Detector):
        name = "checksum"
        def flag(self, relation, context=None):
            ...

    DETECTORS.create("checksum")          # fresh instance
    RepairConfig(detectors=("fd", "checksum"))

:data:`DETECTORS` is the process-wide default registry the built-ins
(:mod:`repro.detect.builtin`) populate on import; isolated registries
(tests, embedding applications) construct their own
:class:`DetectorRegistry`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Type, Union

from repro.detect.base import Detector

#: what a registry entry produces when called with no arguments
DetectorFactory = Callable[[], Detector]


class DetectorRegistry:
    """name -> detector factory, with decorator-style registration."""

    def __init__(self) -> None:
        self._factories: Dict[str, DetectorFactory] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        factory: Optional[DetectorFactory] = None,
    ) -> Union[DetectorFactory, Callable[[DetectorFactory], DetectorFactory]]:
        """Register *factory* under *name*; usable as a decorator.

        The factory is typically a :class:`~repro.detect.base.Detector`
        subclass (instantiated with no arguments per
        :meth:`create` call), but any zero-argument callable returning
        a detector works. Re-registering a taken name raises — shadowing
        a detector silently would make configs ambiguous.
        """
        if not name or not isinstance(name, str):
            raise ValueError("detector name must be a non-empty string")
        if factory is None:

            def decorator(fn: DetectorFactory) -> DetectorFactory:
                self.register(name, fn)
                return fn

            return decorator
        if name in self._factories:
            raise ValueError(
                f"detector {name!r} is already registered; unregister it "
                f"first or pick another name"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        """Remove *name*; unknown names raise ``KeyError``."""
        del self._factories[name]

    # ------------------------------------------------------------------
    def create(self, spec: Union[str, Detector]) -> Detector:
        """A fresh detector for *spec* (a registered name).

        A :class:`Detector` instance passes through unchanged, so call
        sites accept pre-configured detectors and plain names
        uniformly.
        """
        if isinstance(spec, Detector):
            return spec
        factory = self._factories.get(spec)
        if factory is None:
            raise KeyError(
                f"unknown detector {spec!r}; registered: {self.names()}"
            )
        return factory()

    def names(self) -> List[str]:
        """Registered names, sorted."""
        return sorted(self._factories)

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:
        return f"DetectorRegistry({self.names()})"


#: the process-wide default registry (built-ins land here on import)
DETECTORS = DetectorRegistry()


def register_detector(
    name: str,
) -> Callable[[Type[Detector]], Type[Detector]]:
    """Class decorator registering into the default registry."""
    return DETECTORS.register(name)  # type: ignore[return-value]


__all__ = ["DETECTORS", "DetectorFactory", "DetectorRegistry", "register_detector"]
