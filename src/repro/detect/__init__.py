"""Pluggable error detection (``docs/scenarios.md``).

The paper's repair model detects errors through FT-FD violations; real
pipelines meet error *sources* FDs never see — missing-value bursts,
format drift, numeric outliers. This package treats detection as a
signal layer (the HoloClean framing): detectors register under short
names (:data:`DETECTORS`, :func:`register_detector`), each emits a
typed :class:`DetectorVerdict` cell set, and verdicts merge into one
provenance map that annotates the violation graph ahead of search.

Annotations are advisory — the FD cost model still decides every
repair, byte-identically — but they make the suspect surface visible:
``RepairConfig(detectors=("fd", "null", "outlier"))``, CLI
``--detectors``, ``detector_cells_flagged`` counters, and the
scenario-matrix benchmark (``benchmarks/_scenario_matrix.py``) that
scores every detector on every error profile.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, List, Optional, Union

from repro.dataset.relation import Relation
from repro.detect.base import (
    Detector,
    DetectorContext,
    DetectorVerdict,
    FlagMap,
    install_flags,
    installed_flags,
    merge_verdicts,
    pack_flags,
    unpack_flags,
)
from repro.detect.builtin import (
    DEFAULT_NULL_TOKENS,
    FdViolationDetector,
    NullDetector,
    NumericOutlierDetector,
    RegexFormatDetector,
    format_signature,
)
from repro.detect.registry import (
    DETECTORS,
    DetectorRegistry,
    register_detector,
)


def run_detectors(
    relation: Relation,
    detectors: Iterable[Union[str, Detector]],
    context: Optional[DetectorContext] = None,
    registry: Optional[DetectorRegistry] = None,
) -> List[DetectorVerdict]:
    """Run each detector (name or instance) on *relation*, in order.

    Names resolve against *registry* (the default registry when
    omitted). Each verdict is stamped with its wall seconds. The merged
    provenance map is one :func:`merge_verdicts` call away.
    """
    registry = registry if registry is not None else DETECTORS
    verdicts: List[DetectorVerdict] = []
    for spec in detectors:
        detector = registry.create(spec)
        start = time.perf_counter()
        verdict = detector.flag(relation, context)
        seconds = time.perf_counter() - start
        if verdict.seconds == 0.0:
            verdict = replace(verdict, seconds=seconds)
        verdicts.append(verdict)
    return verdicts


__all__ = [
    "DEFAULT_NULL_TOKENS",
    "DETECTORS",
    "Detector",
    "DetectorContext",
    "DetectorRegistry",
    "DetectorVerdict",
    "FdViolationDetector",
    "FlagMap",
    "NullDetector",
    "NumericOutlierDetector",
    "RegexFormatDetector",
    "format_signature",
    "install_flags",
    "installed_flags",
    "merge_verdicts",
    "pack_flags",
    "register_detector",
    "run_detectors",
    "unpack_flags",
]
