"""Typed detector verdicts and the detector contract.

A *detector* inspects one relation and emits a
:class:`DetectorVerdict` — an immutable, typed set of suspect cells
with provenance. Detectors are deliberately decoupled from the repair
model: the paper's FT-FD detection is one detector among several
(:class:`~repro.detect.builtin.FdViolationDetector`), alongside
signal-style detectors in the HoloClean tradition (null tokens, format
conformance, numeric outliers). Verdicts from any mix of detectors
merge into one ``cell -> {detector names}`` map
(:func:`merge_verdicts`) that annotates the violation graph ahead of
search (:meth:`repro.core.graph.ViolationGraph.merge_verdicts`).

The merge is **advisory**: flagged vertices carry provenance for
review, reporting and the scenario matrix, but never change which
repair the cost model selects — the FD-only repair stays byte-identical
whether detectors are configured or not (``docs/scenarios.md``).

:func:`installed_flags` / :func:`install_flags` carry the merged flag
map across the executor boundary on a context variable, so
:meth:`ViolationGraph.build` can consult it without threading a
parameter through every algorithm signature.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dataset.relation import Cell, Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.constraints import FD
    from repro.core.distances import DistanceModel


@dataclass(frozen=True)
class DetectorVerdict:
    """What one detector found on one relation.

    ``cells`` is the set of (tid, attribute) cells the detector flags
    as suspect. Verdicts are frozen values: safe to cache, ship, and
    merge without aliasing surprises.
    """

    detector: str
    relation_size: int
    cells: FrozenSet[Cell]
    #: wall seconds the detector spent (0.0 when not measured)
    seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.cells)

    def __bool__(self) -> bool:
        # An empty verdict is still a verdict: "nothing suspect".
        return True

    @property
    def tids(self) -> Set[int]:
        """Tuples owning at least one flagged cell."""
        return {tid for tid, _ in self.cells}

    def by_attribute(self) -> Dict[str, Set[int]]:
        """attribute -> flagged tuple ids (for per-column review)."""
        out: Dict[str, Set[int]] = {}
        for tid, attr in self.cells:
            out.setdefault(attr, set()).add(tid)
        return out

    def summary(self) -> str:
        return (
            f"{self.detector}: {len(self.cells)} cell(s) flagged over "
            f"{len(self.tids)} tuple(s) of {self.relation_size}"
        )


@dataclass
class DetectorContext:
    """Everything a detector may (but need not) consult.

    Only :class:`~repro.detect.builtin.FdViolationDetector` requires
    FDs; the signal detectors ignore the context entirely. ``model``
    and ``thresholds`` are optional even for the FD detector — it
    derives them from the data when absent, exactly like the engine.
    """

    fds: Sequence["FD"] = ()
    model: Optional["DistanceModel"] = None
    thresholds: Optional[Mapping["FD", float]] = None
    seed: object = None


class Detector:
    """Base class of every registered detector.

    Subclasses set :attr:`name` (the registry key, also stamped on
    verdicts) and implement :meth:`flag`. Detectors must not mutate the
    relation.
    """

    name: str = "detector"

    def flag(
        self, relation: Relation, context: Optional[DetectorContext] = None
    ) -> DetectorVerdict:
        """Inspect *relation* and return the verdict."""
        raise NotImplementedError

    def verdict(
        self, relation: Relation, cells: Iterable[Cell], seconds: float = 0.0
    ) -> DetectorVerdict:
        """Package *cells* as this detector's verdict."""
        return DetectorVerdict(
            detector=self.name,
            relation_size=len(relation),
            cells=frozenset(cells),
            seconds=seconds,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


#: cell -> names of the detectors that flagged it
FlagMap = Dict[Cell, FrozenSet[str]]


def merge_verdicts(verdicts: Iterable[DetectorVerdict]) -> FlagMap:
    """Union verdict cell sets into one provenance map.

    Overlapping verdicts merge their detector names per cell, so a cell
    flagged by both the null and the outlier detector maps to
    ``frozenset({"null", "outlier"})``. Empty verdicts contribute
    nothing; an empty iterable yields an empty map.
    """
    staged: Dict[Cell, Set[str]] = {}
    for verdict in verdicts:
        for cell in verdict.cells:
            staged.setdefault(cell, set()).add(verdict.detector)
    return {cell: frozenset(names) for cell, names in staged.items()}


def pack_flags(flags: Mapping[Cell, AbstractSet[str]]) -> Tuple:
    """A deterministic, picklable encoding of a flag map (for tasks)."""
    return tuple(
        (tid, attr, tuple(sorted(names)))
        for (tid, attr), names in sorted(flags.items())
    )


def unpack_flags(packed: Sequence[Tuple[int, str, Tuple[str, ...]]]) -> FlagMap:
    """Inverse of :func:`pack_flags`."""
    return {
        (tid, attr): frozenset(names) for tid, attr, names in packed
    }


# ----------------------------------------------------------------------
# The ambient flag map (executor -> graph build)
# ----------------------------------------------------------------------
_ACTIVE_FLAGS: ContextVar[Optional[FlagMap]] = ContextVar(
    "repro_detect_flags", default=None
)


@contextmanager
def install_flags(flags: Optional[FlagMap]) -> Iterator[None]:
    """Make *flags* the ambient flag map for the block.

    ``None`` or an empty map installs nothing (graph builds skip the
    merge entirely — the FD-only fast path).
    """
    token = _ACTIVE_FLAGS.set(flags or None)
    try:
        yield
    finally:
        _ACTIVE_FLAGS.reset(token)


def installed_flags() -> Optional[FlagMap]:
    """The ambient flag map, or ``None`` when no detectors are active."""
    return _ACTIVE_FLAGS.get()


__all__ = [
    "Detector",
    "DetectorContext",
    "DetectorVerdict",
    "FlagMap",
    "install_flags",
    "installed_flags",
    "merge_verdicts",
    "pack_flags",
    "unpack_flags",
]
