"""The built-in detectors: null, regex-format, numeric-outlier, FT-FD.

All four work over the dictionary-encoded columnar substrate
(``docs/dataset.md``): per-attribute work is done **once per distinct
value** against the :class:`~repro.dataset.relation.ValueDictionary`,
then fanned out to tuples by scanning the dense id column — the same
decode-once discipline the detection indexes use. Detectors never
mutate the relation.

* :class:`NullDetector` — missing-value tokens (``None``, ``""``,
  ``"n/a"``, ... and float NaN);
* :class:`RegexFormatDetector` — cells that break an explicit
  per-attribute regex, or (with no regexes given) cells whose inferred
  character-class *format signature* deviates from a dominant one;
* :class:`NumericOutlierDetector` — IQR-fence or MAD-score outliers of
  numeric columns;
* :class:`FdViolationDetector` — the paper's FT-FD detection
  (:func:`repro.core.detection.detect`), flagging the minority-side
  (likely-error) tuples of each violation on the FD's attributes.
"""

from __future__ import annotations

import re
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.dataset.relation import NUMERIC, Cell, Relation
from repro.detect.base import Detector, DetectorContext, DetectorVerdict
from repro.detect.registry import register_detector

#: tokens (lower-cased, stripped) the null detector treats as missing
DEFAULT_NULL_TOKENS: FrozenSet[str] = frozenset(
    {"", "na", "n/a", "null", "none", "nil", "-", "?"}
)


def _ids_by_predicate(
    relation: Relation, attribute: str, predicate
) -> Set[int]:
    """Dictionary ids of *attribute* whose decoded value satisfies *predicate*.

    One decode per distinct value; the caller fans out via the id
    column. Dictionaries are append-only and shared across copies, so
    they may hold values no longer present in the column — harmless
    here, the column scan is what assigns cells.
    """
    return {
        vid
        for vid, value in enumerate(relation.dictionary(attribute).values())
        if predicate(value)
    }


def _cells_with_ids(
    relation: Relation, attribute: str, ids: Set[int]
) -> List[Cell]:
    """The (tid, attribute) cells whose stored id is in *ids*."""
    if not ids:
        return []
    return [
        (tid, attribute)
        for tid, vid in enumerate(relation.column(attribute))
        if vid in ids
    ]


@register_detector("null")
class NullDetector(Detector):
    """Flag cells holding a missing-value token.

    A value is null when it is ``None``, a float NaN, or a string whose
    stripped lower-casing is one of *tokens*
    (:data:`DEFAULT_NULL_TOKENS` by default). Works on every attribute,
    string or numeric.
    """

    name = "null"

    def __init__(self, tokens: Optional[Sequence[str]] = None) -> None:
        self.tokens: FrozenSet[str] = (
            frozenset(t.strip().lower() for t in tokens)
            if tokens is not None
            else DEFAULT_NULL_TOKENS
        )

    def _is_null(self, value: object) -> bool:
        if value is None:
            return True
        if isinstance(value, float) and value != value:  # NaN
            return True
        if isinstance(value, str):
            return value.strip().lower() in self.tokens
        return False

    def flag(
        self, relation: Relation, context: Optional[DetectorContext] = None
    ) -> DetectorVerdict:
        cells: List[Cell] = []
        for attribute in relation.schema.names:
            null_ids = _ids_by_predicate(relation, attribute, self._is_null)
            cells.extend(_cells_with_ids(relation, attribute, null_ids))
        return self.verdict(relation, cells)


def format_signature(value: object) -> str:
    """The character-class shape of a value.

    Lower-case letters map to ``a``, upper-case to ``A``, digits to
    ``9``; every other character stands for itself. Two values share a
    signature exactly when they share length and per-position class —
    the granularity at which format drift (case flips, inserted
    separators, padding) is visible while legitimate same-format values
    are not.
    """
    out = []
    for ch in str(value):
        if ch.islower():
            out.append("a")
        elif ch.isupper():
            out.append("A")
        elif ch.isdigit():
            out.append("9")
        else:
            out.append(ch)
    return "".join(out)


@register_detector("regex")
class RegexFormatDetector(Detector):
    """Flag cells that break an attribute's format.

    Two modes:

    * **explicit** — ``patterns`` maps attribute -> regex; a cell is
      flagged when ``re.fullmatch`` fails on its string form. Unknown
      attributes raise at flag time (a misspelled column silently
      matching nothing would hide errors).
    * **inferred** (no patterns) — per string attribute, each distinct
      value's :func:`format_signature` is weighted by its tuple count;
      when one signature carries at least ``min_support`` of the tuples
      (and the column has at least ``min_rows`` rows), every cell with
      a different signature is flagged. Columns with no dominant format
      flag nothing — absence of convention is not an error.
    """

    name = "regex"

    def __init__(
        self,
        patterns: Optional[Mapping[str, str]] = None,
        min_support: float = 0.9,
        min_rows: int = 8,
    ) -> None:
        if not 0.5 < min_support <= 1.0:
            raise ValueError("min_support must be in (0.5, 1.0]")
        self.patterns: Optional[Dict[str, "re.Pattern[str]"]] = (
            {attr: re.compile(expr) for attr, expr in patterns.items()}
            if patterns is not None
            else None
        )
        self.min_support = min_support
        self.min_rows = min_rows

    # ------------------------------------------------------------------
    def _flag_explicit(self, relation: Relation) -> List[Cell]:
        assert self.patterns is not None
        cells: List[Cell] = []
        for attribute, pattern in self.patterns.items():
            if attribute not in relation.schema:
                raise KeyError(
                    f"regex detector: unknown attribute {attribute!r}"
                )
            bad_ids = _ids_by_predicate(
                relation,
                attribute,
                lambda value: pattern.fullmatch(str(value)) is None,
            )
            cells.extend(_cells_with_ids(relation, attribute, bad_ids))
        return cells

    def _flag_inferred(self, relation: Relation) -> List[Cell]:
        if len(relation) < self.min_rows:
            return []
        cells: List[Cell] = []
        for attribute in relation.schema.names:
            if relation.schema.kind_of(attribute) == NUMERIC:
                continue  # float formatting noise is not a format signal
            signatures = [
                format_signature(value)
                for value in relation.dictionary(attribute).values()
            ]
            counts: Dict[str, int] = {}
            column = list(relation.column(attribute))
            for vid in column:
                sig = signatures[vid]
                counts[sig] = counts.get(sig, 0) + 1
            if not counts:
                continue
            dominant, support = max(counts.items(), key=lambda kv: kv[1])
            if support / len(column) < self.min_support:
                continue
            deviant_ids = {
                vid
                for vid in set(column)
                if signatures[vid] != dominant
            }
            cells.extend(_cells_with_ids(relation, attribute, deviant_ids))
        return cells

    def flag(
        self, relation: Relation, context: Optional[DetectorContext] = None
    ) -> DetectorVerdict:
        if self.patterns is not None:
            return self.verdict(relation, self._flag_explicit(relation))
        return self.verdict(relation, self._flag_inferred(relation))


def _quantile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence."""
    position = q * (len(ordered) - 1)
    low = int(position)
    frac = position - low
    if frac == 0.0 or low + 1 >= len(ordered):
        return ordered[low]
    return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac


@register_detector("outlier")
class NumericOutlierDetector(Detector):
    """Flag numeric cells far outside their column's distribution.

    ``method="iqr"`` fences at ``[Q1 - k*IQR, Q3 + k*IQR]`` (default
    ``k=3.0``, the conservative "far out" fence); ``method="mad"``
    flags robust z-scores ``|x - median| / (1.4826 * MAD) > k``
    (default ``k=3.5``). Statistics are tuple-weighted (each row
    counts, not each distinct value), computed over one decode of the
    dictionary. Degenerate columns — fewer than ``min_rows`` values,
    or zero spread (IQR/MAD of 0) — flag nothing: a scale of zero
    cannot separate signal from noise, and guessing would trade silent
    false positives for the zero-division it papers over.
    """

    name = "outlier"

    def __init__(
        self,
        method: str = "iqr",
        k: Optional[float] = None,
        min_rows: int = 16,
    ) -> None:
        if method not in ("iqr", "mad"):
            raise ValueError("method must be 'iqr' or 'mad'")
        self.method = method
        self.k = k if k is not None else (3.0 if method == "iqr" else 3.5)
        self.min_rows = min_rows

    def _outlier_ids(
        self, decoded: Sequence[float], column: Sequence[int]
    ) -> Set[int]:
        values = sorted(decoded[vid] for vid in column)
        if self.method == "iqr":
            q1 = _quantile(values, 0.25)
            q3 = _quantile(values, 0.75)
            spread = q3 - q1
            if spread <= 0.0:
                return set()
            lo, hi = q1 - self.k * spread, q3 + self.k * spread
            return {
                vid for vid in set(column) if not lo <= decoded[vid] <= hi
            }
        median = _quantile(values, 0.5)
        mad = _quantile(sorted(abs(v - median) for v in values), 0.5)
        scale = 1.4826 * mad
        if scale <= 0.0:
            return set()
        return {
            vid
            for vid in set(column)
            if abs(decoded[vid] - median) / scale > self.k
        }

    def flag(
        self, relation: Relation, context: Optional[DetectorContext] = None
    ) -> DetectorVerdict:
        cells: List[Cell] = []
        for attribute in relation.schema.names:
            if relation.schema.kind_of(attribute) != NUMERIC:
                continue
            column = list(relation.column(attribute))
            if len(column) < self.min_rows:
                continue
            decoded = [
                float(value)
                for value in relation.dictionary(attribute).values()
            ]
            outlier_ids = self._outlier_ids(decoded, column)
            cells.extend(_cells_with_ids(relation, attribute, outlier_ids))
        return self.verdict(relation, cells)


@register_detector("fd")
class FdViolationDetector(Detector):
    """The paper's FT-FD detection, wrapped as a registry citizen.

    Runs :func:`repro.core.detection.detect` over the context's FDs and
    flags the **likely-error carriers** — the minority-side tuples of
    each violating pattern pair — on the attributes of the violated FD.
    (Flagging both sides would halve precision for no recall gain: when
    a frequent and a rare pattern collide, the rare one is almost
    always the corruption; see ``classify_violations``.)

    The distance model and per-FD taus fall back to the engine's
    defaults when the context does not supply them.
    """

    name = "fd"

    def flag(
        self, relation: Relation, context: Optional[DetectorContext] = None
    ) -> DetectorVerdict:
        from repro.core.detection import detect
        from repro.core.distances import DistanceModel
        from repro.core.thresholds import suggest_thresholds

        if context is None or not context.fds:
            raise ValueError(
                "FdViolationDetector requires DetectorContext.fds "
                "(the FDs to check)"
            )
        fds = list(context.fds)
        model = context.model or DistanceModel(relation)
        thresholds: Mapping = context.thresholds or suggest_thresholds(
            relation, fds, model, rng=context.seed
        )
        report = detect(relation, fds, model, dict(thresholds))
        cells: Set[Cell] = set()
        for fd in fds:
            for tid in report.likely_errors.get(fd.name, ()):
                for attribute in fd.attributes:
                    cells.add((tid, attribute))
        return self.verdict(relation, cells)


__all__: Tuple[str, ...] = (
    "DEFAULT_NULL_TOKENS",
    "FdViolationDetector",
    "NullDetector",
    "NumericOutlierDetector",
    "RegexFormatDetector",
    "format_signature",
)
