"""Plain-text rendering of experiment results.

The benchmark harness prints each figure as the series the paper plots:
one row per x-value, one column group per system. Everything is plain
fixed-width text so results land legibly in pytest output and logs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.eval.runner import TrialResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A fixed-width table with a header rule."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

    out = [line(headers), "  ".join("-" * w for w in widths)]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_series(
    results: Sequence[TrialResult],
    x_label: str,
    x_of: Callable[[TrialResult], object],
    metric: str = "precision",
) -> str:
    """Render one figure: x-axis values as rows, systems as columns.

    *metric* is ``"precision"``, ``"recall"``, ``"f1"`` or ``"seconds"``.
    """
    systems: List[str] = []
    xs: List[object] = []
    for result in results:
        if result.system not in systems:
            systems.append(result.system)
        x = x_of(result)
        if x not in xs:
            xs.append(x)
    cell: Dict[tuple, str] = {}
    for result in results:
        value = _metric_of(result, metric)
        cell[(x_of(result), result.system)] = value
    rows = [
        [str(x), *(cell.get((x, s), "-") for s in systems)]
        for x in xs
    ]
    return format_table([x_label, *systems], rows)


def _metric_of(result: TrialResult, metric: str) -> str:
    if metric == "precision":
        return f"{result.quality.precision:.3f}"
    if metric == "recall":
        return f"{result.quality.recall:.3f}"
    if metric == "f1":
        return f"{result.quality.f1:.3f}"
    if metric == "seconds":
        return f"{result.seconds:.3f}"
    raise ValueError(f"unknown metric {metric!r}")


def format_by_system(
    results: Sequence[TrialResult], metrics: Sequence[str]
) -> str:
    """Render one row per system with the chosen metrics as columns.

    The natural layout for Table 3 and the ablation reports, where the
    x-axis *is* the system/variant.
    """
    rows = [
        [result.system, *(_metric_of(result, metric) for metric in metrics)]
        for result in results
    ]
    return format_table(["system", *metrics], rows)


def format_chart(
    results: Sequence[TrialResult],
    x_of: Callable[[TrialResult], object],
    metric: str = "precision",
    width: int = 40,
) -> str:
    """A horizontal ASCII bar chart: one bar per (x, system) pair.

    Complements :func:`format_series` for eyeballing shapes directly in
    terminal output; quality metrics scale to [0, 1], timings to the
    observed maximum.
    """
    entries: List[tuple] = []
    for result in results:
        raw = {
            "precision": result.quality.precision,
            "recall": result.quality.recall,
            "f1": result.quality.f1,
            "seconds": result.seconds,
        }.get(metric)
        if raw is None:
            raise ValueError(f"unknown metric {metric!r}")
        entries.append((x_of(result), result.system, raw))
    if not entries:
        return "(no data)"
    scale_max = 1.0 if metric != "seconds" else max(v for *_r, v in entries)
    if scale_max <= 0:
        scale_max = 1.0
    label_width = max(len(f"{x} {system}") for x, system, _ in entries)
    lines = [f"[{metric}]"]
    for x, system, value in entries:
        bar = "#" * max(0, round(width * min(value, scale_max) / scale_max))
        label = f"{x} {system}".ljust(label_width)
        lines.append(f"{label} |{bar} {value:.3f}")
    return "\n".join(lines)
