"""The experiment runner behind every reproduced figure and table.

One :class:`Trial` describes a workload (dataset, size, #FDs, error
rate, seed) plus a system to run; :func:`run_trial` generates the clean
instance, injects noise, runs the system, and scores the repair.
:func:`sweep` varies one knob (the x-axis of a figure) over a list of
systems (the series of a figure).

Systems are addressed by name:

* ours — ``exact-s``, ``greedy-s``, ``exact-m``, ``appro-m``,
  ``greedy-m``, plus ``*-notree`` variants that disable the Section 5
  target tree (the paper's "with/without tree" efficiency series);
* baselines — ``nadeef``, ``urm``, ``llunatic``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import BASELINES
from repro.core.engine import ALGORITHMS, Repairer
from repro.core.repair import RepairResult
from repro.dataset.relation import Cell, Relation
from repro.eval.metrics import (
    DetectionQuality,
    RepairQuality,
    evaluate_detection,
    evaluate_repair,
)
from repro.generator.drift import inject_format_drift
from repro.generator.hosp import generate_hosp, hosp_fds, hosp_thresholds
from repro.generator.noise import (
    NoiseConfig,
    error_cells,
    inject_noise,
    inject_outliers,
)
from repro.generator.nulls import inject_nulls
from repro.generator.skew import SKEW_FDS, generate_skew, skew_thresholds
from repro.generator.tax import generate_tax, tax_fds, tax_thresholds

#: dataset name -> (generator, fds-prefix selector, threshold derivation)
DATASETS: Dict[str, Tuple[Callable, Callable, Callable]] = {
    "hosp": (generate_hosp, hosp_fds, hosp_thresholds),
    "tax": (generate_tax, tax_fds, tax_thresholds),
}

#: every runnable system name
SYSTEMS: Tuple[str, ...] = (
    *ALGORITHMS,
    *(f"{name}-notree" for name in ("exact-m", "appro-m", "greedy-m")),
    *BASELINES,
)


@dataclass(frozen=True)
class Trial:
    """One experimental condition."""

    dataset: str = "hosp"
    n: int = 1000
    n_fds: Optional[int] = None  # None = all nine
    error_rate: float = 0.04
    seed: int = 7
    #: forwarded to the Repairer for exact algorithms
    max_nodes: int = 200_000
    max_combinations: int = 200_000
    fallback: str = "greedy"
    #: worker processes for the component-sharded executor (1 = serial);
    #: output is byte-identical for every value
    n_jobs: int = 1
    #: pre-emptively degrade exact algorithms on components larger than
    #: this many violation-graph patterns (None = never)
    component_budget: Optional[int] = None

    def workload(self) -> Tuple[Relation, Relation, Dict, List, Dict]:
        """(clean, dirty, truth, fds, thresholds) for this condition.

        Following Section 6.1, noise is always injected w.r.t. the
        *full* constraint set of the dataset; ``n_fds`` only restricts
        which FDs the repairer gets. That is what makes Fig. 6's recall
        grow with #FDs: more constraints see more of a fixed error
        population.
        """
        if self.dataset not in DATASETS:
            raise KeyError(f"unknown dataset {self.dataset!r}")
        generate, fds_of, thresholds_of = DATASETS[self.dataset]
        all_fds = fds_of(None)
        fds = fds_of(self.n_fds)
        clean = generate(self.n, rng=self.seed)
        dirty, errors = inject_noise(
            clean,
            all_fds,
            NoiseConfig(error_rate=self.error_rate),
            rng=self.seed + 1,
        )
        return clean, dirty, error_cells(errors), fds, thresholds_of(fds)


@dataclass
class TrialResult:
    """Quality + timing of one system on one condition."""

    system: str
    trial: Trial
    quality: RepairQuality
    seconds: float
    edits: int
    stats: Dict = field(default_factory=dict)
    #: phase name -> wall seconds (model / thresholds / execute), when
    #: the system reports them (engine-built repairers do)
    timings: Dict = field(default_factory=dict)

    @property
    def precision(self) -> float:
        return self.quality.precision

    @property
    def recall(self) -> float:
        return self.quality.recall


def build_system(
    system: str, fds: Sequence, thresholds: Dict, trial: Trial
):
    """Instantiate a runnable (object with .repair) for *system*."""
    use_tree = True
    algorithm = system
    if system.endswith("-notree"):
        algorithm = system[: -len("-notree")]
        use_tree = False
    if algorithm in ALGORITHMS:
        return Repairer(
            fds,
            algorithm=algorithm,
            thresholds=thresholds,
            use_tree=use_tree,
            max_nodes=trial.max_nodes,
            max_combinations=trial.max_combinations,
            fallback=trial.fallback,
            n_jobs=trial.n_jobs,
            component_budget=trial.component_budget,
        )
    if system in BASELINES:
        return BASELINES[system](fds)
    raise KeyError(f"unknown system {system!r}; expected one of {SYSTEMS}")


def run_trial(system: str, trial: Trial) -> TrialResult:
    """Run one system on one condition and score it."""
    _, dirty, truth, fds, thresholds = trial.workload()
    runner = build_system(system, fds, thresholds, trial)
    start = time.perf_counter()
    result: RepairResult = runner.repair(dirty)
    seconds = time.perf_counter() - start
    variables = result.stats.get("variables", set())
    quality = evaluate_repair(result.edits, truth, variables)
    return TrialResult(
        system,
        trial,
        quality,
        seconds,
        len(result.edits),
        dict(result.stats),
        dict(getattr(result, "timings", {}) or {}),
    )


def sweep(
    systems: Sequence[str],
    trials: Sequence[Trial],
) -> List[TrialResult]:
    """Run every system on every condition (a figure's full data)."""
    return [run_trial(system, trial) for trial in trials for system in systems]


# ----------------------------------------------------------------------
# Scenario matrix (docs/scenarios.md)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One error-profile workload of the detector matrix.

    Unlike :class:`Trial` — which always injects the paper's FD noise —
    a scenario pairs a dataset with one *error profile* (FD noise,
    missing-value bursts, format drift, numeric outliers) so each
    registered detector can be scored on the corruption shape it was
    built for and on the shapes it was not.
    """

    name: str
    dataset: str = "hosp"
    #: one of ``fd-noise`` / ``null-bursts`` / ``format-drift`` /
    #: ``outliers``
    profile: str = "fd-noise"
    error_rate: float = 0.04
    seed: int = 7
    #: the registry detector this profile was designed to exercise
    target_detector: str = "fd"

    def workload(
        self, n: int
    ) -> Tuple[Relation, Relation, Dict[Cell, object], List, Dict]:
        """(clean, dirty, truth, fds, thresholds) at *n* tuples."""
        clean, fds, thresholds = _scenario_dataset(self.dataset, n, self.seed)
        inject_rng = self.seed + 1
        if self.profile == "fd-noise":
            dirty, errors = inject_noise(
                clean, fds, NoiseConfig(error_rate=self.error_rate),
                rng=inject_rng,
            )
        elif self.profile == "null-bursts":
            dirty, errors = inject_nulls(
                clean, error_rate=self.error_rate, rng=inject_rng
            )
        elif self.profile == "format-drift":
            dirty, errors = inject_format_drift(
                clean, error_rate=self.error_rate, rng=inject_rng
            )
        elif self.profile == "outliers":
            dirty, errors = inject_outliers(
                clean, error_rate=self.error_rate, rng=inject_rng
            )
        else:
            raise KeyError(f"unknown error profile {self.profile!r}")
        return clean, dirty, error_cells(errors), fds, thresholds


def _scenario_dataset(name: str, n: int, seed: int):
    """(clean relation, fds, thresholds) for a scenario dataset."""
    if name in DATASETS:
        generate, fds_of, thresholds_of = DATASETS[name]
        fds = fds_of(None)
        return generate(n, rng=seed), fds, thresholds_of(fds)
    if name == "skew":
        fds = list(SKEW_FDS)
        return generate_skew(n), fds, skew_thresholds(fds)
    raise KeyError(f"unknown dataset {name!r}")


#: The shipped matrix rows: every error profile on its natural dataset,
#: spanning the three generator families. ``outliers`` rides on HOSP
#: because only HOSP and Tax carry numeric attributes.
SCENARIOS: Tuple[Scenario, ...] = (
    Scenario("fd-noise", dataset="hosp", profile="fd-noise",
             target_detector="fd"),
    Scenario("null-bursts", dataset="tax", profile="null-bursts",
             error_rate=0.02, target_detector="null"),
    Scenario("format-drift", dataset="skew", profile="format-drift",
             error_rate=0.02, target_detector="regex"),
    Scenario("outliers", dataset="hosp", profile="outliers",
             error_rate=0.02, target_detector="outlier"),
)


@dataclass
class ScenarioResult:
    """One (scenario, detector) cell of the matrix."""

    scenario: Scenario
    detector: str
    quality: DetectionQuality
    seconds: float
    flagged: int

    @property
    def is_target(self) -> bool:
        """True when this detector is the scenario's designed match."""
        return self.detector == self.scenario.target_detector


def run_scenario(
    scenario: Scenario,
    detectors: Sequence[str],
    n: int = 1000,
) -> List[ScenarioResult]:
    """Score every *detector* on one scenario's dirty instance."""
    from repro.detect import DetectorContext, run_detectors

    _, dirty, truth, fds, thresholds = scenario.workload(n)
    context = DetectorContext(
        fds=tuple(fds), thresholds=thresholds, seed=scenario.seed
    )
    results: List[ScenarioResult] = []
    for verdict in run_detectors(dirty, detectors, context):
        quality = evaluate_detection(verdict.cells, truth)
        results.append(
            ScenarioResult(
                scenario,
                verdict.detector,
                quality,
                verdict.seconds,
                len(verdict.cells),
            )
        )
    return results


def scenario_matrix(
    detectors: Sequence[str] = ("fd", "null", "regex", "outlier"),
    scenarios: Sequence[Scenario] = SCENARIOS,
    n: int = 1000,
) -> List[ScenarioResult]:
    """The full detectors x scenarios grid, row-major by scenario."""
    results: List[ScenarioResult] = []
    for scenario in scenarios:
        results.extend(run_scenario(scenario, detectors, n=n))
    return results
