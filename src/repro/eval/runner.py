"""The experiment runner behind every reproduced figure and table.

One :class:`Trial` describes a workload (dataset, size, #FDs, error
rate, seed) plus a system to run; :func:`run_trial` generates the clean
instance, injects noise, runs the system, and scores the repair.
:func:`sweep` varies one knob (the x-axis of a figure) over a list of
systems (the series of a figure).

Systems are addressed by name:

* ours — ``exact-s``, ``greedy-s``, ``exact-m``, ``appro-m``,
  ``greedy-m``, plus ``*-notree`` variants that disable the Section 5
  target tree (the paper's "with/without tree" efficiency series);
* baselines — ``nadeef``, ``urm``, ``llunatic``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import BASELINES
from repro.core.engine import ALGORITHMS, Repairer
from repro.core.repair import RepairResult
from repro.dataset.relation import Relation
from repro.eval.metrics import RepairQuality, evaluate_repair
from repro.generator.hosp import generate_hosp, hosp_fds, hosp_thresholds
from repro.generator.noise import NoiseConfig, error_cells, inject_noise
from repro.generator.tax import generate_tax, tax_fds, tax_thresholds

#: dataset name -> (generator, fds-prefix selector, threshold derivation)
DATASETS: Dict[str, Tuple[Callable, Callable, Callable]] = {
    "hosp": (generate_hosp, hosp_fds, hosp_thresholds),
    "tax": (generate_tax, tax_fds, tax_thresholds),
}

#: every runnable system name
SYSTEMS: Tuple[str, ...] = (
    *ALGORITHMS,
    *(f"{name}-notree" for name in ("exact-m", "appro-m", "greedy-m")),
    *BASELINES,
)


@dataclass(frozen=True)
class Trial:
    """One experimental condition."""

    dataset: str = "hosp"
    n: int = 1000
    n_fds: Optional[int] = None  # None = all nine
    error_rate: float = 0.04
    seed: int = 7
    #: forwarded to the Repairer for exact algorithms
    max_nodes: int = 200_000
    max_combinations: int = 200_000
    fallback: str = "greedy"
    #: worker processes for the component-sharded executor (1 = serial);
    #: output is byte-identical for every value
    n_jobs: int = 1
    #: pre-emptively degrade exact algorithms on components larger than
    #: this many violation-graph patterns (None = never)
    component_budget: Optional[int] = None

    def workload(self) -> Tuple[Relation, Relation, Dict, List, Dict]:
        """(clean, dirty, truth, fds, thresholds) for this condition.

        Following Section 6.1, noise is always injected w.r.t. the
        *full* constraint set of the dataset; ``n_fds`` only restricts
        which FDs the repairer gets. That is what makes Fig. 6's recall
        grow with #FDs: more constraints see more of a fixed error
        population.
        """
        if self.dataset not in DATASETS:
            raise KeyError(f"unknown dataset {self.dataset!r}")
        generate, fds_of, thresholds_of = DATASETS[self.dataset]
        all_fds = fds_of(None)
        fds = fds_of(self.n_fds)
        clean = generate(self.n, rng=self.seed)
        dirty, errors = inject_noise(
            clean,
            all_fds,
            NoiseConfig(error_rate=self.error_rate),
            rng=self.seed + 1,
        )
        return clean, dirty, error_cells(errors), fds, thresholds_of(fds)


@dataclass
class TrialResult:
    """Quality + timing of one system on one condition."""

    system: str
    trial: Trial
    quality: RepairQuality
    seconds: float
    edits: int
    stats: Dict = field(default_factory=dict)
    #: phase name -> wall seconds (model / thresholds / execute), when
    #: the system reports them (engine-built repairers do)
    timings: Dict = field(default_factory=dict)

    @property
    def precision(self) -> float:
        return self.quality.precision

    @property
    def recall(self) -> float:
        return self.quality.recall


def build_system(
    system: str, fds: Sequence, thresholds: Dict, trial: Trial
):
    """Instantiate a runnable (object with .repair) for *system*."""
    use_tree = True
    algorithm = system
    if system.endswith("-notree"):
        algorithm = system[: -len("-notree")]
        use_tree = False
    if algorithm in ALGORITHMS:
        return Repairer(
            fds,
            algorithm=algorithm,
            thresholds=thresholds,
            use_tree=use_tree,
            max_nodes=trial.max_nodes,
            max_combinations=trial.max_combinations,
            fallback=trial.fallback,
            n_jobs=trial.n_jobs,
            component_budget=trial.component_budget,
        )
    if system in BASELINES:
        return BASELINES[system](fds)
    raise KeyError(f"unknown system {system!r}; expected one of {SYSTEMS}")


def run_trial(system: str, trial: Trial) -> TrialResult:
    """Run one system on one condition and score it."""
    _, dirty, truth, fds, thresholds = trial.workload()
    runner = build_system(system, fds, thresholds, trial)
    start = time.perf_counter()
    result: RepairResult = runner.repair(dirty)
    seconds = time.perf_counter() - start
    variables = result.stats.get("variables", set())
    quality = evaluate_repair(result.edits, truth, variables)
    return TrialResult(
        system,
        trial,
        quality,
        seconds,
        len(result.edits),
        dict(result.stats),
        dict(getattr(result, "timings", {}) or {}),
    )


def sweep(
    systems: Sequence[str],
    trials: Sequence[Trial],
) -> List[TrialResult]:
    """Run every system on every condition (a figure's full data)."""
    return [run_trial(system, trial) for trial in trials for system in systems]
