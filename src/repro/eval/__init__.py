"""Experiment harness: quality metrics, trial runner, text reporting."""

from repro.eval.explain import RepairReport, repair_report
from repro.eval.review import RankedEdit, ReviewQueue, rank_repairs
from repro.eval.metrics import (
    DetectionQuality,
    RepairQuality,
    evaluate_detection,
    evaluate_repair,
)
from repro.eval.runner import (
    DATASETS,
    SCENARIOS,
    SYSTEMS,
    Scenario,
    ScenarioResult,
    Trial,
    TrialResult,
    run_scenario,
    run_trial,
    scenario_matrix,
    sweep,
)
from repro.eval.reporting import format_by_system, format_chart, format_series, format_table

__all__ = [
    "RepairQuality",
    "RepairReport",
    "repair_report",
    "RankedEdit",
    "ReviewQueue",
    "rank_repairs",
    "evaluate_repair",
    "evaluate_detection",
    "DetectionQuality",
    "Trial",
    "TrialResult",
    "run_trial",
    "sweep",
    "Scenario",
    "ScenarioResult",
    "SCENARIOS",
    "run_scenario",
    "scenario_matrix",
    "DATASETS",
    "SYSTEMS",
    "format_table",
    "format_by_system",
    "format_chart",
    "format_series",
]
