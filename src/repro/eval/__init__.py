"""Experiment harness: quality metrics, trial runner, text reporting."""

from repro.eval.explain import RepairReport, repair_report
from repro.eval.review import RankedEdit, ReviewQueue, rank_repairs
from repro.eval.metrics import RepairQuality, evaluate_repair
from repro.eval.runner import (
    DATASETS,
    SYSTEMS,
    Trial,
    TrialResult,
    run_trial,
    sweep,
)
from repro.eval.reporting import format_by_system, format_chart, format_series, format_table

__all__ = [
    "RepairQuality",
    "RepairReport",
    "repair_report",
    "RankedEdit",
    "ReviewQueue",
    "rank_repairs",
    "evaluate_repair",
    "Trial",
    "TrialResult",
    "run_trial",
    "sweep",
    "DATASETS",
    "SYSTEMS",
    "format_table",
    "format_by_system",
    "format_chart",
    "format_series",
]
