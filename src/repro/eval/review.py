"""Confidence-ranked review of automatic repairs.

The paper positions automatic repair as the fallback "when users do not
have enough capacity" — which in practice means users review *some*
repairs. This module ranks a repair's edits by confidence so the scarce
reviewing budget goes to the doubtful ones, and applies only approved
edits.

Confidence heuristic: an edit that moves a value a *short* distance onto
a *heavily supported* target (many tuples carry it) is a textbook typo
fix; a long-distance rewrite onto a thinly supported value deserves
eyes. Formally::

    confidence(edit) = (1 - dist(old, new)) * support_weight

with ``support_weight = support / (support + 1)`` where *support* is
how many tuples carried the target value before the repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.distances import DistanceModel
from repro.core.repair import CellEdit, RepairResult, apply_edits
from repro.dataset.relation import Cell, Relation


@dataclass(frozen=True)
class RankedEdit:
    """An edit with its review metadata."""

    edit: CellEdit
    confidence: float  # in [0, 1]; higher = safer to auto-apply
    distance: float  # how far the value moved
    support: int  # tuples carrying the target value pre-repair

    def __str__(self) -> str:
        return f"{self.edit}  (confidence {self.confidence:.2f})"


def rank_repairs(
    original: Relation,
    result: RepairResult,
    model: Optional[DistanceModel] = None,
) -> List[RankedEdit]:
    """Rank *result*'s edits, least confident first (review order)."""
    model = model or DistanceModel(original)
    support_index: Dict[Tuple[str, object], int] = {}
    for attr in original.schema.names:
        for tid in original.tids():
            key = (attr, original.value(tid, attr))
            support_index[key] = support_index.get(key, 0) + 1

    ranked: List[RankedEdit] = []
    for edit in result.edits:
        distance = model.attribute_distance(edit.attribute, edit.old, edit.new)
        support = support_index.get((edit.attribute, edit.new), 0)
        confidence = (1.0 - distance) * (support / (support + 1.0))
        ranked.append(RankedEdit(edit, confidence, distance, support))
    ranked.sort(key=lambda r: (r.confidence, str(r.edit.cell)))
    return ranked


class ReviewQueue:
    """Drive a human review session over a repair.

    Typical use::

        queue = ReviewQueue(original, result)
        queue.auto_approve(min_confidence=0.8)   # trust the easy ones
        for item in queue.pending():             # review the rest
            queue.approve(item.edit.cell)        # or queue.reject(...)
        cleaned = queue.apply()
    """

    def __init__(
        self,
        original: Relation,
        result: RepairResult,
        model: Optional[DistanceModel] = None,
    ) -> None:
        self._original = original
        self._ranked = rank_repairs(original, result, model)
        self._by_cell: Dict[Cell, RankedEdit] = {
            item.edit.cell: item for item in self._ranked
        }
        self._approved: Set[Cell] = set()
        self._rejected: Set[Cell] = set()

    # ------------------------------------------------------------------
    def pending(self) -> List[RankedEdit]:
        """Undecided edits, least confident first."""
        return [
            item
            for item in self._ranked
            if item.edit.cell not in self._approved
            and item.edit.cell not in self._rejected
        ]

    def approve(self, cell: Cell) -> None:
        """Mark *cell*'s edit as approved."""
        self._require_known(cell)
        self._rejected.discard(cell)
        self._approved.add(cell)

    def reject(self, cell: Cell) -> None:
        """Mark *cell*'s edit as rejected (the old value stays)."""
        self._require_known(cell)
        self._approved.discard(cell)
        self._rejected.add(cell)

    def auto_approve(self, min_confidence: float = 0.8) -> int:
        """Approve every undecided edit at or above *min_confidence*."""
        count = 0
        for item in self.pending():
            if item.confidence >= min_confidence:
                self.approve(item.edit.cell)
                count += 1
        return count

    def _require_known(self, cell: Cell) -> None:
        if cell not in self._by_cell:
            raise KeyError(f"no edit for cell {cell}")

    # ------------------------------------------------------------------
    @property
    def approved_count(self) -> int:
        return len(self._approved)

    @property
    def rejected_count(self) -> int:
        return len(self._rejected)

    def apply(self) -> Relation:
        """The original relation with only the approved edits applied."""
        edits = [
            self._by_cell[cell].edit
            for cell in self._approved
        ]
        edits.sort(key=lambda e: (e.tid, e.attribute))
        return apply_edits(self._original, edits)
