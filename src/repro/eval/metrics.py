"""Repair-quality metrics (Section 6.1).

* **precision** — correctly repaired cells / all repaired cells;
* **recall** — correctly repaired cells / all erroneous cells;
* **F1** — their harmonic mean.

A repair of cell c is *correct* when it restores the injected ground
truth. Cells repaired to a Llunatic variable earn 0.5 when they were
truly erroneous (the paper's "Metric 0.5" for partial repairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Set

from repro.core.repair import CellEdit
from repro.dataset.relation import Cell


@dataclass(frozen=True)
class RepairQuality:
    """Precision / recall / F1 plus the raw counts behind them."""

    precision: float
    recall: float
    f1: float
    repaired_cells: int
    credit: float
    true_errors: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"({self.repaired_cells} repairs, {self.true_errors} errors)"
        )


def evaluate_repair(
    edits: Iterable[CellEdit],
    truth: Mapping[Cell, object],
    variables: Optional[Set[Cell]] = None,
) -> RepairQuality:
    """Score a repair against the injected-error ground truth.

    Parameters
    ----------
    edits:
        The cell rewrites the system performed.
    truth:
        cell -> clean value, for every injected error.
    variables:
        Cells the system repaired to a variable/placeholder rather than
        a constant (Llunatic's lluns); each earns 0.5 when the cell was
        truly erroneous.
    """
    variables = variables or set()
    edits = list(edits)
    credit = 0.0
    for edit in edits:
        cell = edit.cell
        if cell in variables:
            if cell in truth:
                credit += 0.5
        elif cell in truth and _same(truth[cell], edit.new):
            credit += 1.0
    repaired = len(edits)
    true_errors = len(truth)
    precision = credit / repaired if repaired else 1.0
    recall = credit / true_errors if true_errors else 1.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return RepairQuality(precision, recall, f1, repaired, credit, true_errors)


@dataclass(frozen=True)
class DetectionQuality:
    """Cell-exact precision / recall / F1 of an error *detector*.

    Unlike :class:`RepairQuality` there is no partial credit: a flagged
    cell either is an injected error or it is not.
    """

    precision: float
    recall: float
    f1: float
    flagged_cells: int
    true_positives: int
    true_errors: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} F1={self.f1:.3f} "
            f"({self.flagged_cells} flagged, {self.true_errors} errors)"
        )


def evaluate_detection(
    flagged: Iterable[Cell],
    truth: Mapping[Cell, object],
) -> DetectionQuality:
    """Score a detector's flagged cell set against the injected errors.

    Zero-division corners follow :func:`evaluate_repair`'s conventions:
    a detector that flags nothing has precision 1.0 (it made no false
    claims), a clean relation yields recall 1.0, and F1 is 0.0 when
    precision and recall are both 0.
    """
    flagged_set = set(flagged)
    true_positives = sum(1 for cell in flagged_set if cell in truth)
    flagged_cells = len(flagged_set)
    true_errors = len(truth)
    precision = true_positives / flagged_cells if flagged_cells else 1.0
    recall = true_positives / true_errors if true_errors else 1.0
    if precision + recall > 0:
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0
    return DetectionQuality(
        precision, recall, f1, flagged_cells, true_positives, true_errors
    )


def _same(a: object, b: object) -> bool:
    """Value equality tolerant of float coercion (3 vs 3.0)."""
    if a == b:
        return True
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return False
