"""Repair reports: summarize what a repair did and what it achieved.

Automatic repair is only trustworthy when it is reviewable. This module
turns a :class:`~repro.core.repair.RepairResult` into a structured
report — per-attribute edit counts, the most common value rewrites,
touched tuples, and (when a distance model and thresholds are supplied)
the FT-violation counts before and after per constraint — plus a plain
text rendering for logs and consoles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.repair import RepairResult
from repro.core.violation import ft_violation_pairs, group_patterns
from repro.dataset.relation import Relation
from repro.eval.reporting import format_table


@dataclass
class RepairReport:
    """Structured summary of one repair run."""

    total_edits: int
    total_cost: float
    tuples_touched: int
    edits_by_attribute: Dict[str, int]
    top_rewrites: List[Tuple[str, object, object, int]]
    #: fd name -> (violations before, violations after); empty when no
    #: model/thresholds were provided
    violations: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def render(self) -> str:
        """Fixed-width text rendering."""
        lines = [
            f"{self.total_edits} cell edit(s) across "
            f"{self.tuples_touched} tuple(s), repair cost "
            f"{self.total_cost:.4f}",
            "",
            "Edits by attribute:",
            format_table(
                ["attribute", "edits"],
                [
                    [attr, str(count)]
                    for attr, count in sorted(
                        self.edits_by_attribute.items(),
                        key=lambda kv: (-kv[1], kv[0]),
                    )
                ],
            ),
        ]
        if self.top_rewrites:
            lines += [
                "",
                "Most common rewrites:",
                format_table(
                    ["attribute", "from", "to", "count"],
                    [
                        [attr, repr(old), repr(new), str(count)]
                        for attr, old, new, count in self.top_rewrites
                    ],
                ),
            ]
        if self.violations:
            lines += [
                "",
                "FT-violations (pattern pairs) before -> after:",
                format_table(
                    ["constraint", "before", "after"],
                    [
                        [name, str(before), str(after)]
                        for name, (before, after) in self.violations.items()
                    ],
                ),
            ]
        return "\n".join(lines)


def repair_report(
    original: Relation,
    result: RepairResult,
    fds: Sequence[FD] = (),
    model: Optional[DistanceModel] = None,
    thresholds: Optional[Dict[FD, float]] = None,
    top: int = 10,
) -> RepairReport:
    """Build a :class:`RepairReport` for *result* applied to *original*.

    Pass *fds*, *model* and *thresholds* to include before/after
    violation counts (the model should be built on the *original*
    relation so distances are comparable).
    """
    by_attribute = Counter(edit.attribute for edit in result.edits)
    rewrites = Counter(
        (edit.attribute, edit.old, edit.new) for edit in result.edits
    )
    top_rewrites = [
        (attr, old, new, count)
        for (attr, old, new), count in rewrites.most_common(top)
    ]
    tuples_touched = len({edit.tid for edit in result.edits})

    violations: Dict[str, Tuple[int, int]] = {}
    if fds and model is not None and thresholds is not None:
        for fd in fds:
            tau = thresholds[fd]
            before = len(
                ft_violation_pairs(
                    group_patterns(original, fd), fd, model, tau
                )
            )
            after = len(
                ft_violation_pairs(
                    group_patterns(result.relation, fd), fd, model, tau
                )
            )
            violations[fd.name] = (before, after)

    return RepairReport(
        total_edits=len(result.edits),
        total_cost=result.cost,
        tuples_touched=tuples_touched,
        edits_by_attribute=dict(by_attribute),
        top_rewrites=top_rewrites,
        violations=violations,
    )
