"""The stable public API of the repro library, in one import.

``repro.api`` is the supported surface for downstream code: everything
re-exported here follows the deprecation policy (one minor release of
``DeprecationWarning`` before removal, messages tagged with the release
that deprecated them — see :mod:`repro._compat`). Internals reached by
deep imports (``repro.core.single.mis`` etc.) carry no such guarantee.

Typical use::

    from repro.api import FD, Repairer, RepairConfig, read_csv

    relation = read_csv("hospital.csv", numeric=["Score"])
    config = RepairConfig(algorithm="exact-m", n_jobs=-1)
    result = Repairer([FD.parse("ZIP -> City")], config=config).repair(relation)

Configuration namespace
-----------------------
Every behavioural knob lives on :class:`~repro.exec.config.RepairConfig`
and maps 1:1 onto a CLI flag:

====================  =======================  =================================
config field          CLI flag                 meaning
====================  =======================  =================================
``algorithm``         ``--algorithm``          repair algorithm (:data:`ALGORITHMS`)
``thresholds``        ``--tau``                similarity threshold(s)
``weights``           ``--lhs-weight``         projection-distance weights
``join_strategy``     ``--join-strategy``      detection strategy
                      (``--simjoin-strategy``  (pre-1.2 alias, both sides)
                      / ``simjoin_strategy=``)
``kernel``            ``--kernel``             Levenshtein kernel
``n_jobs``            ``--n-jobs``             executor worker processes
``component_budget``  ``--component-budget``   exact-search degradation budget
``trace``             ``--trace``              observability recording
====================  =======================  =================================

``RepairConfig(simjoin_strategy=...)`` and ``--simjoin-strategy`` remain
accepted aliases of ``join_strategy`` / ``--join-strategy``; the
``join_strategy`` spelling is the documented one. All strategies —
including the numpy-batched ``"vectorized"`` one — emit identical
violations; they differ only in how many candidate pairs they examine.

Serving
-------
:class:`RepairService` (with :class:`ServeConfig`, the fingerprint-keyed
:class:`ModelCache`, and the indexed :class:`IndexedRepairer` hot path)
is the embeddable repair-as-a-service core behind ``repro serve`` —
fit once, repair records over an async micro-batched pipeline with the
same outputs as :meth:`IncrementalRepairer.repair_record`. See
``docs/serving.md``.

Dataset substrate
-----------------
:class:`Relation` is columnar and dictionary-encoded (one
:class:`ValueDictionary` per attribute, rows as interned value ids —
``docs/dataset.md``). The typed accessors (``column``, ``value_id``,
``decode``, ``dictionary``) are part of this API; the pre-1.2 row-dict
accessors (``record``, ``from_dicts``) are deprecated since 1.2.
"""

from __future__ import annotations

from repro._compat import CURRENT_RELEASE, NEXT_RELEASE, deprecated
from repro.core import (
    ALGORITHMS,
    CFD,
    FD,
    CFDRepairer,
    CellEdit,
    DistanceModel,
    Repairer,
    RepairResult,
    Weights,
    parse_fds,
    suggest_threshold,
    suggest_thresholds,
)
from repro.core.incremental import IncrementalRepairer
from repro.dataset import (
    Attribute,
    Relation,
    Schema,
    ValueDictionary,
    read_csv,
    write_csv,
)
from repro.detect import (
    DETECTORS,
    DetectorContext,
    DetectorRegistry,
    DetectorVerdict,
    register_detector,
    run_detectors,
)
from repro.exec import (
    DegradedRepairWarning,
    ExecutionStats,
    RepairConfig,
    RepairExecutor,
    RelationRef,
)
from repro.obs import RunReport
from repro.serve import (
    IndexedRepairer,
    ModelCache,
    RepairService,
    ServeConfig,
    ServiceOverloadedError,
)

__all__ = [
    # constraints and repair
    "FD",
    "CFD",
    "parse_fds",
    "Repairer",
    "CFDRepairer",
    "IncrementalRepairer",
    "RepairResult",
    "CellEdit",
    "ALGORITHMS",
    # configuration
    "RepairConfig",
    "Weights",
    "suggest_threshold",
    "suggest_thresholds",
    # execution
    "RepairExecutor",
    "ExecutionStats",
    "DegradedRepairWarning",
    "RelationRef",
    # dataset substrate
    "Relation",
    "Schema",
    "Attribute",
    "ValueDictionary",
    "read_csv",
    "write_csv",
    # distances and observability
    "DistanceModel",
    "RunReport",
    # error detectors (docs/scenarios.md)
    "DETECTORS",
    "DetectorRegistry",
    "DetectorContext",
    "DetectorVerdict",
    "register_detector",
    "run_detectors",
    # serving (repair-as-a-service, docs/serving.md)
    "RepairService",
    "ServeConfig",
    "IndexedRepairer",
    "ModelCache",
    "ServiceOverloadedError",
    # deprecation policy helpers
    "deprecated",
    "CURRENT_RELEASE",
    "NEXT_RELEASE",
]
