"""Structured run reports: one JSON document per traced run.

A :class:`RunReport` bundles everything needed to understand where a
repair run spent its time and what it produced:

* the **span tree** (hierarchical phases with wall seconds and
  attributes, see :mod:`repro.obs.trace`),
* the **unified counters** (the merged scalar view over every
  registered :class:`~repro.obs.counters.CounterRegistry` — the same
  storage the :class:`~repro.exec.stats.ExecutionStats` exposes),
* the **config** that produced the run (JSON-sanitized
  :class:`~repro.exec.config.RepairConfig`),
* a **dataset fingerprint** (row/attribute counts plus a content hash,
  so two reports are comparable only when they ran the same input),
* a **result digest** (edit count, cost, and the repair-output hash the
  perf-regression gate diffs against its baseline),
* peak-RSS samples.

Reports serialize to/from JSON losslessly (``to_json`` /
``from_json``); :meth:`RunReport.normalized` strips the
non-deterministic fields (wall seconds, utilization, RSS) so two runs
with the same seed compare equal — the determinism contract
``tests/test_run_report.py`` pins down.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.obs.trace import Tracer

SCHEMA_VERSION = 1

#: counter/attribute name fragments that are wall-clock or machine
#: dependent and therefore excluded by :meth:`RunReport.normalized`
_NONDETERMINISTIC_FRAGMENTS = ("seconds", "utilization", "busy_skew")


# ----------------------------------------------------------------------
# JSON sanitization
# ----------------------------------------------------------------------
def jsonable(value: Any) -> Any:
    """Best-effort conversion of *value* into JSON-native types.

    Mappings keyed by rich objects (e.g. per-FD thresholds) use the
    object's ``name`` when it has one; sets are sorted for determinism;
    dataclasses flatten to field dicts; anything else falls back to
    ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {
            str(getattr(key, "name", key)): jsonable(item)
            for key, item in value.items()
        }
    if isinstance(value, (set, frozenset)):
        return sorted((jsonable(item) for item in value), key=str)
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


# ----------------------------------------------------------------------
# Fingerprints and hashes
# ----------------------------------------------------------------------
#: rows hashed into a dataset fingerprint; larger relations are sampled
#: with a fixed stride so the fingerprint costs O(1) per traced run
#: instead of taxing every repair with a full-table scan
_FINGERPRINT_SAMPLE = 128


def dataset_fingerprint(relation: Any) -> Dict[str, Any]:
    """Shape + content hash of a relation (order-sensitive, seed-stable).

    The hash covers the schema, the exact row count, and an
    evenly-strided sample of at most :data:`_FINGERPRINT_SAMPLE` rows
    (every row for small relations). Sampling keeps tracing overhead
    flat in relation size while still pinning the identity of a
    generated workload: any reseed or regeneration perturbs sampled
    rows, and any size change alters the count term.
    """
    n = len(relation)
    names = tuple(relation.schema.names)
    stride = max(1, -(-n // _FINGERPRINT_SAMPLE))  # ceil division
    row = relation.row
    body = "\x1e".join(
        "\x1f".join(map(str, row(tid))) for tid in range(0, n, stride)
    )
    digest = hashlib.sha256()
    digest.update(f"{n}\x1f{stride}\x1f".encode())
    digest.update("\x1f".join(names).encode())
    digest.update(b"\x1e")
    digest.update(body.encode())
    return {
        "rows": n,
        "attributes": list(names),
        "sha256": digest.hexdigest()[:16],
    }


def repair_output_hash(edits: Any, cost: float) -> str:
    """Stable hash of a repair's observable output (edits + cost).

    The perf-regression gate fails on *any* change of this hash between
    the baseline and the candidate entry: a perf win that silently
    changes repairs is a correctness regression, not an optimization.
    """
    digest = hashlib.sha256()
    rows = sorted(
        (edit.tid, edit.attribute, repr(edit.old), repr(edit.new))
        for edit in edits
    )
    digest.update(repr(rows).encode())
    digest.update(f"{cost:.9f}".encode())
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass
class RunReport:
    """One traced run, JSON-serializable and diffable."""

    operation: str
    spans: Dict[str, Any]
    counters: Dict[str, Any]
    config: Dict[str, Any]
    dataset: Dict[str, Any]
    result: Dict[str, Any] = field(default_factory=dict)
    rss: Dict[str, Optional[int]] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "operation": self.operation,
            "config": self.config,
            "dataset": self.dataset,
            "result": self.result,
            "counters": self.counters,
            "rss": self.rss,
            "spans": self.spans,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        return cls(
            operation=str(data.get("operation", "repair")),
            spans=dict(data.get("spans", {})),
            counters=dict(data.get("counters", {})),
            config=dict(data.get("config", {})),
            dataset=dict(data.get("dataset", {})),
            result=dict(data.get("result", {})),
            rss=dict(data.get("rss", {})),
            schema_version=int(data.get("schema_version", SCHEMA_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator[Dict[str, Any]]:
        """Every span dict of the tree, depth-first from the root."""
        stack: List[Dict[str, Any]] = [self.spans] if self.spans else []
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.get("children", ())))

    def span_names(self) -> List[str]:
        """Distinct span names, in first-seen (depth-first) order."""
        seen: Dict[str, None] = {}
        for node in self.iter_spans():
            seen.setdefault(str(node.get("name")), None)
        return list(seen)

    def phase_totals(self) -> Dict[str, float]:
        """Span name -> summed wall seconds over the whole tree.

        The per-phase timing table the CLI ``--trace`` summary and the
        nightly bench's ``$GITHUB_STEP_SUMMARY`` render.
        """
        totals: Dict[str, float] = {}
        for node in self.iter_spans():
            name = str(node.get("name"))
            totals[name] = totals.get(name, 0.0) + float(
                node.get("seconds", 0.0)
            )
        return totals

    def total_seconds(self) -> float:
        """Wall seconds of the root span."""
        return float(self.spans.get("seconds", 0.0)) if self.spans else 0.0

    # ------------------------------------------------------------------
    def normalized(self) -> "RunReport":
        """A copy with every wall-clock/machine-dependent field zeroed.

        Two traced runs of the same config, seed, and dataset produce
        equal normalized reports — the determinism contract.
        """

        def scrub_mapping(mapping: Dict[str, Any]) -> Dict[str, Any]:
            return {
                key: (0 if _is_nondeterministic(key) else value)
                for key, value in mapping.items()
            }

        def scrub_span(node: Dict[str, Any]) -> Dict[str, Any]:
            out = dict(node)
            out["seconds"] = 0.0
            if "attributes" in out:
                out["attributes"] = scrub_mapping(dict(out["attributes"]))
            if "children" in out:
                out["children"] = [scrub_span(c) for c in out["children"]]
            return out

        return RunReport(
            operation=self.operation,
            spans=scrub_span(self.spans) if self.spans else {},
            counters=scrub_mapping(dict(self.counters)),
            config=dict(self.config),
            dataset=dict(self.dataset),
            result=dict(self.result),
            rss={key: None for key in self.rss},
            schema_version=self.schema_version,
        )


def _is_nondeterministic(name: str) -> bool:
    lowered = name.lower()
    return any(frag in lowered for frag in _NONDETERMINISTIC_FRAGMENTS)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def build_report(
    tracer: Tracer,
    *,
    operation: str,
    config: Any,
    relation: Any,
    result: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Assemble the :class:`RunReport` of a finished tracer.

    *config* may be a :class:`~repro.exec.config.RepairConfig` (its
    ``to_dict`` is used) or any mapping; *result* is the caller's digest
    of the run's output (edit counts, cost, output hash).
    """
    tracer.finish()
    config_dict = config.to_dict() if hasattr(config, "to_dict") else dict(config)
    return RunReport(
        operation=operation,
        spans=tracer.serialize(),
        counters=jsonable(tracer.counters()),
        config=jsonable(config_dict),
        dataset=dataset_fingerprint(relation),
        result=jsonable(result or {}),
        rss={
            "start_bytes": tracer.rss_start,
            "peak_bytes": tracer.rss_peak,
        },
    )


def format_phase_table(report: RunReport, limit: int = 20) -> str:
    """A small fixed-width phase-timing table (CLI / step summaries)."""
    totals = sorted(
        report.phase_totals().items(), key=lambda item: -item[1]
    )[:limit]
    width = max((len(name) for name, _ in totals), default=5)
    lines = [f"{'phase'.ljust(width)}  seconds"]
    for name, seconds in totals:
        lines.append(f"{name.ljust(width)}  {seconds:8.4f}")
    return "\n".join(lines)
