"""Hierarchical phase spans over monotonic timers.

A :class:`Tracer` owns one tree of :class:`Span` s for one run. Code
anywhere in the library opens spans through the module-level
:func:`span` helper::

    from repro.obs import span

    with span("detect", fd=fd.name) as sp:
        violations = join.join(patterns)
        sp.set(pairs_examined=join.pairs_examined)

When no tracer is active (the default — tracing is opt-in via
``RepairConfig(trace=True)`` / CLI ``--trace``), :func:`span` returns a
shared no-op singleton: the cost of an instrumentation point is one
``ContextVar.get`` plus an attribute check, which is why the spans can
stay in place on warm paths without a measurable tax (guarded by
``tests/test_trace_overhead.py``). Spans are deliberately **coarse** —
phases, per-FD joins, per-component repairs — never per-pair or
per-kernel-call; high-frequency events are counted locally and attached
as span attributes when the span closes.

Worker processes have no *usable* inherited tracer — a spawned worker
starts with an empty :data:`ContextVar`, and a forked one inherits a
copy whose recordings would be discarded, which is why
:func:`current_tracer` disowns tracers owned by another pid. Executor
tasks therefore build a worker-local tracer, serialize its span tree,
and ship it back; the parent grafts each tree under its live
``execute`` span (:meth:`Tracer.graft`). The in-process path nests live
spans directly — exactly one of the two happens, which is what keeps
merged reports free of double counting.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.counters import CounterRegistry, merged_snapshot
from repro.obs.rss import peak_rss_bytes


class Span:
    """One node of the span tree: a named, timed, attributed phase.

    A span doubles as its own context manager (entering pushes it onto
    the owning tracer's stack and starts the clock) so opening one costs
    a single allocation.
    """

    __slots__ = ("name", "seconds", "attributes", "children", "_tracer", "_start")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.seconds: float = 0.0
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List["Span"] = []
        self._tracer: Optional["Tracer"] = None
        self._start = 0.0

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.seconds += time.perf_counter() - self._start
        self._tracer._pop(self)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation; empty fields are omitted."""
        out: Dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        span = cls(str(data["name"]), data.get("attributes"))
        span.seconds = float(data.get("seconds", 0.0))
        span.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.seconds:.6f}s, "
            f"{len(self.children)} child(ren))"
        )


class _NullSpan:
    """Shared no-op stand-in used when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Owns one run's span tree, counters, and peak-RSS samples."""

    def __init__(self, root_name: str = "run", **root_attributes: Any):
        self.enabled = True
        #: owning process — a forked worker inherits the parent's
        #: ContextVar, so :func:`current_tracer` disowns tracers whose
        #: pid differs (the worker then builds its own local tracer)
        self.pid = os.getpid()
        self.root = Span(root_name, root_attributes)
        self._stack: List[Span] = [self.root]
        self._start = time.perf_counter()
        self._finished = False
        #: counter registries registered by subsystems (the executor
        #: registers one per merged result, backed by its ExecutionStats)
        self.registries: List[CounterRegistry] = []
        #: the tracer's own ad-hoc counters (for code without a stats
        #: object in reach)
        self.local_counters = CounterRegistry()
        self.rss_start = peak_rss_bytes()
        self.rss_peak = self.rss_start

    # ------------------------------------------------------------------
    # Span plumbing
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any):
        """Open a child span of the current span (context manager)."""
        if not self.enabled:
            return NULL_SPAN
        child = Span(name, attributes)
        child._tracer = self
        self.current.children.append(child)
        return child

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def graft(self, tree: Dict[str, Any]) -> Span:
        """Attach a serialized span tree under the current span.

        Used by the executor to merge worker-local traces: each worker
        ships ``tracer.serialize()`` of its private tracer and the
        parent grafts it in task order, so the merged tree is identical
        to the one an in-process run would have produced (modulo wall
        times).
        """
        span = Span.from_dict(tree)
        self.current.children.append(span)
        return span

    # ------------------------------------------------------------------
    # Counters and RSS
    # ------------------------------------------------------------------
    def register(self, registry: CounterRegistry) -> CounterRegistry:
        """Adopt *registry* into the run's unified counter view."""
        self.registries.append(registry)
        return registry

    def add_counters(self, counters: Dict[str, Any]) -> None:
        """Sum scalar numerics into the tracer-local registry."""
        self.local_counters.merge(counters)

    def counters(self) -> Dict[str, Any]:
        """The unified counter snapshot across every registered registry."""
        registries = list(self.registries)
        if len(self.local_counters):
            registries.append(self.local_counters)
        return merged_snapshot(registries)

    def _sample_rss(self) -> None:
        # ru_maxrss is a kernel-maintained high-water mark (monotonic),
        # so one sample at finish() captures the true peak — no need to
        # pay a getrusage call on every span close.
        sample = peak_rss_bytes()
        if sample is not None and (
            self.rss_peak is None or sample > self.rss_peak
        ):
            self.rss_peak = sample

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        if not self._finished:
            self.root.seconds = time.perf_counter() - self._start
            self._sample_rss()
            self._finished = True
        return self.root

    def serialize(self) -> Dict[str, Any]:
        """The span tree as a JSON-ready dict (finishes the root)."""
        return self.finish().to_dict()


# ----------------------------------------------------------------------
# The ambient tracer
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar(
    "repro_active_tracer", default=None
)


def current_tracer() -> Optional[Tracer]:
    """The tracer active in this process and context, or ``None``.

    A tracer created in another process (inherited through fork) is
    treated as absent: recording into the forked copy would be silently
    discarded, so workers must build their own tracer and ship its tree.
    """
    tracer = _ACTIVE.get()
    if tracer is not None and tracer.pid != os.getpid():
        return None
    return tracer


def span(name: str, **attributes: Any):
    """Open a span on the active tracer; a no-op when none is active."""
    tracer = current_tracer()
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, **attributes)


def add_counters(counters: Dict[str, Any]) -> None:
    """Sum counters into the active tracer; a no-op when none is active."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.add_counters(counters)


@contextmanager
def activate(tracer: Optional[Tracer]):
    """Make *tracer* the ambient tracer for the block (``None`` = no-op)."""
    if tracer is None:
        yield None
        return
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
