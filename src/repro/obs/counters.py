"""Counter registries: one unified store for every run counter.

Before the observability layer, each subsystem kept its own counters —
``ExecutionStats`` in the executor, ``ViolationGraph.join_counters`` in
detection, ``kernel_calls`` on the distance model — and consumers had to
know which pocket to look in. A :class:`CounterRegistry` makes one
mapping the single source of truth:

* it can be **backed by an existing mapping** (the executor backs its
  registry by the :class:`~repro.exec.stats.ExecutionStats` dict it is
  assembling, so the stats object *is* the registry view — writes go to
  one store, there is no parallel copy to drift);
* registries registered with the active :class:`~repro.obs.trace.Tracer`
  are summed into the run report's unified ``counters`` section;
* :meth:`snapshot` filters to scalar numerics, which is exactly the
  JSON-safe, mergeable subset worker processes can ship back.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, MutableMapping, Optional, Union

Number = Union[int, float]


def _is_counter_value(value: object) -> bool:
    """Scalar numerics only; bools are flags, not counters."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class CounterRegistry:
    """A flat ``name -> number`` counter store over a pluggable backing.

    >>> reg = CounterRegistry()
    >>> reg.inc("kernel_calls", 3)
    3
    >>> reg.inc("kernel_calls")
    4
    >>> reg.snapshot()
    {'kernel_calls': 4}

    Backed mode — the registry writes through to an existing mapping::

        stats = ExecutionStats()
        reg = CounterRegistry(backing=stats)
        reg.inc("pairs_examined", 10)   # visible as stats["pairs_examined"]
    """

    __slots__ = ("data",)

    def __init__(
        self, backing: Optional[MutableMapping[str, object]] = None
    ) -> None:
        self.data: MutableMapping[str, object] = (
            backing if backing is not None else {}
        )

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: Number = 1) -> Number:
        """Add *amount* to *name* (creating it at 0) and return the total."""
        current = self.data.get(name, 0)
        if not _is_counter_value(current):
            current = 0
        total = current + amount
        self.data[name] = total
        return total

    def set(self, name: str, value: object) -> None:
        self.data[name] = value

    def get(self, name: str, default: Number = 0) -> Number:
        value = self.data.get(name, default)
        return value if _is_counter_value(value) else default

    def merge(self, other: Mapping[str, object]) -> None:
        """Sum every scalar numeric of *other* into this registry."""
        for name, value in other.items():
            if _is_counter_value(value):
                self.inc(name, value)

    def snapshot(self) -> Dict[str, Number]:
        """The scalar-numeric subset, in insertion order (JSON-safe)."""
        return {
            name: value
            for name, value in self.data.items()
            if _is_counter_value(value)
        }

    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self.data

    def __iter__(self) -> Iterator[str]:
        return iter(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"CounterRegistry({self.snapshot()!r})"


def merged_snapshot(registries) -> Dict[str, Number]:
    """Sum the snapshots of an iterable of registries into one mapping."""
    out = CounterRegistry()
    for registry in registries:
        out.merge(registry.snapshot())
    return dict(out.snapshot())
