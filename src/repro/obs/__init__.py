"""Unified observability: phase spans, counters, RSS, run reports.

The single place a repair run's "where did the time go" question is
answered. PRs 1-3 each grew their own bookkeeping (``ExecutionStats``,
``ViolationGraph.join_counters``, kernel call counts); this package
gives them one spine:

* :func:`span` / :class:`Tracer` — hierarchical phase spans over
  monotonic timers (``with span("detect", fd=...):``), no-ops unless a
  tracer is active (``RepairConfig(trace=True)`` / CLI ``--trace``);
* :class:`CounterRegistry` — the unified counter store; the executor
  backs one registry per run by the ``ExecutionStats`` dict itself, so
  stats are a *view* of the registry, not a parallel copy;
* :class:`RunReport` — the JSON run report (spans tree + counters +
  config + dataset fingerprint) behind ``Repairer.report()`` and the
  CLI ``--report out.json``;
* :func:`peak_rss_bytes` — dependency-free peak-RSS sampling.

See ``docs/observability.md`` for the API walkthrough and the report
schema, and ``benchmarks/check_perf_gate.py`` for the CI gate that
consumes the reports' trajectory (``BENCH_repair.json``).
"""

from repro.obs.counters import CounterRegistry, merged_snapshot
from repro.obs.report import (
    RunReport,
    build_report,
    dataset_fingerprint,
    format_phase_table,
    jsonable,
    repair_output_hash,
)
from repro.obs.rss import peak_rss_bytes
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    add_counters,
    current_tracer,
    span,
)

__all__ = [
    "CounterRegistry",
    "NULL_SPAN",
    "RunReport",
    "Span",
    "Tracer",
    "activate",
    "add_counters",
    "build_report",
    "current_tracer",
    "dataset_fingerprint",
    "format_phase_table",
    "jsonable",
    "merged_snapshot",
    "peak_rss_bytes",
    "repair_output_hash",
    "span",
]
