"""Peak-RSS sampling without external dependencies.

``resource.getrusage`` reports the high-water mark of the process's
resident set — a kernel-maintained monotonic peak, so one sample when a
tracer starts and one when it finishes capture the run's footprint
without instrumenting allocations (or taxing span closes). The unit of
``ru_maxrss`` is kibibytes on Linux and bytes on macOS — normalized to
bytes here. Returns ``None`` on platforms without the ``resource``
module (Windows), and every consumer treats that as "unknown", never as
zero.
"""

from __future__ import annotations

import sys
from typing import Optional

try:  # pragma: no cover - import guard exercised only on Windows
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes, if knowable."""
    if resource is None:  # pragma: no cover - Windows
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024
