"""Subtree tasks: splitting one component's search across the pool.

The executor's unit of scheduling is the connected component — until
one component dominates the run. This module implements the
sub-component unit: a :class:`SubtreeSpec` is one contiguous chunk of a
branch-and-bound frontier cut at a level boundary
(:class:`~repro.core.single.frontier.FrontierState`), shipped to a pool
worker and explored there by the exact same kernel loop
(:func:`explore_subtree` is a pure function of its spec).

Specs are self-contained on purpose: the adjacency masks,
multiplicities, Eq. (5) min-out terms and Eq. (6) cost rows travel as
plain floats, so workers never rebuild a distance model — both sides of
the split compute with bit-identical numbers, which is half of the
determinism argument. The other half is the merge
(:class:`PoolSubtreeDispatcher.explore`):

* ``enumerate`` mode (un-pruned, Exact-M): chunk results concatenate in
  segment-lineage order with first-occurrence dedup — exactly the
  serial output list, order included, because ``lower``/``coverage``
  are pure functions of ``(mask, level)``.
* ``best`` mode (pruned, Exact-S): chunks score their own candidates
  and return chunk winners; the parent reduces them in segment order
  with the serial comparator
  (:func:`~repro.core.single.frontier.better_candidate`). The shared
  incumbent bound (:mod:`repro.exec.bounds`) may only prune
  provably-beaten sets, so the winner is unchanged.

Work stealing is cooperative: every spec carries a ``yield_nodes``
checkpoint; a subtree that outgrows it returns its (folded) frontier
state instead of a result, and the dispatcher re-splits that state into
fresh chunks — the straggler's work is redistributed without ever
interrupting a worker. Lineage segments (``(3,)`` → ``(3, 0)``,
``(3, 1)``, …) keep the merge order deterministic across any stealing
schedule.

Budget semantics under splitting: each subtree checks ``max_nodes``
against the shared prefix count plus its own nodes, and the dispatcher
additionally re-checks the summed total after the merge. A split run
can therefore trip on searches whose serial node count would just fit
(chunks re-explore nodes the serial dedup would have merged) — the
conservative direction; see ``docs/parallelism.md``.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.single.frontier import (
    ExpansionLimitError,
    ExpansionStats,
    FrontierState,
    SearchKernel,
    better_candidate,
    select_best_mask,
)
from repro.core.single.subtree import (
    MODE_BEST,
    SplitRequest,
    SubtreeDispatcher,
)
from repro.exec import bounds
from repro.obs import span

#: cooperative checkpoint: a subtree yields its state back for
#: re-splitting after generating this many nodes (the steal quantum)
SUBTREE_YIELD_NODES = 75_000

#: lineage depth past which a straggler runs to completion un-split
MAX_RESPLIT_DEPTH = 3


@dataclass(frozen=True)
class SubtreeSpec:
    """One independently explorable chunk of a cut frontier."""

    segment: Tuple[int, ...]  #: lineage path; the deterministic merge key
    mode: str  #: "enumerate" | "best"
    prune: bool
    fd_name: str
    order: Tuple[int, ...]  #: original vertex ids (winner tie-breaks)
    adjacency: Tuple[int, ...]
    multiplicities: Tuple[int, ...]
    min_out: Optional[Tuple[float, ...]]
    cost_rows: Optional[Tuple[Tuple[float, ...], ...]]
    level: int
    masks: Tuple[int, ...]
    lower: Tuple[float, ...]
    coverage: Tuple[int, ...]
    best_upper: float
    nodes_so_far: int  #: shared serial-prefix node count at the cut
    max_nodes: Optional[int]
    yield_nodes: Optional[int]
    bound_slot: Optional[int]


@dataclass
class SubtreeResult:
    """What a worker ships back for one :class:`SubtreeSpec`."""

    segment: Tuple[int, ...]
    finished: bool
    #: finished, mode="enumerate": the chunk's final frontier masks
    masks: Optional[List[int]]
    #: finished, mode="best": (mask, cost, sorted members) or None
    winner: Optional[Tuple[int, float, List[int]]]
    #: not finished: the resumable state for re-splitting
    state: Optional[Dict[str, Any]]
    candidates: int  #: final-frontier size (sets this chunk enumerated)
    stats: Dict[str, int]  #: worker ExpansionStats snapshot
    nodes_generated: int  #: absolute count (includes nodes_so_far)
    seconds: float
    cpu_seconds: float  #: worker process_time — contention-immune
    pid: int
    bound_hits: int
    bound_publishes: int


def explore_subtree(spec: SubtreeSpec) -> SubtreeResult:
    """Worker entry: explore one frontier chunk to completion or yield.

    Pure bitset search over the shipped floats — no relation, no
    distance model, no index state. Raises
    :class:`~repro.core.single.frontier.ExpansionLimitError` when the
    chunk (on top of the shared prefix) exceeds ``max_nodes``.
    """
    start = time.perf_counter()
    cpu0 = time.process_time()
    stats = ExpansionStats()
    stats.nodes_generated = spec.nodes_so_far
    kernel = SearchKernel(
        adjacency=spec.adjacency,
        multiplicities=spec.multiplicities,
        prune=spec.prune,
        min_out=spec.min_out,
        cost_rows=spec.cost_rows,
    )
    state = FrontierState(
        level=spec.level,
        masks=list(spec.masks),
        lower=list(spec.lower),
        coverage=list(spec.coverage),
        best_upper=spec.best_upper,
    )
    bound = bounds.slot_bound(spec.bound_slot)
    finished = kernel.advance(
        state,
        stats,
        max_nodes=spec.max_nodes,
        yield_budget=spec.yield_nodes,
        bound=bound,
    )
    winner = None
    masks: Optional[List[int]] = None
    shipped_state: Optional[Dict[str, Any]] = None
    candidates = 0
    if not finished:
        # advance() folds pending uppers before yielding, so the state
        # ships without them and re-splits cleanly at the boundary.
        shipped_state = {
            "level": state.level,
            "masks": state.masks,
            "lower": state.lower,
            "coverage": state.coverage,
            "best_upper": state.best_upper,
        }
    elif spec.mode == MODE_BEST:
        candidates = len(state.masks)
        winner = select_best_mask(kernel, state.masks, spec.order)
    else:
        candidates = len(state.masks)
        masks = state.masks
    return SubtreeResult(
        segment=spec.segment,
        finished=finished,
        masks=masks,
        winner=winner,
        state=shipped_state,
        candidates=candidates,
        stats=stats.as_dict(),
        nodes_generated=stats.nodes_generated,
        seconds=time.perf_counter() - start,
        cpu_seconds=time.process_time() - cpu0,
        pid=os.getpid(),
        bound_hits=bound.hits if bound is not None else 0,
        bound_publishes=bound.publishes if bound is not None else 0,
    )


def _chunk_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced [lo, hi) slices of ``range(total)``."""
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    slices = []
    lo = 0
    for k in range(parts):
        hi = lo + base + (1 if k < extra else 0)
        slices.append((lo, hi))
        lo = hi
    return slices


class PoolSubtreeDispatcher(SubtreeDispatcher):
    """Dispatch subtree specs onto the executor's worker pool.

    Created per run in the parent process; ``wants`` refuses to
    activate in any other process, so a ``fork`` started mid-dispatch
    (workers inherit the installed contextvar) can never recurse.
    """

    def __init__(self, pool, config, exchange, counters: Dict[str, Any]):
        self._pool = pool
        self._config = config
        self._exchange = exchange  #: parent-side BoundExchange or None
        self.counters = counters
        self.busy: Dict[int, float] = {}  #: pid -> subtree busy seconds
        self.wait_seconds = 0.0
        self._pid = os.getpid()
        #: read at construction so tests can shrink the steal quantum
        self._yield_nodes = SUBTREE_YIELD_NODES

    # -- SubtreeDispatcher ------------------------------------------------
    def wants(self, n_vertices: int, prune: bool, mode: str) -> bool:
        if os.getpid() != self._pid:
            return False
        threshold = self._config.split_threshold
        return threshold is not None and n_vertices >= threshold

    def fanout(self) -> int:
        return max(2, int(self._config.max_subtasks))

    def explore(self, request: SplitRequest) -> Any:
        state, kernel, stats = request.state, request.kernel, request.stats
        slot = None
        if kernel.prune and self._exchange is not None:
            slot = self._exchange.acquire(state.best_upper)
        specs = self._cut(
            request, state, slot, base=(), yield_nodes=self._yield_nodes
        )
        with span(
            "mis/split",
            fd=request.fd_name,
            mode=request.mode,
            chunks=len(specs),
            frontier=len(state.masks),
            level=state.level,
        ) as split_span:
            results, children = self._drive(request, specs)
            merged = self._merge(request, specs, results, children)
            split_span.set(
                subtree_tasks=self.counters["subtree_tasks"],
                steals=self.counters["steals"],
            )
        return merged

    # -- internals --------------------------------------------------------
    def _cut(
        self,
        request: SplitRequest,
        state,
        slot: Optional[int],
        base: Tuple[int, ...],
        yield_nodes: Optional[int],
        nodes_so_far: Optional[int] = None,
    ) -> List[SubtreeSpec]:
        kernel = request.kernel
        need_costs = kernel.prune or request.mode == MODE_BEST
        cost_rows = (
            tuple(tuple(row) for row in kernel.cost_rows)
            if need_costs and kernel.cost_rows is not None
            else None
        )
        min_out = tuple(kernel.min_out) if kernel.prune else None
        prefix_nodes = (
            request.stats.nodes_generated
            if nodes_so_far is None
            else nodes_so_far
        )
        specs = []
        for k, (lo, hi) in enumerate(
            _chunk_bounds(len(state.masks), self.fanout())
        ):
            specs.append(
                SubtreeSpec(
                    segment=base + (k,),
                    mode=request.mode,
                    prune=kernel.prune,
                    fd_name=request.fd_name,
                    order=tuple(request.order),
                    adjacency=tuple(kernel.adjacency),
                    multiplicities=tuple(kernel.multiplicities),
                    min_out=min_out,
                    cost_rows=cost_rows,
                    level=state.level,
                    masks=tuple(state.masks[lo:hi]),
                    lower=tuple(state.lower[lo:hi]),
                    coverage=tuple(state.coverage[lo:hi]),
                    best_upper=state.best_upper,
                    nodes_so_far=prefix_nodes,
                    max_nodes=request.max_nodes,
                    yield_nodes=yield_nodes,
                    bound_slot=slot,
                )
            )
        return specs

    def _submit(self, specs: List[SubtreeSpec]) -> Dict[Any, SubtreeSpec]:
        self.counters["subtree_tasks"] += len(specs)
        for spec in specs:
            size = len(pickle.dumps(spec, protocol=5))
            self.counters["subtree_bytes_total"] += size
            if size > self.counters["subtree_bytes_max"]:
                self.counters["subtree_bytes_max"] = size
        return {self._pool.submit(explore_subtree, spec): spec for spec in specs}

    def _drive(self, request: SplitRequest, specs: List[SubtreeSpec]):
        """Run specs to completion, re-splitting cooperative yields."""
        self.counters["tasks_split"] += 1
        pending = self._submit(specs)
        results: Dict[Tuple[int, ...], SubtreeResult] = {}
        children: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        stats = request.stats
        try:
            while pending:
                waited = time.perf_counter()
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                self.wait_seconds += time.perf_counter() - waited
                for future in done:
                    spec = pending.pop(future)
                    try:
                        result = future.result()
                    except ExpansionLimitError as exc:
                        exc.subtree = spec.segment
                        raise
                    worker_stats = ExpansionStats(**result.stats)
                    stats.merge_delta(worker_stats, spec.nodes_so_far)
                    self.busy[result.pid] = (
                        self.busy.get(result.pid, 0.0) + result.seconds
                    )
                    self.counters.setdefault(
                        "subtree_cpu_seconds", []
                    ).append(round(result.cpu_seconds, 6))
                    self.counters["bound_exchange_hits"] += result.bound_hits
                    self.counters["incumbent_publishes"] += (
                        result.bound_publishes
                    )
                    if result.finished:
                        results[spec.segment] = result
                        continue
                    # Straggler: re-split its returned frontier state.
                    self.counters["steals"] += 1
                    resumed = FrontierState(
                        level=result.state["level"],
                        masks=list(result.state["masks"]),
                        lower=list(result.state["lower"]),
                        coverage=list(result.state["coverage"]),
                        best_upper=result.state["best_upper"],
                    )
                    deep = len(spec.segment) >= MAX_RESPLIT_DEPTH
                    replacements = self._cut(
                        request,
                        resumed,
                        spec.bound_slot,
                        base=spec.segment,
                        yield_nodes=None if deep else spec.yield_nodes,
                        nodes_so_far=spec.nodes_so_far,
                    )
                    children[spec.segment] = [
                        s.segment for s in replacements
                    ]
                    pending.update(self._submit(replacements))
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        return results, children

    def _merge(
        self,
        request: SplitRequest,
        specs: List[SubtreeSpec],
        results: Dict[Tuple[int, ...], SubtreeResult],
        children: Dict[Tuple[int, ...], List[Tuple[int, ...]]],
    ) -> Any:
        stats = request.stats
        ordered: List[SubtreeResult] = []

        def visit(segment: Tuple[int, ...]) -> None:
            if segment in children:
                for child in children[segment]:
                    visit(child)
            else:
                ordered.append(results[segment])

        for spec in specs:
            visit(spec.segment)

        # Conservative combined budget: the summed split total is >= the
        # serial node count (chunks re-explore what serial dedup merged),
        # so any serial trip is reproduced; see module docstring.
        if (
            request.max_nodes is not None
            and stats.nodes_generated > request.max_nodes
        ):
            raise ExpansionLimitError(
                request.max_nodes, stats.nodes_generated, stats.levels
            )

        if request.mode == MODE_BEST:
            stats.sets_enumerated = sum(r.candidates for r in ordered)
            best = None
            best_cost = float("inf")
            best_members: Optional[List[int]] = None
            for result in ordered:
                if result.winner is None:
                    continue
                mask, cost, members = result.winner
                if better_candidate(cost, members, best_cost, best_members):
                    best = result.winner
                    best_cost, best_members = cost, members
            return best

        # enumerate: concatenate in lineage order, keep first occurrences
        # — exactly the serial output list (the cross-chunk duplicates
        # are the nodes serial dominance-dedup merged earlier).
        seen = set()
        merged: List[int] = []
        for result in ordered:
            assert result.masks is not None
            for mask in result.masks:
                if mask in seen:
                    stats.duplicates_removed += 1
                    stats.search_dominance_prunes += 1
                    continue
                seen.add(mask)
                merged.append(mask)
        return merged
