"""Execution layer: configs, component-sharded parallel execution, stats.

The paper's decomposition theorems make repair embarrassingly parallel;
this package is where the library exploits that. See
``docs/parallelism.md`` for the determinism guarantee and the cache
semantics.
"""

from repro.exec.cache import (
    clear_worker_caches,
    model_fingerprint,
    shared_model,
    worker_distance_cache,
)
from repro.exec.bounds import BoundExchange, SlotBound
from repro.exec.config import RepairConfig
from repro.exec.executor import (
    ComponentOutcome,
    ComponentTask,
    RepairExecutor,
    component_size,
    repair_component,
)
from repro.exec.planner import SchedulePlan, estimate_task, plan_schedule
from repro.exec.shipping import RelationRef, publish, resolve
from repro.exec.stats import DegradedRepairWarning, ExecutionStats
from repro.exec.subtrees import (
    PoolSubtreeDispatcher,
    SubtreeResult,
    SubtreeSpec,
    explore_subtree,
)

__all__ = [
    "RepairConfig",
    "RepairExecutor",
    "RelationRef",
    "publish",
    "resolve",
    "ExecutionStats",
    "DegradedRepairWarning",
    "ComponentTask",
    "ComponentOutcome",
    "component_size",
    "repair_component",
    "shared_model",
    "worker_distance_cache",
    "model_fingerprint",
    "clear_worker_caches",
    "SchedulePlan",
    "estimate_task",
    "plan_schedule",
    "BoundExchange",
    "SlotBound",
    "SubtreeSpec",
    "SubtreeResult",
    "PoolSubtreeDispatcher",
    "explore_subtree",
]
