"""Shared incumbent-bound exchange for split branch-and-bound searches.

When a giant component's enumeration is split into subtree tasks, each
chunk would otherwise prune only against the upper bounds *it* derives
— strictly weaker than the serial search, which folds every frontier
node's Eq. (6) upper at each level. This module restores near-serial
pruning strength: one shared best-cost cell per split component, read
lock-free at level boundaries and published on improvement
(:meth:`SlotBound.tighten`, wired into
:meth:`repro.core.single.frontier.SearchKernel.advance`).

Soundness does not depend on synchronization: every value ever written
is the cost of a concrete feasible repair, hence an upper bound on the
optimum, and the kernel prunes strictly (``lower > best_upper``) — a
lost update or a stale read only loosens a bound, never drops an
optimal set. Bound exchange may only *prune*; it cannot change which
set the search selects.

Transport: a ``multiprocessing.RawArray`` of C doubles allocated in the
parent **before** the worker pool starts. Under the ``fork`` start
method (Linux, the platform the executor targets) workers inherit the
module-level :data:`_ARRAY` and the shared mapping with it, so subtree
specs carry only a slot index. Under ``spawn`` the global is absent in
workers and :func:`slot_bound` returns ``None`` — subtree tasks then
run with their local bounds only, which is slower but equally correct.
"""

from __future__ import annotations

import ctypes
from multiprocessing.sharedctypes import RawArray
from typing import Optional

from repro.core.single.frontier import IncumbentBound

#: incumbent slots per run; components beyond this run without exchange
DEFAULT_SLOTS = 64

#: parent-allocated shared array, fork-inherited by pool workers
_ARRAY = None

_INF = float("inf")


class BoundExchange:
    """Parent-side owner of one run's shared incumbent slots."""

    def __init__(self, slots: int = DEFAULT_SLOTS) -> None:
        self.array = RawArray(ctypes.c_double, slots)
        for index in range(slots):
            self.array[index] = _INF
        self._next = 0

    def acquire(self, seed: float) -> Optional[int]:
        """Claim the next slot, seeded with the parent's incumbent.

        Returns ``None`` when every slot is taken — the affected
        component simply runs without exchange (sound, just slower).
        Slots are never reused within a run, so a straggler subtree of
        an abandoned search can keep writing its slot harmlessly.
        """
        if self._next >= len(self.array):
            return None
        slot = self._next
        self._next += 1
        self.array[slot] = seed
        return slot


class SlotBound(IncumbentBound):
    """One process's view of a shared incumbent slot.

    Reads stabilize with a double-read loop (an aligned 8-byte store is
    not torn on the supported platforms, but re-reading until two loads
    agree costs nothing and removes the assumption). Counters are
    process-local; subtree workers ship them back with their results.
    """

    __slots__ = ("_array", "_slot", "hits", "publishes")

    def __init__(self, array, slot: int) -> None:
        self._array = array
        self._slot = slot
        self.hits = 0
        self.publishes = 0

    def tighten(self, current: float) -> float:
        array, slot = self._array, self._slot
        value = array[slot]
        check = array[slot]
        while check != value:
            value = check
            check = array[slot]
        if value < current:
            self.hits += 1
            return value
        if current < value:
            array[slot] = current
            self.publishes += 1
        return current


def install(array) -> None:
    """Make *array* the process's shared bound array (parent, pre-fork)."""
    global _ARRAY
    _ARRAY = array


def clear() -> None:
    """Drop the shared array reference (parent, after the pool closes)."""
    global _ARRAY
    _ARRAY = None


def slot_bound(slot: Optional[int]):
    """The :class:`SlotBound` for *slot*, or ``None`` when unavailable."""
    if slot is None or _ARRAY is None:
        return None
    return SlotBound(_ARRAY, slot)
