"""Execution statistics and degradation signalling.

:class:`ExecutionStats` is a ``dict`` subclass: every algorithm counter
that used to live in the free-form ``RepairResult.stats`` mapping is
still there, under the same keys, and every existing ``stats["..."]``
consumer keeps working. On top of the mapping it adds typed, documented
accessors for the execution-layer fields the
:class:`~repro.exec.executor.RepairExecutor` records:

* per-component outcomes (``components``: algorithm used, wall seconds,
  graph size, degradation),
* distance-cache effectiveness (``cache_hits`` / ``cache_misses`` /
  ``cache_hit_rate``),
* parallel utilization (``n_jobs``, ``worker_utilization``),
* the degradation flag (``degraded`` / ``degraded_components``) set when
  an exact algorithm ran out of budget and fell back to greedy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class DegradedRepairWarning(RuntimeWarning):
    """An exact algorithm exhausted its budget and degraded to greedy.

    Emitted once per degraded component, naming the component and the
    exhausted budget, whether the degradation was pre-emptive
    (``component_budget``) or discovered mid-search (the anytime
    fallback on ``ExpansionLimitError`` / ``CombinationLimitError``).
    """


class ExecutionStats(dict):
    """Dict-compatible statistics of one executor run.

    Behaves exactly like the free-form stats mapping the algorithms have
    always produced (``stats["iterations"]`` etc.) while exposing the
    executor's structured fields as attributes::

        result = Repairer(fds, config=cfg).repair(relation)
        result.stats.degraded          # -> bool
        result.stats.cache_hit_rate    # -> float in [0, 1]
        result.stats["algorithm"]      # -> "greedy-m", as before
    """

    # -- execution layer ------------------------------------------------
    @property
    def n_jobs(self) -> int:
        """Effective worker count of the run (1 = serial)."""
        return int(self.get("n_jobs", 1))

    @property
    def components(self) -> List[Dict[str, Any]]:
        """Per-component records: index, fds, algorithm, seconds, size."""
        return list(self.get("components", ()))

    @property
    def wall_seconds(self) -> float:
        """End-to-end wall time of the execution phase."""
        return float(self.get("wall_seconds", 0.0))

    @property
    def worker_utilization(self) -> float:
        """Sum of per-component wall time over ``workers * elapsed``.

        1.0 means every worker was busy the whole run; a serial run
        reports 1.0 by construction (modulo scheduling noise).
        """
        return float(self.get("worker_utilization", 1.0))

    # -- adaptive scheduling --------------------------------------------
    @property
    def tasks_coordinated(self) -> int:
        """Tasks the planner ran in-parent for subtree splitting."""
        return int(self.get("tasks_coordinated", 0))

    @property
    def tasks_split(self) -> int:
        """Component searches whose frontier was cut into subtree tasks."""
        return int(self.get("tasks_split", 0))

    @property
    def subtree_tasks(self) -> int:
        """Subtree tasks dispatched to the pool (including re-splits)."""
        return int(self.get("subtree_tasks", 0))

    @property
    def steals(self) -> int:
        """Cooperative yields re-split into fresh subtree tasks."""
        return int(self.get("steals", 0))

    @property
    def incumbent_publishes(self) -> int:
        """Improved upper bounds written to the shared incumbent slots."""
        return int(self.get("incumbent_publishes", 0))

    @property
    def bound_exchange_hits(self) -> int:
        """Times a search adopted a tighter bound from another process."""
        return int(self.get("bound_exchange_hits", 0))

    @property
    def busy_skew_ratio(self) -> float:
        """Max over mean busy seconds per process (1.0 = balanced)."""
        return float(self.get("busy_skew_ratio", 1.0))

    # -- distance cache -------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return int(self.get("cache_hits", 0))

    @property
    def cache_misses(self) -> int:
        return int(self.get("cache_misses", 0))

    @property
    def cache_hit_rate(self) -> float:
        """Hits over probes of the memoized distance cache (0 when idle)."""
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0

    # -- relation shipping ---------------------------------------------
    @property
    def relation_bytes_shipped(self) -> int:
        """Encoded relation bytes that crossed the process boundary.

        ``pack()`` payload size times worker count for a pooled run
        (under the ``fork`` start method this is the copy-on-write upper
        bound; the initializer skips the decode entirely), 0 for serial
        runs where the relation never leaves the process.
        """
        return int(self.get("relation_bytes_shipped", 0))

    @property
    def task_bytes_max(self) -> int:
        """Largest per-task request message (pickled bytes) of the run."""
        return int(self.get("task_bytes_max", 0))

    @property
    def dict_hit_rate(self) -> float:
        """Interning hit rate of the input relation's value dictionaries.

        Hits over probes across all attribute dictionaries: high values
        mean heavy value repetition, i.e. the columnar encoding is
        paying for itself. 0.0 when unrecorded (e.g. empty relation).
        """
        return float(self.get("dict_hit_rate", 0.0))

    # -- degradation ----------------------------------------------------
    @property
    def detector_cells_flagged(self) -> Dict[str, int]:
        """detector name -> cells flagged ahead of this run.

        Filled by the engine when ``config.detectors`` lists detectors
        beyond the FD path (``docs/scenarios.md``); empty otherwise.
        """
        return dict(self.get("detector_cells_flagged") or {})

    @property
    def degraded(self) -> bool:
        """True when any component fell back from exact to greedy."""
        return bool(self.get("degraded", False))

    @property
    def degraded_components(self) -> List[Dict[str, Any]]:
        """The components that degraded: index, fds, reason, budget."""
        return list(self.get("degraded_components", ()))

    # -- pruning --------------------------------------------------------
    @property
    def pruning(self) -> Dict[str, int]:
        """Aggregated pruning counters harvested from algorithm stats."""
        out: Dict[str, int] = {}
        for key in (
            "possible_pairs",
            "candidates_generated",
            "pairs_examined",
            "pairs_filtered",
            "pairs_verified",
            "kernel_calls",
            "index_builds",
            "index_reuses",
            "distinct_pairs_examined",
            "tuple_fanout",
            "vector_filter_passes",
            "target_tree_nodes_visited",
            "target_tree_nodes_pruned",
            "target_tree_edist_hits",
            "nodes_expanded",
            "combinations_pruned",
            "search_nodes_expanded",
            "search_bitset_ops",
            "search_bound_hits",
            "search_dominance_prunes",
            "search_heap_revalidations",
        ):
            if key in self:
                out[key] = int(self[key])
        return out

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the possible detection pairs never examined.

        0.0 for full pair scans (every pair examined) and whenever the
        detection counters are absent; approaches 1.0 when the
        ``indexed`` blocker discards almost the entire cross product.
        """
        possible = int(self.get("possible_pairs", 0))
        if not possible:
            return 0.0
        examined = int(self.get("pairs_examined", 0))
        return 1.0 - min(1.0, examined / possible)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One compact human-readable line for summaries and the CLI."""
        bits = [f"n_jobs={self.n_jobs}"]
        if "components" in self:
            bits.append(f"{len(self.components)} component(s)")
        if self.wall_seconds:
            bits.append(f"{self.wall_seconds:.3f}s")
        probes = self.cache_hits + self.cache_misses
        if probes:
            bits.append(f"cache hit rate {self.cache_hit_rate:.0%}")
        if self.get("possible_pairs"):
            bits.append(f"pair reduction {self.reduction_ratio:.0%}")
        if self.get("distinct_pairs_examined"):
            bits.append(
                f"{int(self['distinct_pairs_examined'])} distinct pair(s) "
                f"-> {int(self.get('tuple_fanout', 0))} tuple pair(s) "
                f"in {int(self.get('vector_filter_passes', 0))} "
                f"vector pass(es)"
            )
        if self.relation_bytes_shipped:
            bits.append(
                f"shipped {self.relation_bytes_shipped / 1024:.0f}KiB "
                f"(max task {self.task_bytes_max}B)"
            )
        if self.tasks_split:
            bits.append(
                f"split {self.tasks_split} search(es) into "
                f"{self.subtree_tasks} subtree task(s), "
                f"{self.steals} steal(s)"
            )
        if self.bound_exchange_hits or self.incumbent_publishes:
            bits.append(
                f"bound exchange {self.bound_exchange_hits} hit(s)/"
                f"{self.incumbent_publishes} publish(es)"
            )
        if self.degraded:
            bits.append(f"degraded x{len(self.degraded_components)}")
        return ", ".join(bits)


def as_execution_stats(stats: Optional[Dict[str, Any]]) -> ExecutionStats:
    """Wrap a plain stats mapping without copying semantics."""
    if isinstance(stats, ExecutionStats):
        return stats
    return ExecutionStats(stats or {})
