"""The parallel component-sharded repair executor.

Theorem 5 (the FD graph) and Section 3 (the violation graph) make
repair embarrassingly parallel: connected components never interact, so
each one is an independent work unit. This module turns that insight
into an execution layer:

* :class:`ComponentTask` — one schedulable unit: repair one FD-graph
  component of one relation under one :class:`~repro.exec.config.RepairConfig`.
* :func:`repair_component` — the per-component algorithm dispatch
  (moved here from the old ``Repairer._repair_component``), including
  the budget-based algorithm auto-selection and the anytime fallback.
* :class:`RepairExecutor` — shards a repair (or a whole batch of
  repairs) into component tasks, runs them serially (``n_jobs=1``) or
  across a ``ProcessPoolExecutor``, and merges results in stable
  component order.

**Determinism guarantee.** Every task is a pure function of its inputs
and results are merged in component order, so ``result.edits``,
``result.cost`` and the repaired relation are byte-identical for every
``n_jobs`` value. Warnings raised inside workers are captured and
re-emitted in the parent, in component order, so even the warning
stream is reproducible. See ``docs/parallelism.md``.

**Degradation.** Exact algorithms can exhaust their search budgets. The
executor handles this in two places, both loudly: pre-emptively, when a
component's violation-graph size exceeds ``config.component_budget``
(the exact search is hopeless, so its greedy counterpart runs instead);
and mid-search, when the expansion raises
``ExpansionLimitError`` / ``CombinationLimitError`` and
``fallback="greedy"`` is configured. Either way a
:class:`~repro.exec.stats.DegradedRepairWarning` is emitted and the
component is recorded in ``result.stats.degraded_components``.

**Bitset views and workers.** The search kernels operate on
:class:`~repro.core.graph.ComponentMasks` bitset views cached per
violation graph (``docs/search.md``). The views are plain Python state
(big-int masks and float lists), so tasks pickle cleanly; each worker
rebuilds its graphs' views lazily on first search, keeping shipped task
payloads small while the per-component kernels stay worker-local.

**Relation shipping.** Tasks do not embed the relation: they carry a
:class:`~repro.exec.shipping.RelationRef` resolved against a
process-local registry, and the encoded relation travels to each worker
exactly once through the pool *initializer*
(:mod:`repro.exec.shipping`: pickle-5 heads plus out-of-band column
buffers; a no-op under ``fork``, where workers inherit the registry
copy-on-write). Per-task request messages are down to component ids,
FD masks and the config; workers ship results back without the repaired
relation (the parent re-applies edits when merging). The measured
traffic lands in ``ExecutionStats`` as ``relation_bytes_shipped``,
``task_bytes_max`` / ``task_bytes_total`` and ``dict_hit_rate``.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.detection import DetectionReport, classify_violations
from repro.core.distances import DistanceModel, use_kernel
from repro.core.multi.appro import repair_multi_fd_appro
from repro.core.multi.exact import CombinationLimitError, repair_multi_fd_exact
from repro.core.multi.fdgraph import fd_components
from repro.core.multi.greedy import repair_multi_fd_greedy
from repro.core.repair import RepairResult, merge_results, squash_edits
from repro.core.single.exact import repair_single_fd_exact
from repro.core.single.greedy import repair_single_fd_greedy
from repro.core.single.mis import ExpansionLimitError
from repro.core.single.subtree import use_dispatcher
from repro.core.violation import FTViolation, group_patterns
from repro.dataset.relation import Relation
from repro.detect.base import (
    DetectorVerdict,
    install_flags,
    merge_verdicts,
    pack_flags,
    unpack_flags,
)
from repro.exec import bounds, shipping
from repro.exec.bounds import BoundExchange
from repro.exec.cache import shared_model
from repro.exec.config import RepairConfig
from repro.exec.planner import SchedulePlan, plan_schedule
from repro.exec.shipping import RelationRef
from repro.exec.subtrees import PoolSubtreeDispatcher
from repro.exec.stats import DegradedRepairWarning, ExecutionStats
from repro.index.registry import AttributeIndexRegistry
from repro.index.simjoin import SimilarityJoin
from repro.obs import CounterRegistry, Tracer, activate, current_tracer, span

#: exact algorithm -> the greedy algorithm it degrades to
GREEDY_COUNTERPART = {"exact-m": "greedy-m", "exact-s": "greedy-s"}

#: warning categories that may cross the process boundary
_WARNING_CATEGORIES = {
    "DegradedRepairWarning": DegradedRepairWarning,
    "DeprecationWarning": DeprecationWarning,
    "RuntimeWarning": RuntimeWarning,
    "UserWarning": UserWarning,
}


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComponentTask:
    """Repair one FD-graph component of one relation.

    The relation itself is not embedded: ``relation_ref`` is a
    :class:`~repro.exec.shipping.RelationRef` into the process-local
    registry (filled by :func:`~repro.exec.shipping.publish` in the
    parent and by the pool initializer in workers), which keeps the
    per-task message at component ids + FD masks + config.
    """

    index: int  #: merge position within the owning relation
    group: int  #: which relation of a batch this task belongs to
    relation_ref: RelationRef
    fds: Tuple[FD, ...]
    thresholds: Tuple[Tuple[FD, float], ...]  #: materialized per-FD taus
    config: RepairConfig
    #: packed detector flag map (:func:`repro.detect.pack_flags`) the
    #: worker installs around the component repair so violation-graph
    #: builds can annotate flagged vertices; ``None`` (the FD-only
    #: path) keeps the task message byte-for-byte what it was before
    #: detectors existed
    flags: Optional[Tuple[Tuple[int, str, Tuple[str, ...]], ...]] = None

    @property
    def relation(self) -> Relation:
        """The task's relation, resolved from the registry."""
        return shipping.resolve(self.relation_ref)


@dataclass
class ComponentOutcome:
    """What a worker ships back for one :class:`ComponentTask`."""

    index: int
    group: int
    result: RepairResult
    seconds: float
    algorithm: str  #: the algorithm that actually ran
    fd_names: List[str]  #: the component's FDs, in order
    patterns: int  #: largest per-FD violation-graph size of the component
    degraded: Optional[Dict[str, Any]]
    cache_hits: int
    cache_misses: int
    #: executing process and its CPU time — ``time.process_time`` is
    #: immune to time-sharing, so the scheduler's busy-skew accounting
    #: stays meaningful even on oversubscribed machines
    pid: int = 0
    cpu_seconds: float = 0.0
    captured_warnings: List[Tuple[str, str]] = field(default_factory=list)
    #: serialized worker-local span tree (n_jobs>1 with trace on); the
    #: parent grafts it under its live ``execute`` span. ``None`` when
    #: the task ran in-process (its spans nested live — never both).
    trace: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class DetectionTask:
    """Detect FT-violations of one FD of one relation."""

    index: int
    relation_ref: RelationRef
    fd: FD
    tau: float
    config: RepairConfig

    @property
    def relation(self) -> Relation:
        """The task's relation, resolved from the registry."""
        return shipping.resolve(self.relation_ref)


@dataclass
class DetectionOutcome:
    index: int
    fd_name: str
    violations: List[FTViolation]
    seconds: float
    possible_pairs: int
    candidates_generated: int
    pairs_examined: int
    pairs_filtered: int
    pairs_verified: int
    kernel_calls: int
    index_builds: int
    index_reuses: int
    blocker: Optional[str]
    cache_hits: int
    cache_misses: int
    #: distinct-dictionary-id counters; nonzero only for ``vectorized``
    distinct_pairs_examined: int = 0
    tuple_fanout: int = 0
    vector_filter_passes: int = 0
    #: executing process and CPU time (see ComponentOutcome)
    pid: int = 0
    cpu_seconds: float = 0.0
    #: serialized worker-local span tree (see ComponentOutcome.trace)
    trace: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# Per-component repair (the former Repairer._repair_component)
# ----------------------------------------------------------------------
def component_size(
    relation: Relation, fds: Sequence[FD]
) -> Tuple[int, Dict[str, int]]:
    """Violation-graph node counts of a component: (max, per-FD).

    The violation graph of an FD has one vertex per distinct projection
    pattern, so the pattern count *is* the graph size — and it is
    computable in one linear scan, long before any quadratic join.
    """
    sizes = {fd.name: len(group_patterns(relation, fd)) for fd in fds}
    return (max(sizes.values()) if sizes else 0), sizes


def repair_component(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    config: RepairConfig,
) -> Tuple[RepairResult, Dict[str, Any]]:
    """Repair one FD-graph component; returns (result, execution meta).

    Meta records the algorithm actually used, the component's graph
    size, and a degradation record when an exact search was skipped
    (``component_budget``) or abandoned (anytime fallback).
    """
    algorithm = config.algorithm
    patterns, sizes = component_size(relation, fds)
    names = [fd.name for fd in fds]
    meta: Dict[str, Any] = {
        "algorithm": algorithm,
        "patterns": patterns,
        "pattern_sizes": sizes,
        "degraded": None,
    }

    # Budget-based auto-selection: exact search on an oversized component
    # is hopeless; degrade up front rather than mid-expansion.
    budget = config.component_budget
    if algorithm in GREEDY_COUNTERPART and budget is not None and patterns > budget:
        degraded_to = GREEDY_COUNTERPART[algorithm]
        warnings.warn(
            f"component {names} has {patterns} violation-graph node(s), "
            f"over the component_budget of {budget}; degrading "
            f"{algorithm} -> {degraded_to} for this component",
            DegradedRepairWarning,
            stacklevel=2,
        )
        meta["degraded"] = {
            "fds": names,
            "reason": "component_budget",
            "budget": budget,
            "patterns": patterns,
            "from": algorithm,
            "to": degraded_to,
        }
        algorithm = degraded_to

    meta["algorithm"] = algorithm
    try:
        result = _dispatch(relation, fds, model, thresholds, algorithm, config)
    except (ExpansionLimitError, CombinationLimitError) as exc:
        if config.fallback != "greedy":
            raise
        degraded_to = GREEDY_COUNTERPART[algorithm]
        record = {
            "fds": names,
            "reason": "budget_exhausted",
            "error": type(exc).__name__,
            "from": algorithm,
            "to": degraded_to,
        }
        where = ""
        if isinstance(exc, ExpansionLimitError):
            # Attribute the trip: which budget, how far the expansion
            # got, and — when a split search degraded — which subtree
            # chunk hit the wall (its lineage segment).
            record["limit"] = exc.limit
            record["nodes_generated"] = exc.nodes_generated
            record["level"] = exc.level
            if exc.subtree is not None:
                record["subtree"] = list(exc.subtree)
                lineage = "/".join(str(part) for part in exc.subtree)
                where = f" in split subtree {lineage}"
        warnings.warn(
            f"{algorithm} exhausted its search budget on component {names}"
            f"{where} ({type(exc).__name__}: {exc}); degrading to "
            f"{degraded_to} for this component",
            DegradedRepairWarning,
            stacklevel=2,
        )
        meta["degraded"] = record
        meta["algorithm"] = degraded_to
        result = _dispatch(relation, fds, model, thresholds, degraded_to, config)
        result.stats["fallback_from"] = algorithm
    if meta["degraded"] is not None:
        result.stats["degraded"] = True
    return result, meta


def _dispatch(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    algorithm: str,
    config: RepairConfig,
) -> RepairResult:
    """Run *algorithm* on one component (no fallback handling)."""
    if algorithm in ("exact-s", "greedy-s"):
        return _repair_sequential(relation, fds, model, thresholds, algorithm, config)
    if algorithm == "appro-m":
        return repair_multi_fd_appro(
            relation,
            fds,
            model,
            thresholds,
            use_tree=config.use_tree,
            join_strategy=config.join_strategy,
        )
    if algorithm == "greedy-m":
        return repair_multi_fd_greedy(
            relation,
            fds,
            model,
            thresholds,
            use_tree=config.use_tree,
            join_strategy=config.join_strategy,
        )
    # exact-m
    return repair_multi_fd_exact(
        relation,
        fds,
        model,
        thresholds,
        use_tree=config.use_tree,
        max_nodes=config.max_nodes,
        max_combinations=config.max_combinations,
        join_strategy=config.join_strategy,
    )


def _repair_sequential(
    relation: Relation,
    fds: Sequence[FD],
    model: DistanceModel,
    thresholds: Dict[FD, float],
    algorithm: str,
    config: RepairConfig,
) -> RepairResult:
    """Apply the single-FD algorithm FD by FD on the evolving data."""
    current = relation
    edits: List = []
    total = 0.0
    # One registry across the FD loop: attributes untouched by earlier
    # repairs reuse their indexes, changed ones fail validation and
    # rebuild (the registry checks its value set per call).
    registry = AttributeIndexRegistry()
    for fd in fds:
        if algorithm == "exact-s":
            # ExpansionLimitError propagates to repair_component, which
            # owns the (warned) greedy fallback.
            step = repair_single_fd_exact(
                current,
                fd,
                model,
                thresholds[fd],
                max_nodes=config.max_nodes,
                join_strategy=config.join_strategy,
                registry=registry,
            )
        else:
            step = repair_single_fd_greedy(
                current,
                fd,
                model,
                thresholds[fd],
                join_strategy=config.join_strategy,
                registry=registry,
            )
        current = step.relation
        edits.extend(step.edits)
        total += step.cost
    return RepairResult(current, squash_edits(edits), total, {})


# ----------------------------------------------------------------------
# Worker entry points (must be module-level for pickling)
# ----------------------------------------------------------------------
def _run_component_task(task: ComponentTask) -> ComponentOutcome:
    """Execute one component task; pure function of the task.

    Tracing: in-process (the serial path) an active tracer already
    exists, so the task's spans nest live under the parent's
    ``execute`` span. In a worker process there is no inherited tracer;
    when the config asks for tracing, a worker-local tracer records the
    task and ships its serialized tree back in ``outcome.trace`` for
    the parent to graft. Exactly one of the two happens, which is what
    keeps merged span trees free of double counting at every n_jobs.
    """
    tracer = current_tracer()
    attrs = {
        "index": task.index,
        "group": task.group,
        "fds": [fd.name for fd in task.fds],
    }
    if tracer is not None and tracer.enabled:
        with tracer.span("component", **attrs):
            return _component_outcome(task)
    if task.config.trace:
        local = Tracer("component", **attrs)
        with activate(local):
            outcome = _component_outcome(task)
        outcome.trace = local.serialize()
        return outcome
    return _component_outcome(task)


def _component_outcome(task: ComponentTask) -> ComponentOutcome:
    model = shared_model(
        task.relation, task.config.weights, task.config.distance_overrides
    )
    hits0, misses0 = model.cache_hits, model.cache_misses
    start = time.perf_counter()
    cpu0 = time.process_time()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        with use_kernel(task.config.kernel):
            with install_flags(
                unpack_flags(task.flags) if task.flags else None
            ):
                result, meta = repair_component(
                    task.relation,
                    task.fds,
                    model,
                    dict(task.thresholds),
                    task.config,
                )
    seconds = time.perf_counter() - start
    # process_time of a coordinated task naturally excludes its subtree
    # chunks' CPU — they burn cycles in worker processes — so per-unit
    # CPU accounting stays additive under splitting.
    cpu_seconds = time.process_time() - cpu0
    return ComponentOutcome(
        index=task.index,
        group=task.group,
        result=result,
        seconds=seconds,
        algorithm=meta["algorithm"],
        fd_names=[fd.name for fd in task.fds],
        patterns=meta["patterns"],
        degraded=meta["degraded"],
        cache_hits=model.cache_hits - hits0,
        cache_misses=model.cache_misses - misses0,
        pid=os.getpid(),
        cpu_seconds=cpu_seconds,
        captured_warnings=[
            (w.category.__name__, str(w.message)) for w in caught
        ],
    )


def _run_detection_task(task: DetectionTask) -> DetectionOutcome:
    """Detect the FT-violations of one FD; pure function of the task.

    Tracing follows the same live-or-shipped split as
    :func:`_run_component_task`.
    """
    tracer = current_tracer()
    if tracer is not None and tracer.enabled:
        with tracer.span("fd", index=task.index, fd=task.fd.name):
            return _detection_outcome(task)
    if task.config.trace:
        local = Tracer("fd", index=task.index, fd=task.fd.name)
        with activate(local):
            outcome = _detection_outcome(task)
        outcome.trace = local.serialize()
        return outcome
    return _detection_outcome(task)


def _detection_outcome(task: DetectionTask) -> DetectionOutcome:
    model = shared_model(
        task.relation, task.config.weights, task.config.distance_overrides
    )
    hits0, misses0 = model.cache_hits, model.cache_misses
    start = time.perf_counter()
    cpu0 = time.process_time()
    patterns = group_patterns(task.relation, task.fd)
    join = SimilarityJoin(
        task.fd, model, task.tau, strategy=task.config.join_strategy
    )
    with use_kernel(task.config.kernel):
        violations = join.join(patterns)
    cpu_seconds = time.process_time() - cpu0
    return DetectionOutcome(
        index=task.index,
        fd_name=task.fd.name,
        violations=violations,
        seconds=time.perf_counter() - start,
        possible_pairs=join.possible_pairs,
        candidates_generated=join.candidates_generated,
        pairs_examined=join.pairs_examined,
        pairs_filtered=join.pairs_filtered,
        pairs_verified=join.pairs_verified,
        kernel_calls=join.kernel_calls,
        index_builds=join.index_builds,
        index_reuses=join.index_reuses,
        distinct_pairs_examined=join.distinct_pairs_examined,
        tuple_fanout=join.tuple_fanout,
        vector_filter_passes=join.vector_filter_passes,
        blocker=join.plan.describe() if join.plan is not None else None,
        cache_hits=model.cache_hits - hits0,
        cache_misses=model.cache_misses - misses0,
        pid=os.getpid(),
        cpu_seconds=cpu_seconds,
    )


def _run_component_task_lean(task: ComponentTask) -> ComponentOutcome:
    """Worker-side wrapper: drop the repaired relation from the response.

    The parent's merge re-applies the edits onto its own copy
    (:func:`~repro.core.repair.merge_results` never reads
    ``part.relation``), so shipping the repaired relation back would be
    pure pickle traffic. Used only on the pool path; the in-process path
    keeps the full outcome.
    """
    outcome = _run_component_task(task)
    outcome.result.relation = None  # type: ignore[assignment]
    return outcome


#: runner -> its response-slimming counterpart for the pool path
_LEAN_RUNNERS = {_run_component_task: _run_component_task_lean}


def _reemit(captured: Sequence[Tuple[str, str]]) -> None:
    """Replay warnings captured in a worker in the parent process."""
    for category_name, message in captured:
        category = _WARNING_CATEGORIES.get(category_name, UserWarning)
        warnings.warn(message, category, stacklevel=3)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class RepairExecutor:
    """Shard repairs into component tasks and run them under a config.

    ``n_jobs=1`` (the default) runs every task in-process, in order —
    the deterministic serial fallback. ``n_jobs>1`` fans tasks out over
    a ``ProcessPoolExecutor``; ``n_jobs=-1`` uses one worker per CPU.
    Results are identical either way (see the module docstring).

    The executor is stateless between calls; it can be reused across
    relations and is itself cheap to construct.
    """

    def __init__(self, config: Optional[RepairConfig] = None) -> None:
        self.config = config or RepairConfig()

    # ------------------------------------------------------------------
    def repair(
        self,
        relation: Relation,
        fds: Sequence[FD],
        thresholds: Dict[FD, float],
        verdicts: Optional[Sequence[DetectorVerdict]] = None,
    ) -> RepairResult:
        """Repair *relation* against *fds*; input never mutated.

        *verdicts* — detector verdicts (``config.detectors``) whose
        merged flag map annotates every component's violation graphs
        ahead of search. Advisory only: the repair is byte-identical
        with or without them.
        """
        return self.repair_many(
            [(relation, fds, thresholds)],
            verdicts=[verdicts] if verdicts else None,
        )[0]

    def repair_many(
        self,
        jobs: Sequence[Tuple[Relation, Sequence[FD], Dict[FD, float]]],
        verdicts: Optional[
            Sequence[Optional[Sequence[DetectorVerdict]]]
        ] = None,
    ) -> List[RepairResult]:
        """Repair a batch of (relation, fds, thresholds) jobs.

        All components of all jobs enter one task queue and share one
        worker pool — the unit of scheduling is the component, so a
        batch parallelizes even when each relation has few components.
        Results come back in job order, each merged in component order.
        """
        tasks: List[ComponentTask] = []
        # snapshot the input encodings before any repair interns repaired
        # values into the (shared) dictionaries — keeps dict_hit_rate a
        # property of the input, identical for every n_jobs
        snapshots = [_dict_snapshot(relation) for relation, _, _ in jobs]
        for group, (relation, fds, thresholds) in enumerate(jobs):
            ref = shipping.publish(relation)
            job_verdicts = verdicts[group] if verdicts else None
            flags = (
                pack_flags(merge_verdicts(job_verdicts))
                if job_verdicts
                else None
            ) or None
            for index, component in enumerate(fd_components(list(fds))):
                tasks.append(
                    ComponentTask(
                        index=index,
                        group=group,
                        relation_ref=ref,
                        fds=tuple(component),
                        thresholds=tuple(
                            (fd, float(thresholds[fd])) for fd in component
                        ),
                        config=self.config,
                        flags=flags,
                    )
                )
        outcomes, elapsed, workers, traffic = self._run(
            tasks, _run_component_task
        )

        results: List[RepairResult] = []
        utilization = _utilization(outcomes, elapsed, workers)
        for group, (relation, fds, thresholds) in enumerate(jobs):
            mine = sorted(
                (o for o in outcomes if o.group == group), key=lambda o: o.index
            )
            results.append(
                self._merge(
                    relation, list(fds), thresholds, mine, elapsed, workers,
                    utilization, {**traffic, **snapshots[group]},
                )
            )
        return results

    def detect(
        self,
        relation: Relation,
        fds: Sequence[FD],
        thresholds: Dict[FD, float],
    ) -> DetectionReport:
        """Detection only: one task per FD, merged in FD order."""
        ref = shipping.publish(relation)
        snapshot = _dict_snapshot(relation)
        tasks = [
            DetectionTask(
                index=i,
                relation_ref=ref,
                fd=fd,
                tau=float(thresholds[fd]),
                config=self.config,
            )
            for i, fd in enumerate(fds)
        ]
        outcomes, elapsed, workers, traffic = self._run(
            tasks, _run_detection_task
        )
        outcomes.sort(key=lambda o: o.index)

        violations: Dict[str, List[FTViolation]] = {}
        suspects: Dict[str, Set[int]] = {}
        likely: Dict[str, Set[int]] = {}
        per_fd: List[Dict[str, Any]] = []
        for outcome in outcomes:
            violations[outcome.fd_name] = outcome.violations
            tids, minority = classify_violations(outcome.violations)
            suspects[outcome.fd_name] = tids
            likely[outcome.fd_name] = minority
            per_fd.append(
                {
                    "fd": outcome.fd_name,
                    "seconds": outcome.seconds,
                    "cpu_seconds": outcome.cpu_seconds,
                    "pid": outcome.pid,
                    "violations": len(outcome.violations),
                    "possible_pairs": outcome.possible_pairs,
                    "candidates_generated": outcome.candidates_generated,
                    "pairs_examined": outcome.pairs_examined,
                    "pairs_filtered": outcome.pairs_filtered,
                    "pairs_verified": outcome.pairs_verified,
                    "kernel_calls": outcome.kernel_calls,
                    "index_builds": outcome.index_builds,
                    "index_reuses": outcome.index_reuses,
                    "distinct_pairs_examined": outcome.distinct_pairs_examined,
                    "tuple_fanout": outcome.tuple_fanout,
                    "vector_filter_passes": outcome.vector_filter_passes,
                    "blocker": outcome.blocker,
                }
            )
        stats = ExecutionStats(
            {
                "n_jobs": workers,
                "wall_seconds": elapsed,
                "worker_utilization": _utilization(outcomes, elapsed, workers),
                "components": per_fd,
                "violations": sum(len(o.violations) for o in outcomes),
                "cache_hits": sum(o.cache_hits for o in outcomes),
                "cache_misses": sum(o.cache_misses for o in outcomes),
                "possible_pairs": sum(o.possible_pairs for o in outcomes),
                "candidates_generated": sum(
                    o.candidates_generated for o in outcomes
                ),
                "pairs_examined": sum(o.pairs_examined for o in outcomes),
                "pairs_filtered": sum(o.pairs_filtered for o in outcomes),
                "pairs_verified": sum(o.pairs_verified for o in outcomes),
                "kernel_calls": sum(o.kernel_calls for o in outcomes),
                "index_builds": sum(o.index_builds for o in outcomes),
                "index_reuses": sum(o.index_reuses for o in outcomes),
                "distinct_pairs_examined": sum(
                    o.distinct_pairs_examined for o in outcomes
                ),
                "tuple_fanout": sum(o.tuple_fanout for o in outcomes),
                "vector_filter_passes": sum(
                    o.vector_filter_passes for o in outcomes
                ),
            }
        )
        stats.update(traffic)
        stats.update(snapshot)
        _register_stats(stats)
        return DetectionReport(
            relation_size=len(relation),
            thresholds={fd.name: float(thresholds[fd]) for fd in fds},
            violations=violations,
            suspects=suspects,
            likely_errors=likely,
            stats=stats,
            timings={"detect": elapsed},
        )

    # ------------------------------------------------------------------
    def _run(self, tasks, runner) -> Tuple[List[Any], float, int, Dict[str, Any]]:
        """Run tasks serially or across the pool; stable output order.

        Returns (outcomes, elapsed wall seconds, effective workers,
        traffic counters). Warnings captured inside tasks are re-emitted
        here, in task order, so the warning stream is identical for
        every n_jobs. When tracing, the whole run is one ``execute``
        span; worker-local span trees shipped in ``outcome.trace`` are
        grafted under it in task order (the in-process path nested its
        spans live instead).

        On the pool path the relations behind the tasks' refs are packed
        once (pickle-5, out-of-band column buffers) and delivered through
        the pool *initializer*; per-task messages carry only the ref.
        The traffic dict records what actually crossed (or would cross,
        under ``fork``'s copy-on-write inheritance) the process boundary.
        """
        capped = self.config.effective_jobs(len(tasks))
        raw = self.config.effective_jobs()
        splittable = (
            runner is _run_component_task
            and raw > 1
            and self.config.split_threshold is not None
        )
        plan: Optional[SchedulePlan] = None
        if raw > 1 and (len(tasks) > 1 or splittable):
            plan = plan_schedule(
                tasks, raw, self.config.split_threshold, splittable
            )
        coordinated = set(plan.coordinated) if plan is not None else set()
        # A coordinated run keeps the full pool even with few tasks —
        # the giant component's subtree tasks are what fill it.
        workers = raw if coordinated else capped
        use_pool = workers > 1 and (len(tasks) > 1 or bool(coordinated))
        traffic: Dict[str, Any] = {
            "relations_shipped": 0,
            "relation_payload_bytes": 0,
            "relation_bytes_shipped": 0,
            "task_bytes_max": 0,
            "task_bytes_total": 0,
            "tasks_coordinated": len(coordinated),
            "tasks_split": 0,
            "subtree_tasks": 0,
            "steals": 0,
            "incumbent_publishes": 0,
            "bound_exchange_hits": 0,
            "subtree_bytes_total": 0,
            "subtree_bytes_max": 0,
            "subtree_cpu_seconds": [],
            "busy_skew_ratio": 1.0,
        }
        start = time.perf_counter()
        with span("execute", tasks=len(tasks)) as execute_span:
            if not use_pool:
                workers = 1
                outcomes = [runner(task) for task in tasks]
            else:
                assert plan is not None
                outcomes = self._run_pool(
                    tasks, runner, workers, plan, coordinated, traffic
                )
            execute_span.set(
                n_jobs=workers,
                relation_bytes_shipped=traffic["relation_bytes_shipped"],
                task_bytes_max=traffic["task_bytes_max"],
                tasks_coordinated=traffic["tasks_coordinated"],
                tasks_split=traffic["tasks_split"],
                subtree_tasks=traffic["subtree_tasks"],
                steals=traffic["steals"],
                busy_skew_ratio=traffic["busy_skew_ratio"],
            )
            tracer = current_tracer()
            if tracer is not None and tracer.enabled:
                for outcome in outcomes:
                    tree = getattr(outcome, "trace", None)
                    if tree:
                        tracer.graft(tree)
        elapsed = time.perf_counter() - start
        for outcome in outcomes:
            _reemit(getattr(outcome, "captured_warnings", ()))
        return outcomes, elapsed, workers, traffic

    def _run_pool(
        self,
        tasks,
        runner,
        workers: int,
        plan: SchedulePlan,
        coordinated: Set[int],
        traffic: Dict[str, Any],
    ) -> List[Any]:
        """The pool path: planned submission plus coordinated execution.

        Plain tasks are submitted largest-estimated-first so the long
        pole starts immediately instead of wherever discovery order put
        it. Coordinated tasks (a dominant, splittable component) run in
        the parent under a :class:`PoolSubtreeDispatcher` — their
        branch-and-bound frontiers are cut into subtree tasks that
        interleave with the plain queue on the same pool. The shared
        incumbent array must be allocated and installed *before* the
        pool exists so forked workers inherit it.
        """
        payload = shipping.pack([task.relation_ref for task in tasks])
        sizes = [len(pickle.dumps(task, protocol=5)) for task in tasks]
        payload_bytes = shipping.payload_nbytes(payload)
        traffic.update(
            relations_shipped=len(payload),
            relation_payload_bytes=payload_bytes,
            relation_bytes_shipped=payload_bytes * workers,
            task_bytes_max=max(sizes),
            task_bytes_total=sum(sizes),
        )
        lean = _LEAN_RUNNERS.get(runner, runner)
        exchange: Optional[BoundExchange] = None
        if coordinated and self.config.bound_exchange:
            exchange = BoundExchange()
            bounds.install(exchange.array)
        dispatcher: Optional[PoolSubtreeDispatcher] = None
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=shipping.install,
                initargs=(payload,),
            ) as pool:
                futures = {
                    position: pool.submit(lean, tasks[position])
                    for position in plan.order
                    if position not in coordinated
                }
                parented: Dict[int, Any] = {}
                if coordinated:
                    dispatcher = PoolSubtreeDispatcher(
                        pool, self.config, exchange, traffic
                    )
                    with use_dispatcher(dispatcher):
                        for position in plan.order:
                            if position in coordinated:
                                parented[position] = runner(tasks[position])
                outcomes = [
                    parented[position]
                    if position in parented
                    else futures[position].result()
                    for position in range(len(tasks))
                ]
        except (TypeError, AttributeError) as exc:  # unpicklable
            raise RuntimeError(
                "parallel execution requires picklable FDs, "
                "relations and distance overrides (module-level "
                f"functions, not lambdas); underlying error: {exc}"
            ) from exc
        finally:
            bounds.clear()
        traffic["busy_skew_ratio"] = _busy_skew(outcomes, dispatcher)
        return outcomes

    def _merge(
        self,
        relation: Relation,
        fds: List[FD],
        thresholds: Dict[FD, float],
        outcomes: List[ComponentOutcome],
        elapsed: float,
        workers: int,
        utilization: float,
        traffic: Dict[str, Any],
    ) -> RepairResult:
        merged = merge_results(relation, [o.result for o in outcomes])
        stats = ExecutionStats(merged.stats)
        stats["algorithm"] = self.config.algorithm
        stats["thresholds"] = {fd.name: float(thresholds[fd]) for fd in fds}
        stats["fd_components"] = len(outcomes)
        stats["n_jobs"] = workers
        stats["wall_seconds"] = elapsed
        stats["worker_utilization"] = utilization
        stats["components"] = [
            {
                "index": o.index,
                "fds": list(o.fd_names),
                "algorithm": o.algorithm,
                "seconds": o.seconds,
                "cpu_seconds": o.cpu_seconds,
                "pid": o.pid,
                "patterns": o.patterns,
                "degraded": o.degraded is not None,
            }
            for o in outcomes
        ]
        stats["cache_hits"] = sum(o.cache_hits for o in outcomes)
        stats["cache_misses"] = sum(o.cache_misses for o in outcomes)
        degraded = [o.degraded for o in outcomes if o.degraded is not None]
        stats["degraded"] = bool(degraded)
        stats["degraded_components"] = degraded
        stats.update(traffic)
        _register_stats(stats)
        merged.stats = stats
        merged.timings["execute"] = elapsed
        return merged


def _dict_snapshot(relation: Relation) -> Dict[str, Any]:
    """The input relation's dictionary-encoding stats, if columnar.

    Taken *before* execution: repairs intern repaired values into the
    (shared) dictionaries, so a post-run read would depend on where the
    repair ran. The snapshot is a property of the input encoding alone
    and therefore identical for every n_jobs.
    """
    dict_stats = getattr(relation, "dict_stats", None)
    if dict_stats is None:
        return {}
    snapshot = dict_stats()
    return {
        "dictionary_entries": snapshot["dictionary_entries"],
        "dict_hit_rate": snapshot["dict_hit_rate"],
    }


def _register_stats(stats: ExecutionStats) -> None:
    """Expose *stats* as the run's unified counter view.

    The registry is **backed by the ExecutionStats dict itself** — the
    stats object is the registry's storage, so the run report's
    ``counters`` section and ``result.stats`` read the same cells
    rather than keeping parallel bookkeeping (``docs/observability.md``).
    """
    tracer = current_tracer()
    if tracer is not None and tracer.enabled:
        tracer.register(CounterRegistry(backing=stats))


def _utilization(outcomes, elapsed: float, workers: int) -> float:
    busy = sum(o.seconds for o in outcomes)
    if elapsed <= 0 or workers <= 0:
        return 1.0
    return min(1.0, busy / (elapsed * workers))


def _busy_skew(outcomes, dispatcher) -> float:
    """Max/mean busy seconds across the processes that did the work.

    1.0 is a perfectly balanced run; a static schedule with one giant
    component approaches the worker count. Subtree busy time (tracked by
    the dispatcher per worker pid) is added to the pid that ran it, and
    the parent's coordinated time excludes the seconds it merely spent
    waiting on subtree futures.
    """
    parent = os.getpid()
    busy: Dict[int, float] = {}
    parent_busy = 0.0
    for outcome in outcomes:
        pid = getattr(outcome, "pid", 0)
        seconds = getattr(outcome, "seconds", 0.0)
        if pid == parent:
            parent_busy += seconds
        elif pid:
            busy[pid] = busy.get(pid, 0.0) + seconds
    if dispatcher is not None:
        for pid, seconds in dispatcher.busy.items():
            busy[pid] = busy.get(pid, 0.0) + seconds
        parent_busy = max(0.0, parent_busy - dispatcher.wait_seconds)
    if parent_busy > 0.0:
        busy[parent] = busy.get(parent, 0.0) + parent_busy
    if not busy:
        return 1.0
    values = list(busy.values())
    mean = sum(values) / len(values)
    if mean <= 0.0:
        return 1.0
    return max(values) / mean
