"""Cost-model-driven schedule planning for the executor.

Component tasks vary by orders of magnitude: the violation graph of one
FD can hold two patterns or two thousand. Before PR 7 the executor
submitted tasks in discovery order, so a dominant component discovered
late serialized the tail of the run. This module plans the dispatch:

* :func:`estimate_task` — per-task work from pattern counts, the same
  one-linear-scan signal ``component_size`` uses for budget decisions.
  The similarity join and the search are both superlinear in the
  pattern count, so ``sum(p_fd^2)`` ranks tasks correctly even though
  it undershoots exponential search blow-ups (which only *strengthens*
  the largest-first policy).
* :func:`plan_schedule` — a size-ordered submission queue
  (largest-estimated-first, stable on index), plus the *coordinated*
  subset: tasks whose estimate exceeds ``total / workers`` — one
  component's share of a perfectly balanced run — are executed in the
  parent under a subtree dispatcher so their branch-and-bound frontier
  can be split across the same pool (``docs/parallelism.md``).

Coordination additionally requires the task's largest per-FD graph to
reach ``split_threshold``: below it nothing would split, and the task
is better off in a worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.violation import group_patterns


@dataclass(frozen=True)
class SchedulePlan:
    """The planned dispatch of one executor run."""

    order: List[int]  #: submission order: largest estimate first
    coordinated: List[int]  #: run in-parent with a subtree dispatcher
    estimates: List[float]  #: per-task work estimates (task order)


def estimate_task(task) -> Tuple[float, int]:
    """(work estimate, largest per-FD pattern count) of one task.

    Component tasks sum ``patterns^2`` over their FDs; detection tasks
    are one FD. One linear scan per FD — the same cost the budget check
    already pays inside the task.
    """
    relation = task.relation
    fds = task.fds if hasattr(task, "fds") else (task.fd,)
    estimate = 0.0
    largest = 0
    for fd in fds:
        patterns = len(group_patterns(relation, fd))
        estimate += float(patterns * patterns)
        if patterns > largest:
            largest = patterns
    return estimate, largest


def plan_schedule(
    tasks: Sequence,
    workers: int,
    split_threshold: Optional[int] = None,
    splittable: bool = False,
) -> SchedulePlan:
    """Plan submission order and the coordinated (split) subset.

    A task is coordinated when splitting is available for this run
    (*splittable*), its estimate dominates (``> total / workers``), and
    its largest violation graph reaches *split_threshold* (otherwise no
    component of it would split and parent-side execution buys
    nothing).
    """
    pairs = [estimate_task(task) for task in tasks]
    estimates = [estimate for estimate, _ in pairs]
    order = sorted(range(len(tasks)), key=lambda i: (-estimates[i], i))
    coordinated: List[int] = []
    if splittable and split_threshold is not None and workers > 1 and tasks:
        total = sum(estimates)
        cutoff = total / workers
        coordinated = [
            i
            for i in order
            if estimates[i] > cutoff and pairs[i][1] >= split_threshold
        ]
    return SchedulePlan(
        order=order, coordinated=coordinated, estimates=estimates
    )
