"""Process-safe memoized distance cache.

The q-gram / edit-distance pipeline recomputes the same value-pair
distances again and again: every FD of a component probes the shared
:class:`~repro.core.distances.DistanceModel` cache, but that cache dies
with its model — a new repair, a new worker task, a new process all
start cold.

This module keeps one cache dictionary alive **per worker process**,
keyed by a fingerprint of the distance semantics (schema kinds, numeric
spreads, override functions). Two models with the same fingerprint
produce identical distances by construction, so sharing their memo is
sound; a fingerprint change (different relation shape or normalizers)
gets a fresh dictionary. The registry is bounded so a long-lived worker
serving many differently-shaped relations cannot grow without limit.

No locks are needed: each worker process owns its dictionaries, and the
parent process only ever aggregates the hit/miss counters shipped back
with task results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.core.distances import DistanceFn, DistanceModel, Weights
from repro.dataset.relation import NUMERIC, Relation, Schema

#: retained fingerprints per process; oldest evicted beyond this
MAX_RETAINED_FINGERPRINTS = 8

_caches: "OrderedDict[Tuple, Dict]" = OrderedDict()


def model_fingerprint(
    schema: Schema,
    spreads: Dict[str, float],
    overrides: Optional[Dict[str, DistanceFn]] = None,
) -> Tuple:
    """A hashable token identifying the distance semantics of a model.

    Weights are deliberately excluded: per-attribute distances (the
    cached quantity) do not depend on the Eq. (2) weights.
    """
    schema_sig = tuple((attr.name, attr.kind) for attr in schema)
    spread_sig = tuple(sorted(spreads.items()))
    override_sig = tuple(
        sorted(
            (name, getattr(fn, "__qualname__", repr(fn)))
            for name, fn in (overrides or {}).items()
        )
    )
    return (schema_sig, spread_sig, override_sig)


def worker_distance_cache(fingerprint: Tuple) -> Dict:
    """The process-local memo dictionary for *fingerprint*.

    Subsequent calls with the same fingerprint return the same (warm)
    dictionary; unseen fingerprints allocate one, evicting the least
    recently used beyond :data:`MAX_RETAINED_FINGERPRINTS`.
    """
    cache = _caches.get(fingerprint)
    if cache is None:
        cache = {}
        _caches[fingerprint] = cache
    else:
        _caches.move_to_end(fingerprint)
    while len(_caches) > MAX_RETAINED_FINGERPRINTS:
        _caches.popitem(last=False)
    return cache


def clear_worker_caches() -> None:
    """Drop every retained cache (tests, memory pressure)."""
    _caches.clear()


def shared_model(
    relation: Relation,
    weights: Weights = Weights(),
    overrides: Optional[Dict[str, DistanceFn]] = None,
) -> DistanceModel:
    """A :class:`DistanceModel` backed by the worker-persistent cache.

    This is what executor worker tasks build: distances memoized in one
    task stay warm for every later task of the same fingerprint that
    lands on the same worker.
    """
    spreads = {
        attr.name: relation.value_range(attr.name)
        for attr in relation.schema
        if attr.kind == NUMERIC
    }
    fingerprint = model_fingerprint(relation.schema, spreads, overrides)
    return DistanceModel(
        relation,
        weights=weights,
        overrides=overrides,
        cache=worker_distance_cache(fingerprint),
    )


def retained_fingerprints() -> int:
    """How many distinct caches this process currently holds."""
    return len(_caches)
