"""One-shot relation shipping for the parallel executor.

The pre-1.2 executor embedded the full :class:`Relation` in every
:class:`~repro.exec.executor.ComponentTask`, so a run with ``C``
components pickled the relation ``C`` times through the worker pipes.
This module makes the relation a **pool-lifetime resource** instead:

* :func:`publish` registers a relation in a process-local registry and
  returns a tiny :class:`RelationRef` handle — the only relation-shaped
  thing a task carries. Per-task messages shrink to component ids,
  FD masks and the config.
* :func:`pack` encodes each published relation once with pickle
  protocol 5: the id columns travel as out-of-band buffers
  (``PickleBuffer`` frames over the ``array('I')`` storage, no
  intermediate pickle copy), the per-attribute dictionaries as one
  value list each (the id map is rebuilt on load).
* :func:`install` is the ``ProcessPoolExecutor`` *initializer*: each
  worker decodes the payload exactly once, before its first task. Under
  the default ``fork`` start method the registry is inherited
  copy-on-write and the decode is skipped entirely — the zero-copy fast
  path; under ``spawn`` the payload crosses the pipe once per worker
  rather than once per task.
* :func:`resolve` is how a task body (parent or worker) gets the actual
  relation back from its ref.

The executor threads the measured traffic through
:class:`~repro.exec.stats.ExecutionStats` and the ``execute`` span:
``relation_bytes_shipped`` (encoded payload bytes crossing process
boundaries: payload size × workers; 0 for serial runs and refs resolved
in-process), ``task_bytes_max`` / ``task_bytes_total`` (the per-task
request messages), and ``dict_hit_rate`` (the input relation's
interning hit rate). See ``docs/parallelism.md``.
"""

from __future__ import annotations

import itertools
import os
import pickle
import weakref
from array import array
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dataset.relation import Relation, ValueDictionary

__all__ = [
    "RelationRef",
    "ShippedRelation",
    "publish",
    "resolve",
    "pack",
    "install",
    "encode_relation",
    "decode_relation",
    "installed_count",
    "clear_installed",
]


@dataclass(frozen=True)
class RelationRef:
    """A tiny, picklable handle to a published relation."""

    token: str

    def __repr__(self) -> str:  # keep task reprs readable
        return f"RelationRef({self.token})"


@dataclass(frozen=True)
class ShippedRelation:
    """One relation encoded for worker delivery (token + pickle-5 parts)."""

    token: str
    head: bytes
    frames: Tuple[bytes, ...]

    @property
    def nbytes(self) -> int:
        """Total encoded size in bytes."""
        return len(self.head) + sum(len(frame) for frame in self.frames)


#: relations published by this process (the parent side of a run); weak
#: so a registry entry never outlives its caller's relation
_PUBLISHED: "weakref.WeakValueDictionary[str, Relation]" = (
    weakref.WeakValueDictionary()
)

#: relations installed into this process by a pool initializer (worker
#: side); replaced wholesale on each install, so a long-lived worker
#: holds at most one pool's relations
_INSTALLED: Dict[str, Relation] = {}

_SEQ = itertools.count()


def publish(relation: Relation) -> RelationRef:
    """Register *relation* for shipping; idempotent per content version.

    The minted token is cached on the relation and reused as long as the
    relation is unmutated (its ``_version`` unchanged), so publishing the
    same relation for many tasks — or across ``detect`` then ``repair``
    — yields one registry entry and one encoded payload.
    """
    version = getattr(relation, "_version", 0)
    cached = getattr(relation, "_ship_token", None)
    if cached is not None:
        cached_version, token = cached
        if cached_version == version and _PUBLISHED.get(token) is relation:
            return RelationRef(token)
    token = f"r{os.getpid()}.{next(_SEQ)}"
    relation._ship_token = (version, token)  # type: ignore[attr-defined]
    _PUBLISHED[token] = relation
    return RelationRef(token)


def resolve(ref: RelationRef) -> Relation:
    """The relation behind *ref*, from either side of the pool boundary."""
    relation = _PUBLISHED.get(ref.token)
    if relation is None:
        relation = _INSTALLED.get(ref.token)
    if relation is None:
        raise KeyError(
            f"no relation for {ref!r}: publish() it in the parent and "
            f"ship the pack() payload through the pool initializer"
        )
    return relation


# ----------------------------------------------------------------------
# Encoding (pickle protocol 5, columns as out-of-band buffers)
# ----------------------------------------------------------------------
def encode_relation(relation: Relation) -> Tuple[bytes, Tuple[bytes, ...]]:
    """Encode *relation* as (head pickle, out-of-band column frames).

    The columnar substrate makes this cheap and compact: each attribute
    contributes its dictionary's value list (every distinct value once)
    plus a 4-byte-per-row id buffer lifted straight out of the
    ``array('I')`` storage.
    """
    pools = tuple(d.__getstate__() for d in relation._dicts)
    buffers: List[pickle.PickleBuffer] = []
    head = pickle.dumps(
        (
            relation.schema,
            pools,
            [pickle.PickleBuffer(column) for column in relation._columns],
        ),
        protocol=5,
        buffer_callback=buffers.append,
    )
    return head, tuple(buf.raw().tobytes() for buf in buffers)


def decode_relation(head: bytes, frames: Sequence[bytes]) -> Relation:
    """Rebuild a relation from :func:`encode_relation` output."""
    schema, pools, views = pickle.loads(
        head, buffers=[pickle.PickleBuffer(frame) for frame in frames]
    )
    dicts = []
    for state in pools:
        vd = ValueDictionary.__new__(ValueDictionary)
        vd.__setstate__(state)
        dicts.append(vd)
    columns = []
    for view in views:
        rebuilt = array("I")
        rebuilt.frombytes(memoryview(view))
        columns.append(rebuilt)
    relation = Relation.__new__(Relation)
    relation.schema = schema
    relation._dicts = tuple(dicts)
    relation._columns = columns
    relation._version = 0
    return relation


def pack(refs: Sequence[RelationRef]) -> Tuple[ShippedRelation, ...]:
    """Encode every distinct published relation in *refs* once."""
    seen = {}
    for ref in refs:
        if ref.token not in seen:
            head, frames = encode_relation(resolve(ref))
            seen[ref.token] = ShippedRelation(ref.token, head, frames)
    return tuple(seen.values())


def payload_nbytes(payload: Sequence[ShippedRelation]) -> int:
    """Total encoded bytes of a :func:`pack` payload."""
    return sum(shipped.nbytes for shipped in payload)


def install(payload: Sequence[ShippedRelation]) -> None:
    """Pool initializer: decode *payload* into this worker, once.

    Tokens already resolvable are skipped — under ``fork`` the worker
    inherits the parent's published registry copy-on-write, so the
    decode (and its memory) is avoided entirely.
    """
    fresh: Dict[str, Relation] = {}
    for shipped in payload:
        inherited = _PUBLISHED.get(shipped.token)
        if inherited is not None:
            continue
        fresh[shipped.token] = decode_relation(shipped.head, shipped.frames)
    _INSTALLED.clear()
    _INSTALLED.update(fresh)


def installed_count() -> int:
    """How many worker-installed relations this process holds (tests)."""
    return len(_INSTALLED)


def clear_installed() -> None:
    """Drop worker-installed relations (tests, memory pressure)."""
    _INSTALLED.clear()
