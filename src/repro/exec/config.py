"""The canonical repair configuration.

Every knob the :class:`~repro.core.engine.Repairer` facade understands
lives in one frozen :class:`RepairConfig` value object. Configs are
immutable, comparable, and cheap to derive from (:meth:`merged`), which
is what makes them safe to ship to worker processes and to reuse across
many repairs of a serving fleet.

The execution-layer knobs are new in this layer:

* ``n_jobs`` — worker processes for the component-sharded executor
  (``1`` = deterministic in-process serial execution, ``-1`` = one per
  CPU). Output is byte-identical for every value; see
  ``docs/parallelism.md``.
* ``component_budget`` — pattern-count budget above which an exact
  algorithm is pre-emptively degraded to its greedy counterpart on that
  component (formalizing the anytime fallback per component instead of
  discovering the blow-up mid-search).
* ``seed`` — RNG seed for threshold sampling (the old ``rng``
  parameter).
* ``trace`` — record the run through the observability layer
  (:mod:`repro.obs`): hierarchical phase spans, unified counters, and a
  structured JSON run report via ``Repairer.report()`` / the CLI
  ``--trace`` / ``--report out.json``. Off by default; the
  instrumentation points stay no-ops (see ``docs/observability.md``).

``join_strategy`` defaults to ``"indexed"`` — the sub-quadratic
candidate-generation detection path (see ``docs/detection.md``), which
returns exactly the same violations as the scan strategies.
``"vectorized"`` batches the same filters through numpy at
distinct-dictionary-id granularity (identical violations again) and
degrades to ``"indexed"`` when numpy is unavailable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.distances import KERNELS, DistanceFn, Weights

#: per-FD tau mapping, one scalar for every FD, or None (derive from data)
ThresholdsLike = Union[None, float, Mapping[Any, float]]

_UNSET = object()


@dataclass(frozen=True)
class RepairConfig:
    """Immutable configuration of one repair engine.

    Parameters mirror the documented :class:`~repro.core.engine.Repairer`
    semantics; see that class and ``docs/api.md`` for the meaning of
    each field.
    """

    algorithm: str = "greedy-m"
    weights: Weights = field(default_factory=Weights)
    thresholds: ThresholdsLike = None
    use_tree: bool = True
    join_strategy: str = "indexed"
    kernel: str = "myers"
    fallback: str = "error"
    max_nodes: Optional[int] = 200_000
    max_combinations: int = 1_000_000
    distance_overrides: Optional[Dict[str, DistanceFn]] = None
    threshold_ceiling: object = "median"
    n_jobs: int = 1
    component_budget: Optional[int] = None
    seed: object = None
    trace: bool = False
    split_threshold: Optional[int] = None
    max_subtasks: int = 16
    bound_exchange: bool = True
    #: error detectors to run ahead of repair/detection
    #: (``docs/scenarios.md``): names from the detector registry, e.g.
    #: ``("fd", "null", "outlier")``. ``"fd"`` denotes the built-in
    #: FT-FD path (always active); the others emit advisory verdicts
    #: merged into the violation graph — the repair itself is
    #: byte-identical with or without them. ``None`` = FD-only.
    detectors: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        # Deferred import: the engine imports this module at load time.
        from repro.core.engine import ALGORITHMS

        if self.weights is None:  # legacy callers pass None for "default"
            object.__setattr__(self, "weights", Weights())
        if self.algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{sorted(ALGORITHMS)}"
            )
        if self.fallback not in ("error", "greedy"):
            raise ValueError("fallback must be 'error' or 'greedy'")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of "
                f"{sorted(KERNELS)}"
            )
        if self.n_jobs == 0 or not isinstance(self.n_jobs, int):
            raise ValueError(
                "n_jobs must be a positive worker count or -1 (one per CPU)"
            )
        if self.n_jobs < -1:
            raise ValueError("n_jobs must be >= 1, or exactly -1")
        if self.component_budget is not None and self.component_budget < 1:
            raise ValueError("component_budget must be a positive node count")
        if self.split_threshold is not None and self.split_threshold < 2:
            raise ValueError(
                "split_threshold must be >= 2 vertices (or None to disable "
                "component splitting)"
            )
        if self.max_subtasks < 2:
            raise ValueError("max_subtasks must be >= 2")
        if self.detectors is not None:
            # Registry import is deferred (repro.detect registers its
            # built-ins on package import); tuple coercion keeps the
            # frozen config hashable when callers pass a list.
            from repro.detect import DETECTORS

            names = tuple(self.detectors)
            unknown = [n for n in names if n not in DETECTORS]
            if unknown:
                raise ValueError(
                    f"unknown detector(s) {unknown}; registered: "
                    f"{DETECTORS.names()}"
                )
            object.__setattr__(self, "detectors", names)

    # ------------------------------------------------------------------
    def merged(self, **overrides: Any) -> "RepairConfig":
        """A copy with the given fields replaced.

        Unknown field names raise; ``_UNSET`` sentinels (used by the
        keyword-override path of the Repairer constructor) are skipped,
        so ``cfg.merged(n_jobs=4, algorithm=_UNSET)`` only touches
        ``n_jobs``. ``simjoin_strategy`` is accepted as a synonym of
        ``join_strategy`` (the CLI flag spelling) — a plain alias, no
        deprecation attached.
        """
        changes = {k: v for k, v in overrides.items() if v is not _UNSET}
        if "simjoin_strategy" in changes:
            if "join_strategy" in changes:
                raise TypeError(
                    "pass join_strategy or its alias simjoin_strategy, "
                    "not both"
                )
            changes["join_strategy"] = changes.pop("simjoin_strategy")
        unknown = [k for k in changes if k not in _field_names()]
        if unknown:
            raise TypeError(f"unknown RepairConfig field(s): {unknown}")
        if not changes:
            return self
        return dataclasses.replace(self, **changes)

    def effective_jobs(self, n_units: Optional[int] = None) -> int:
        """The worker count this config resolves to.

        ``-1`` means one worker per CPU; the result is additionally
        capped at *n_units* when given (spawning more workers than work
        units only costs fork time).
        """
        import os

        jobs = self.n_jobs
        if jobs == -1:
            jobs = os.cpu_count() or 1
        if n_units is not None:
            jobs = max(1, min(jobs, n_units))
        return jobs

    def to_dict(self) -> Dict[str, Any]:
        """Field name -> value, in declaration order (for reporting)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}


def _field_names() -> frozenset:
    return frozenset(f.name for f in dataclasses.fields(RepairConfig))
