"""Q-gram machinery for edit-distance filtering.

Classic similarity-join filters: if ``lev(a, b) <= k`` then the padded
q-gram multisets of *a* and *b* overlap in at least
``max(|a|, |b|) + q - 1 - k*q`` grams. The converse gives a cheap,
sound rejection test that avoids the dynamic program for most pairs.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Set, Tuple

from repro.core.distances import qgrams


def qgram_overlap(a: str, b: str, q: int = 2) -> int:
    """Multiset overlap of the padded q-gram profiles of *a* and *b*."""
    ca, cb = Counter(qgrams(a, q)), Counter(qgrams(b, q))
    return sum(min(count, cb[gram]) for gram, count in ca.items())


def passes_count_filter(a: str, b: str, max_edits: int, q: int = 2) -> bool:
    """Sound test: can ``lev(a, b) <= max_edits`` possibly hold?

    Returns ``False`` only when the q-gram count filter *proves* the edit
    distance exceeds *max_edits*.
    """
    if max_edits < 0:
        return a == b
    if not a or not b:
        # An empty string has no q-grams; answer exactly.
        return max(len(a), len(b)) <= max_edits
    need = max(len(a), len(b)) + q - 1 - max_edits * q
    if need <= 0:
        return True
    return qgram_overlap(a, b, q) >= need


class QGramIndex:
    """Inverted index from q-grams to string ids.

    Supports candidate generation for "find all indexed strings within
    edit distance *k* of a query": any true match must share at least one
    q-gram with the query whenever ``k*q < len(query) + q - 1``, so the
    union of posting lists (plus a count threshold) is a candidate set.
    Used by the similarity-join ablation and by closest-value lookups.
    """

    def __init__(self, q: int = 2) -> None:
        if q < 1:
            raise ValueError("q must be >= 1")
        self.q = q
        self._postings: Dict[str, Set[int]] = {}
        self._strings: List[str] = []
        self._gramless: Set[int] = set()  # empty strings have no q-grams

    def add(self, text: str) -> int:
        """Index *text*; returns its id."""
        sid = len(self._strings)
        self._strings.append(text)
        grams = set(qgrams(text, self.q))
        if not grams:
            self._gramless.add(sid)
        for gram in grams:
            self._postings.setdefault(gram, set()).add(sid)
        return sid

    def extend(self, texts: Iterable[str]) -> None:
        """Index several strings."""
        for text in texts:
            self.add(text)

    def string(self, sid: int) -> str:
        """The indexed string with id *sid*."""
        return self._strings[sid]

    def __len__(self) -> int:
        return len(self._strings)

    def candidates(self, query: str, max_edits: int) -> List[int]:
        """Ids of indexed strings that *may* be within *max_edits* of *query*.

        Sound (never drops a true match); the caller verifies candidates
        with the exact edit distance. Falls back to all ids when the
        filter is vacuous for this query/threshold combination.
        """
        profile = set(qgrams(query, self.q))
        # One edit touches at most q gram positions, hence destroys at
        # most q *distinct* gram types: a true match keeps at least this
        # many of the query's distinct grams.
        need = len(profile) - max_edits * self.q
        if need <= 0 or not profile:
            return list(range(len(self._strings)))
        counts: Counter = Counter()
        for gram in profile:
            for sid in self._postings.get(gram, ()):
                counts[sid] += 1
        # Candidate strings may be longer than the query, which raises
        # their own requirement; checking against the query-side bound
        # alone stays sound.
        out = [sid for sid, seen in counts.items() if seen >= max(need, 1)]
        # Gramless (empty) strings never hit a posting list; they can
        # still match when the whole query fits in the edit budget.
        if self._gramless and len(query) <= max_edits:
            out.extend(self._gramless)
        return out

    def search(self, query: str, max_edits: int) -> List[Tuple[int, int]]:
        """Exact search: (id, distance) for strings within *max_edits*."""
        from repro.core.distances import levenshtein

        hits: List[Tuple[int, int]] = []
        for sid in self.candidates(query, max_edits):
            dist = levenshtein(query, self._strings[sid], upper_bound=max_edits)
            if dist <= max_edits:
                hits.append((sid, dist))
        hits.sort(key=lambda pair: (pair[1], pair[0]))
        return hits
