"""Q-gram machinery for edit-distance filtering.

Classic similarity-join filters: if ``lev(a, b) <= k`` then the padded
q-gram multisets of *a* and *b* overlap in at least
``max(|a|, |b|) + q - 1 - k*q`` grams. The converse gives a cheap,
sound rejection test that avoids the dynamic program for most pairs.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Iterable, List, Sequence, Set, Tuple

from repro.core.distances import qgrams

try:  # numpy is optional at runtime; vectorized paths degrade without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _np = None  # type: ignore[assignment]


def qgram_overlap(a: str, b: str, q: int = 2) -> int:
    """Multiset overlap of the padded q-gram profiles of *a* and *b*."""
    ca, cb = Counter(qgrams(a, q)), Counter(qgrams(b, q))
    return sum(min(count, cb[gram]) for gram, count in ca.items())


def passes_count_filter(a: str, b: str, max_edits: int, q: int = 2) -> bool:
    """Sound test: can ``lev(a, b) <= max_edits`` possibly hold?

    Returns ``False`` only when the q-gram count filter *proves* the edit
    distance exceeds *max_edits*.
    """
    if max_edits < 0:
        return a == b
    if not a or not b:
        # An empty string has no q-grams; answer exactly.
        return max(len(a), len(b)) <= max_edits
    need = max(len(a), len(b)) + q - 1 - max_edits * q
    if need <= 0:
        return True
    return qgram_overlap(a, b, q) >= need


_POPCOUNT_TABLE: Any = None


def popcount_table() -> Any:
    """256-entry ``uint8`` popcount lookup table.

    Portable across numpy versions (``np.bitwise_count`` only exists from
    numpy 2.0); indexing a byte matrix through the table and summing rows
    counts set bits at memory bandwidth.
    """
    global _POPCOUNT_TABLE
    if _POPCOUNT_TABLE is None:
        if _np is None:
            raise RuntimeError("popcount_table() requires numpy")
        _POPCOUNT_TABLE = _np.array(
            [bin(i).count("1") for i in range(256)], dtype=_np.uint8
        )
    return _POPCOUNT_TABLE


def gram_matrix(profiles: Sequence[Set[str]]) -> Tuple[Any, Any, Any, Any]:
    """Encode distinct-gram profiles as a CSR matrix plus a packed bitset.

    *profiles* is one distinct-q-gram set per dictionary id. Returns
    ``(indptr, gram_ids, packed, sizes)``:

    * ``indptr`` / ``gram_ids`` — CSR rows of the boolean value x gram
      matrix: value *v*'s grams are ``gram_ids[indptr[v]:indptr[v+1]]``,
      columns assigned in first-occurrence order over a shared
      vocabulary;
    * ``packed`` — the same matrix bit-packed to ``uint8``
      (``ceil(G/8)`` bytes per row) for pairwise overlap popcounts;
    * ``sizes`` — ``int64`` profile sizes (the CSR row lengths).
    """
    if _np is None:
        raise RuntimeError("gram_matrix() requires numpy")
    vocabulary: Dict[str, int] = {}
    columns: List[int] = []
    indptr = _np.zeros(len(profiles) + 1, dtype=_np.int64)
    for row, profile in enumerate(profiles):
        columns.extend(
            vocabulary.setdefault(gram, len(vocabulary))
            for gram in sorted(profile)
        )
        indptr[row + 1] = len(columns)
    gram_ids = _np.asarray(columns, dtype=_np.int64)
    width = (max(len(vocabulary), 1) + 7) // 8
    packed = _np.zeros((len(profiles), width), dtype=_np.uint8)
    bits = (1 << (gram_ids & 7)).astype(_np.uint8)
    bytes_of = gram_ids >> 3
    for row in range(len(profiles)):
        lo, hi = indptr[row], indptr[row + 1]
        _np.bitwise_or.at(packed[row], bytes_of[lo:hi], bits[lo:hi])
    return indptr, gram_ids, packed, _np.diff(indptr)


def char_arrays(values: Sequence[str]) -> Tuple[Any, Any, Any]:
    """Pad-encoded character matrix + per-value Myers PEQ tables.

    Returns ``(codes, lengths, peq)`` over a shared character
    vocabulary: ``codes`` is the ``int32`` value x position matrix
    (zero-padded), ``lengths`` the ``int64`` value lengths, and ``peq``
    the per-value Myers bitmask table — ``peq[v][c]`` has bit ``j`` set
    when character ``c`` occurs at position ``j`` of value ``v``. Rows
    of values longer than 63 characters stay zero: their bitvector does
    not fit one machine word, so :func:`batched_myers` routes pairs
    where *both* sides are that wide back to the scalar kernel.
    """
    if _np is None:
        raise RuntimeError("char_arrays() requires numpy")
    vocabulary: Dict[str, int] = {}
    maxlen = max((len(value) for value in values), default=0)
    codes = _np.zeros((len(values), max(maxlen, 1)), dtype=_np.int32)
    lengths = _np.zeros(len(values), dtype=_np.int64)
    for row, value in enumerate(values):
        lengths[row] = len(value)
        for col, ch in enumerate(value):
            codes[row, col] = vocabulary.setdefault(ch, len(vocabulary))
    peq = _np.zeros((len(values), max(len(vocabulary), 1)), dtype=_np.uint64)
    one = _np.uint64(1)
    for row, value in enumerate(values):
        if len(value) > 63:
            continue
        target = peq[row]
        for col, ch in enumerate(value):
            target[vocabulary[ch]] |= one << _np.uint64(col)
    return codes, lengths, peq


def batched_myers(codes: Any, lengths: Any, peq: Any, lefts: Any,
                  rights: Any) -> Any:
    """Exact Levenshtein distances for value-id pairs, batched.

    Myers' bit-parallel column update (the same recurrence as
    :class:`repro.core.distances.PreparedKernel`) run as elementwise
    ``uint64`` operations across the whole batch: each pair's pattern is
    its shorter value, the texts are scanned column-by-column with pairs
    sorted by text length so the active set is always a prefix slice.
    Returns exact distances; ``-1`` marks pairs whose shorter value
    exceeds 63 characters (one-word bitvectors cannot hold them — the
    caller settles those with the scalar kernel).
    """
    ll, lr = lengths[lefts], lengths[rights]
    swap = lr < ll
    pattern = _np.where(swap, rights, lefts)
    text = _np.where(swap, lefts, rights)
    m, n = lengths[pattern], lengths[text]
    out = _np.full(len(pattern), -1, dtype=_np.int64)
    out[m == 0] = n[m == 0]
    run = _np.nonzero((m > 0) & (m <= 63))[0]
    if not run.size:
        return out
    # sort by text length descending: at column j the still-active pairs
    # are exactly the prefix [0:count_j], so state updates are views
    order = run[_np.argsort(-n[run], kind="stable")]
    pattern, text, m, n = pattern[order], text[order], m[order], n[order]
    m64 = m.astype(_np.uint64)
    one = _np.uint64(1)
    full = (one << m64) - one  # m <= 63 keeps every shift in-word
    last_shift = (m64 - one).astype(_np.uint64)
    pv = full.copy()
    mv = _np.zeros(len(order), dtype=_np.uint64)
    score = m.copy()
    longest = int(n[0])
    counts = _np.bincount(n, minlength=longest + 1)
    active = len(order)
    for col in range(longest):
        # pairs whose text is exactly `col` characters long retire now
        active -= int(counts[col])
        sl = slice(0, active)
        eq = peq[pattern[sl], codes[text[sl], col]]
        pv_s, mv_s = pv[sl], mv[sl]
        xv = eq | mv_s
        xh = (((eq & pv_s) + pv_s) ^ pv_s) | eq
        ph = mv_s | (~(xh | pv_s) & full[sl])
        mh = pv_s & xh
        score[sl] += ((ph >> last_shift[sl]) & one).astype(_np.int64)
        score[sl] -= ((mh >> last_shift[sl]) & one).astype(_np.int64)
        ph = ((ph << one) | one) & full[sl]
        mh = (mh << one) & full[sl]
        pv[sl] = mh | (~(xv | ph) & full[sl])
        mv[sl] = ph & xv
    out[order] = score
    return out


def packed_overlap(packed: Any, left: Any, right: Any) -> Any:
    """Distinct-gram overlap ``|G_u & G_v|`` for each pair ``(left[i], right[i])``.

    Operates on the bit-packed matrix from :func:`gram_matrix`. The
    caller chunks the pair arrays to bound the transient
    ``len(pairs) x row_bytes`` gather.
    """
    table = popcount_table()
    inter = _np.bitwise_and(packed[left], packed[right])
    return table[inter].sum(axis=1, dtype=_np.int64)


class QGramIndex:
    """Inverted index from q-grams to string ids.

    Supports candidate generation for "find all indexed strings within
    edit distance *k* of a query": any true match must share at least one
    q-gram with the query whenever ``k*q < len(query) + q - 1``, so the
    union of posting lists (plus a count threshold) is a candidate set.
    Used by the similarity-join ablation and by closest-value lookups.
    """

    def __init__(self, q: int = 2) -> None:
        if q < 1:
            raise ValueError("q must be >= 1")
        self.q = q
        self._postings: Dict[str, Set[int]] = {}
        self._strings: List[str] = []
        self._gramless: Set[int] = set()  # empty strings have no q-grams

    def add(self, text: str) -> int:
        """Index *text*; returns its id."""
        sid = len(self._strings)
        self._strings.append(text)
        grams = set(qgrams(text, self.q))
        if not grams:
            self._gramless.add(sid)
        for gram in grams:
            self._postings.setdefault(gram, set()).add(sid)
        return sid

    def extend(self, texts: Iterable[str]) -> None:
        """Index several strings."""
        for text in texts:
            self.add(text)

    def string(self, sid: int) -> str:
        """The indexed string with id *sid*."""
        return self._strings[sid]

    def __len__(self) -> int:
        return len(self._strings)

    def candidates(self, query: str, max_edits: int) -> List[int]:
        """Ids of indexed strings that *may* be within *max_edits* of *query*.

        Sound (never drops a true match); the caller verifies candidates
        with the exact edit distance. Falls back to all ids when the
        filter is vacuous for this query/threshold combination.
        """
        profile = set(qgrams(query, self.q))
        # One edit touches at most q gram positions, hence destroys at
        # most q *distinct* gram types: a true match keeps at least this
        # many of the query's distinct grams.
        need = len(profile) - max_edits * self.q
        if need <= 0 or not profile:
            return list(range(len(self._strings)))
        counts: Counter = Counter()
        for gram in profile:
            for sid in self._postings.get(gram, ()):
                counts[sid] += 1
        # Candidate strings may be longer than the query, which raises
        # their own requirement; checking against the query-side bound
        # alone stays sound.
        out = [sid for sid, seen in counts.items() if seen >= max(need, 1)]
        # Gramless (empty) strings never hit a posting list; they can
        # still match when the whole query fits in the edit budget.
        if self._gramless and len(query) <= max_edits:
            out.extend(self._gramless)
        return out

    def search(self, query: str, max_edits: int) -> List[Tuple[int, int]]:
        """Exact search: (id, distance) for strings within *max_edits*."""
        from repro.core.distances import levenshtein

        hits: List[Tuple[int, int]] = []
        for sid in self.candidates(query, max_edits):
            dist = levenshtein(query, self._strings[sid], upper_bound=max_edits)
            if dist <= max_edits:
                hits.append((sid, dist))
        hits.sort(key=lambda pair: (pair[1], pair[0]))
        return hits
