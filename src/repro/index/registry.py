"""Per-relation shared attribute indexes for FT-violation detection.

Several FDs of a workload typically share attributes (the FD-graph
overlap the paper exploits in Theorems 5-7), yet the blocker planner
historically rebuilt every q-gram index, sorted numeric band, and exact
partition per FD. :class:`AttributeIndexRegistry` hoists those
structures to the attribute level: the **distinct coerced values** of an
attribute are the same for every FD containing it (patterns cover all
tuples), so one canonical index per attribute serves every plan, with a
per-call code translation between the canonical numbering and each
FD's local value ids.

Shared per string attribute:

* the q-gram profiles, gram frequencies, length buckets, and inverted
  posting lists (ratio-independent — built lazily on first q-gram probe),
* the raw probe survivors per ratio (``raw_pairs``),
* the exact settle verdicts ``lev(a, b) <= k`` per value pair and
  budget, computed through the active Levenshtein kernel with interned
  Myers preparations (see :class:`repro.core.distances.PreparedKernel`).

Shared per numeric attribute: the sorted value order and the band-join
windows per band width.

Everything the registry returns is provably identical to what the
per-FD rebuild produced: raw probe sets depend only on the value *set*
(frequencies, buckets, and postings are numbering-invariant), settle
verdicts are value-level facts, band windows and estimates are
unordered-pair sets/counts that tie order cannot change, and the
expansion-limit abort of :meth:`qgram_value_pairs` triggers for a given
total in any iteration order. Detection output therefore stays
byte-identical with and without sharing.

The registry validates its entries per call (length equality plus
membership of every local value) and rebuilds on mismatch, so it stays
sound when the relation evolves between joins — e.g. the sequential
single-FD repair loop. Builds, reuses, and settle kernel calls are
counted and surface in ``ViolationGraph.join_counters`` /
``ExecutionStats`` / CLI ``--stats``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.distances import (
    PreparedKernel,
    default_kernel,
    levenshtein,
    qgrams,
)


def _budget_eps() -> float:
    # function-level import: blocking imports this module at load time
    from repro.index.blocking import _BUDGET_EPS

    return _BUDGET_EPS


class _StringIndex:
    """Canonical q-gram structures over one attribute's distinct values."""

    __slots__ = (
        "q",
        "values",
        "code_of",
        "lengths",
        "_profiles",
        "_frequency",
        "_by_length",
        "_postings",
        "_raw_pairs",
        "settled",
        "exact_edits",
        "_gram_arrays",
        "_char_arrays",
    )

    def __init__(self, values: Sequence[str], q: int) -> None:
        self.q = q
        self.values: List[str] = list(values)
        self.code_of: Dict[str, int] = {
            value: code for code, value in enumerate(self.values)
        }
        self.lengths: List[int] = [len(value) for value in self.values]
        self._profiles: Optional[List[frozenset]] = None
        self._frequency: Optional[Counter] = None
        self._by_length: Optional[Dict[int, List[int]]] = None
        self._postings: Optional[Dict[int, Dict[str, List[int]]]] = None
        self._raw_pairs: Dict[float, Tuple[Tuple[int, int], ...]] = {}
        #: settle verdicts ``lev(values[u], values[v]) <= k`` keyed (u, v, k)
        self.settled: Dict[Tuple[int, int, int], bool] = {}
        #: exact edit counts keyed (min(u, v), max(u, v)); only values a
        #: bounded kernel call proved exact are ever stored here
        self.exact_edits: Dict[Tuple[int, int], int] = {}
        self._gram_arrays: Optional[Tuple[Any, Any, Any, Any, Any]] = None
        self._char_arrays: Optional[Tuple[Any, Any, Any]] = None

    def _ensure_grams(self) -> None:
        if self._profiles is not None:
            return
        self._profiles = [frozenset(qgrams(value, self.q)) for value in self.values]
        frequency: Counter = Counter()
        for profile in self._profiles:
            frequency.update(profile)
        self._frequency = frequency
        by_length: Dict[int, List[int]] = {}
        postings: Dict[int, Dict[str, List[int]]] = {}
        for code, length in enumerate(self.lengths):
            by_length.setdefault(length, []).append(code)
            bucket = postings.setdefault(length, {})
            for gram in self._profiles[code]:
                bucket.setdefault(gram, []).append(code)
        self._by_length = by_length
        self._postings = postings

    def raw_pairs(self, ratio: float) -> Tuple[Tuple[int, int], ...]:
        """Probe survivors at *ratio*, in canonical codes, cached.

        Replicates ``QGramPrefixIndex.candidate_value_pairs`` exactly:
        the emitted pair *set* depends only on the value set, never on
        the numbering, so translating codes to any FD's local ids yields
        the same candidate set the per-FD index produced.
        """
        cached = self._raw_pairs.get(ratio)
        if cached is not None:
            return cached
        self._ensure_grams()
        eps = _budget_eps()
        q = self.q
        frequency = self._frequency
        by_length = self._by_length
        postings = self._postings
        lengths = self.lengths
        pairs: Set[Tuple[int, int]] = set()
        length_keys = sorted(by_length)
        for code, profile in enumerate(self._profiles):
            la = lengths[code]
            prefix_source = sorted(profile, key=lambda g: (frequency[g], g))
            for lb in length_keys:
                k = int(ratio * (la if la > lb else lb) + eps)
                if abs(la - lb) > k:
                    continue
                if len(prefix_source) <= k * q:
                    hits: Sequence[int] = by_length[lb]
                else:
                    bucket = postings[lb]
                    seen: Set[int] = set()
                    for gram in prefix_source[: k * q + 1]:
                        seen.update(bucket.get(gram, ()))
                    hits = seen
                for other in hits:
                    if other != code:
                        pairs.add((code, other) if code < other else (other, code))
        result = tuple(sorted(pairs))
        self._raw_pairs[ratio] = result
        return result

    def probe(self, query: str, ratio: float) -> List[int]:
        """Canonical codes possibly within ``ratio`` edits of *query*.

        The one-vs-many form of :meth:`raw_pairs`: the same pigeonhole
        prefix filter (any ``k*q + 1`` grams of the query must hit a
        value within ``k`` edits, since one edit destroys at most ``q``
        grams), applied from a single probe value that need not be in
        the index. The result is a superset of the values within
        ``floor(ratio * max_len + eps)`` edits — callers verify exactly.
        """
        self._ensure_grams()
        eps = _budget_eps()
        q = self.q
        la = len(query)
        profile = frozenset(qgrams(query, q))
        frequency = self._frequency
        by_length = self._by_length
        postings = self._postings
        assert frequency is not None and by_length is not None
        assert postings is not None
        prefix_source = sorted(profile, key=lambda g: (frequency[g], g))
        out: Set[int] = set()
        for lb, bucket_codes in by_length.items():
            k = int(ratio * (la if la > lb else lb) + eps)
            if (la - lb if la > lb else lb - la) > k:
                continue
            if len(prefix_source) <= k * q:
                out.update(bucket_codes)
            else:
                bucket = postings[lb]
                for gram in prefix_source[: k * q + 1]:
                    out.update(bucket.get(gram, ()))
        return sorted(out)


    def gram_arrays(self) -> Tuple[Any, Any, Any, Any, Any]:
        """Numpy encodings for the vectorized join, built lazily once.

        Returns ``(indptr, gram_ids, packed, sizes, lengths)``: the CSR
        and bit-packed q-gram matrices from
        :func:`repro.index.qgram.gram_matrix` over the canonical
        profiles, plus the canonical value lengths as an ``int64``
        array. Requires numpy (the caller gates on availability).
        """
        if self._gram_arrays is None:
            from repro.index.qgram import _np, gram_matrix

            self._ensure_grams()
            assert self._profiles is not None and _np is not None
            indptr, gram_ids, packed, sizes = gram_matrix(self._profiles)
            lengths = _np.asarray(self.lengths, dtype=_np.int64)
            self._gram_arrays = (indptr, gram_ids, packed, sizes, lengths)
        return self._gram_arrays

    def char_arrays(self) -> Tuple[Any, Any, Any]:
        """Character codes + Myers PEQ tables for the batched kernel.

        Lazily built ``(codes, lengths, peq)`` from
        :func:`repro.index.qgram.char_arrays` over the canonical values.
        Requires numpy (the caller gates on availability).
        """
        if self._char_arrays is None:
            from repro.index.qgram import char_arrays

            self._char_arrays = char_arrays(self.values)
        return self._char_arrays


class _NumericIndex:
    """Canonical sorted order (and band windows) of one numeric attribute."""

    __slots__ = ("values", "code_of", "order", "_windows", "_sorted")

    def __init__(self, values: Sequence[float]) -> None:
        self.values: List[float] = list(values)
        self.code_of: Dict[float, int] = {
            value: code for code, value in enumerate(self.values)
        }
        self.order: List[int] = sorted(
            range(len(self.values)), key=lambda code: self.values[code]
        )
        self._windows: Dict[float, Tuple[Tuple[int, int], ...]] = {}
        self._sorted: Optional[List[float]] = None

    def probe(self, query: float, band: float) -> List[int]:
        """Canonical codes with ``|value - query| <= band`` (bisected)."""
        if self._sorted is None:
            self._sorted = [self.values[code] for code in self.order]
        from bisect import bisect_left, bisect_right

        lo = bisect_left(self._sorted, query - band)
        hi = bisect_right(self._sorted, query + band)
        return self.order[lo:hi]

    def windows(self, band: float) -> Tuple[Tuple[int, int], ...]:
        """Canonical code pairs within *band* of each other, cached."""
        cached = self._windows.get(band)
        if cached is not None:
            return cached
        values = self.values
        order = self.order
        pairs: List[Tuple[int, int]] = []
        left = 0
        for right in range(len(order)):
            while values[order[right]] - values[order[left]] > band:
                left += 1
            for mid in range(left, right):
                pairs.append((order[mid], order[right]))
        result = tuple(pairs)
        self._windows[band] = result
        return result


class AttributeIndexRegistry:
    """Shared per-attribute index store with build/reuse accounting.

    One instance per relation (or per repair run): pass it to every
    :func:`repro.index.blocking.plan_blocker` /
    :func:`~repro.index.blocking.candidate_pairs` call and to every
    :class:`repro.index.simjoin.SimilarityJoin` so FDs sharing an
    attribute share its indexes. Thread-confined like
    :class:`~repro.core.distances.DistanceModel` — parallel workers each
    hold their own.
    """

    def __init__(self, q: int = 2) -> None:
        self.q = q
        self.index_builds = 0
        self.index_reuses = 0
        #: one-vs-many candidate probes (serving path; see qgram_probe)
        self.index_probes = 0
        #: settle kernel invocations (cache-missed ``lev <= k`` verdicts)
        self.kernel_calls = 0
        self._strings: Dict[str, _StringIndex] = {}
        self._numerics: Dict[str, _NumericIndex] = {}
        self._kernels: Dict[str, PreparedKernel] = {}
        self._gram_profiles: Dict[str, Counter] = {}
        self._count_filter: Dict[Tuple[str, str, int], bool] = {}

    def counters(self) -> Dict[str, int]:
        """The accounting triple, for stats plumbing."""
        return {
            "index_builds": self.index_builds,
            "index_reuses": self.index_reuses,
            "kernel_calls": self.kernel_calls,
        }

    # ------------------------------------------------------------------
    def string_index(
        self, attribute: str, values: Sequence[str]
    ) -> Tuple[_StringIndex, List[int]]:
        """The canonical index for *attribute* plus local->canonical codes.

        Reuses the cached entry when *values* is a bijection of its
        canonical set (same length, every value known); rebuilds
        otherwise — the relation changed under the registry, e.g. between
        the passes of a sequential repair loop.
        """
        entry = self._strings.get(attribute)
        if entry is not None and len(entry.values) == len(values):
            code_of = entry.code_of
            codes: List[int] = []
            for value in values:
                code = code_of.get(value)
                if code is None:
                    break
                codes.append(code)
            else:
                self.index_reuses += 1
                return entry, codes
        entry = _StringIndex(values, self.q)
        self._strings[attribute] = entry
        self.index_builds += 1
        return entry, list(range(len(values)))

    def numeric_index(
        self, attribute: str, values: Sequence[float]
    ) -> Tuple[_NumericIndex, List[int]]:
        """Numeric twin of :meth:`string_index` (same validation rule)."""
        entry = self._numerics.get(attribute)
        if entry is not None and len(entry.values) == len(values):
            code_of = entry.code_of
            codes = []
            for value in values:
                code = code_of.get(value)
                if code is None:
                    break
                codes.append(code)
            else:
                self.index_reuses += 1
                return entry, codes
        entry = _NumericIndex(values)
        self._numerics[attribute] = entry
        self.index_builds += 1
        return entry, list(range(len(values)))

    # ------------------------------------------------------------------
    def prepared_kernel(self, text: str) -> PreparedKernel:
        """The interned Myers preparation for *text* (built once)."""
        prepared = self._kernels.get(text)
        if prepared is None:
            prepared = PreparedKernel(text)
            self._kernels[text] = prepared
        return prepared

    def gram_profile(self, text: str) -> Counter:
        """The interned q-gram multiset of *text* (for count filters)."""
        profile = self._gram_profiles.get(text)
        if profile is None:
            profile = Counter(qgrams(text, self.q))
            self._gram_profiles[text] = profile
        return profile

    def count_filter_reject(
        self, a: str, b: str, pa: Counter, pb: Counter, need: int
    ) -> bool:
        """Cached count-filter verdict: ``gram overlap(a, b) < need``.

        The same value pairs recur across pattern pairs and across FDs
        sharing the attribute, so the overlap loop runs once per
        distinct ``(pair, budget)``; every later probe is a dict hit.
        Overlap is symmetric, hence the normalized key.
        """
        if a > b:
            a, b = b, a
        key = (a, b, need)
        verdict = self._count_filter.get(key)
        if verdict is None:
            if len(pb) < len(pa):
                pa, pb = pb, pa
            overlap = 0
            for gram, count in pa.items():
                other = pb[gram]
                if other:
                    overlap += count if count < other else other
            verdict = overlap < need
            self._count_filter[key] = verdict
        return verdict

    def _settle(self, entry: _StringIndex, u: int, v: int, k: int) -> bool:
        """Whether ``lev(values[u], values[v]) <= k`` — cached, kernel-routed."""
        key = (u, v, k)
        verdict = entry.settled.get(key)
        if verdict is None:
            a, b = entry.values[u], entry.values[v]
            self.kernel_calls += 1
            if default_kernel() == "myers":
                verdict = self.prepared_kernel(a).compare(b, k) <= k
            else:
                verdict = levenshtein(a, b, upper_bound=k) <= k
            entry.settled[key] = verdict
        return verdict

    def bounded_edits_many(
        self,
        entry: _StringIndex,
        lefts: Sequence[int],
        rights: Sequence[int],
        budgets: Sequence[int],
    ) -> List[int]:
        """Batched bounded edit distances between canonical value pairs.

        Each result honours the kernel contract: exact iff it does not
        exceed its budget. Under the Myers kernel (with numpy present)
        misses run through :func:`repro.index.qgram.batched_myers` — the
        bit-parallel column update as elementwise ``uint64`` ops over
        the whole batch; pairs the one-word bitvector cannot hold (both
        sides over 63 characters), other kernels, and numpy-absent runs
        are grouped by left value and settled through one prepared
        :meth:`PreparedKernel.compare_many` per group. Exact results are
        cached in ``entry.exact_edits`` so the blocker settle and the
        verify pass never re-run a kernel on the same distinct pair.
        """
        values = entry.values
        edits_cache = entry.exact_edits
        settled = entry.settled
        out: List[int] = [0] * len(lefts)
        miss: List[int] = []
        for pos in range(len(lefts)):
            u, v = lefts[pos], rights[pos]
            cached = edits_cache.get((u, v) if u < v else (v, u))
            if cached is not None:
                out[pos] = cached
            else:
                miss.append(pos)
        if not miss:
            return out
        use_myers = default_kernel() == "myers"
        if use_myers:
            from repro.index.qgram import _np, batched_myers

            if _np is not None:
                codes, lengths, peq = entry.char_arrays()
                batch = batched_myers(
                    codes,
                    lengths,
                    peq,
                    _np.fromiter(
                        (lefts[p] for p in miss), _np.int64, count=len(miss)
                    ),
                    _np.fromiter(
                        (rights[p] for p in miss), _np.int64, count=len(miss)
                    ),
                )
                remaining: List[int] = []
                for pos, edits in zip(miss, batch.tolist()):
                    if edits < 0:  # too wide for one word; scalar below
                        remaining.append(pos)
                        continue
                    out[pos] = edits
                    u, v, k = lefts[pos], rights[pos], budgets[pos]
                    settled[(u, v, k)] = edits <= k
                    # batched distances are unconditionally exact
                    edits_cache[(u, v) if u < v else (v, u)] = edits
                self.kernel_calls += len(miss) - len(remaining)
                miss = remaining
        pending: Dict[int, List[int]] = {}
        for pos in miss:
            pending.setdefault(lefts[pos], []).append(pos)
        for u, positions in pending.items():
            self.kernel_calls += len(positions)
            if use_myers:
                results = self.prepared_kernel(values[u]).compare_many(
                    [values[rights[p]] for p in positions],
                    [budgets[p] for p in positions],
                )
            else:
                results = [
                    levenshtein(
                        values[u], values[rights[p]], upper_bound=budgets[p]
                    )
                    for p in positions
                ]
            for p, edits in zip(positions, results):
                out[p] = edits
                v, k = rights[p], budgets[p]
                verdict = edits <= k
                settled[(u, v, k)] = verdict
                if verdict:
                    edits_cache[(u, v) if u < v else (v, u)] = edits
        return out

    def settle_many(
        self,
        entry: _StringIndex,
        lefts: Sequence[int],
        rights: Sequence[int],
        budgets: Sequence[int],
    ) -> List[bool]:
        """Batched :meth:`_settle`: ``lev(values[u], values[v]) <= k`` per pair.

        Probes the verdict and exact-edit caches first, then routes the
        misses through :meth:`bounded_edits_many`.
        """
        out: List[bool] = [False] * len(lefts)
        settled = entry.settled
        edits_cache = entry.exact_edits
        miss: List[int] = []
        for pos in range(len(lefts)):
            u, v, k = lefts[pos], rights[pos], budgets[pos]
            verdict = settled.get((u, v, k))
            if verdict is None:
                edits = edits_cache.get((u, v) if u < v else (v, u))
                if edits is not None:
                    verdict = edits <= k
                    settled[(u, v, k)] = verdict
            if verdict is None:
                miss.append(pos)
            else:
                out[pos] = verdict
        if miss:
            edits_batch = self.bounded_edits_many(
                entry,
                [lefts[p] for p in miss],
                [rights[p] for p in miss],
                [budgets[p] for p in miss],
            )
            for p, edits in zip(miss, edits_batch):
                out[p] = edits <= budgets[p]
        return out

    def qgram_value_pairs(
        self,
        attribute: str,
        values: Sequence[str],
        groups: Sequence[Sequence[int]],
        ratio: float,
        cap: int,
        expansion_limit: float,
    ) -> Optional[Tuple[Tuple[Tuple[int, int], ...], int]]:
        """Shared-index drop-in for ``blocking._qgram_value_pairs``.

        Same contract: the settled value-id pairs (local ids, sorted)
        within ``floor(ratio * max_len + eps)`` edits plus their pattern
        expansion, or ``None`` past *cap* / *expansion_limit*. The abort
        decision and emitted set are iteration-order independent, so the
        canonical traversal matches the per-FD one exactly.
        """
        entry, codes = self.string_index(attribute, values)
        raw = entry.raw_pairs(ratio)
        if len(raw) > cap:
            return None
        eps = _budget_eps()
        lengths = entry.lengths
        local_of = {code: vid for vid, code in enumerate(codes)}
        kept: List[Tuple[int, int]] = []
        expanded = 0
        for cu, cv in raw:
            la, lb = lengths[cu], lengths[cv]
            k = int(ratio * (la if la > lb else lb) + eps)
            if self._settle(entry, cu, cv, k):
                u, v = local_of[cu], local_of[cv]
                if u > v:
                    u, v = v, u
                kept.append((u, v))
                expanded += len(groups[u]) * len(groups[v])
                if expanded > expansion_limit:
                    return None
        kept.sort()
        return tuple(kept), expanded

    def qgram_probe(
        self,
        attribute: str,
        values: Sequence[str],
        query: str,
        ratio: float,
    ) -> List[int]:
        """Local ids of *values* possibly within ``ratio`` edits of *query*.

        One-vs-many candidate generation for the per-record serving
        path: the shared q-gram postings answer a single probe value
        (which need not be indexed) instead of a full self-join. Returns
        a **superset** of the values within
        ``floor(ratio * max_len + eps)`` edits — callers verify exactly,
        so a looser probe can never change results, only waste work.
        """
        entry, codes = self.string_index(attribute, values)
        self.index_probes += 1
        raw = entry.probe(query, ratio)
        if not raw:
            return []
        local_of = {code: vid for vid, code in enumerate(codes)}
        return [local_of[code] for code in raw]

    def band_probe(
        self,
        attribute: str,
        values: Sequence[float],
        query: float,
        band: float,
    ) -> List[int]:
        """Local ids of *values* with ``|value - query| <= band``.

        Numeric twin of :meth:`qgram_probe` over the shared sorted
        order; exact (the band window is the candidate condition).
        """
        entry, codes = self.numeric_index(attribute, values)
        self.index_probes += 1
        raw = entry.probe(query, band)
        if not raw:
            return []
        local_of = {code: vid for vid, code in enumerate(codes)}
        return [local_of[code] for code in raw]

    # ------------------------------------------------------------------
    def band_windows(
        self, attribute: str, values: Sequence[float], band: float
    ) -> List[Tuple[int, int]]:
        """Shared-index drop-in for ``blocking._band_windows`` (local ids)."""
        entry, codes = self.numeric_index(attribute, values)
        local_of = {code: vid for vid, code in enumerate(codes)}
        pairs: List[Tuple[int, int]] = []
        for cu, cv in entry.windows(band):
            pairs.append((local_of[cu], local_of[cv]))
        return pairs

    def band_estimate(
        self,
        attribute: str,
        values: Sequence[float],
        groups: Sequence[Sequence[int]],
        band: float,
    ) -> int:
        """Shared-order drop-in for ``blocking._band_estimate``.

        The count of unordered pairs within *band* (plus intra-group
        pairs) is invariant to tie order in the sort, so the canonical
        order gives the exact per-FD estimate without re-sorting.
        """
        entry, codes = self.numeric_index(attribute, values)
        total = sum(len(g) * (len(g) - 1) // 2 for g in groups)
        local_values = list(values)
        # translate the canonical sorted order to local ids
        local_of = {code: vid for vid, code in enumerate(codes)}
        order = [local_of[code] for code in entry.order]
        left = 0
        window = 0  # sum of group sizes currently in [left, right)
        for right in range(len(order)):
            while local_values[order[right]] - local_values[order[left]] > band:
                window -= len(groups[order[left]])
                left += 1
            total += window * len(groups[order[right]])
            window += len(groups[order[right]])
        return total
