"""Similarity self-join over FD patterns.

Detecting FT-violations is a threshold self-join: find every pattern pair
whose weighted projection distance (Eq. 2) is at most ``tau``. This
module wraps the join with pluggable strategies so the cost of detection
can be studied (ablation benches) and tuned:

* ``naive``     — exact distance for every pair, no filtering.
* ``filtered``  — per-attribute length lower bound + early-abort
  accumulation over the full pair scan.
* ``qgram``     — ``filtered`` plus a q-gram count filter on the most
  selective string attribute of the FD.
* ``indexed``   — sub-quadratic candidate generation (engine default):
  a per-FD blocker planner (:mod:`repro.index.blocking`) replaces the
  all-pairs loop with exact-match partitioning, a sorted numeric band
  join, or an inverted q-gram prefix index, and candidates are verified
  with the banded Levenshtein kernel. Falls back to the filtered scan
  when no attribute is indexable.
* ``vectorized`` — the ``indexed`` pigeonhole union run at
  **distinct-dictionary-id granularity** with numpy-batched filtering:
  per-attribute length-band + q-gram count-filter passes over the
  packed gram matrices propose distinct-id pairs, each survivor is
  settled exactly once with the prepared Myers kernel, verified value
  pairs fan out to pattern pairs through the dictionary frequency
  lists, and Eq. (2) accumulates per candidate as elementwise float64
  vector ops (bit-identical to the scalar accumulation). Degrades to
  ``indexed`` (with a :class:`DegradedJoinWarning`) when numpy is
  missing, and to the indexed/scan paths when the FD has custom
  distance overrides or uncoercible numerics.

All strategies return exactly the same violations, in the same order,
with bit-identical distances; only the work differs.

**Counter semantics** (normalized across strategies):

* ``possible_pairs``       — ``P * (P - 1) / 2`` for ``P`` patterns; the
  work a full pair scan would face.
* ``candidates_generated`` — pairs the strategy put on the table: equal
  to ``possible_pairs`` for the scan strategies, the blocker output for
  ``indexed``.
* ``pairs_examined``       — candidate pairs actually inspected (always
  equals ``candidates_generated``; kept for backward compatibility).
* ``pairs_filtered``       — of those, rejected by a cheap sound filter
  (length lower bound, q-gram count) before exact verification. Always
  0 for ``naive``, which verifies everything.
* ``pairs_verified``       — pairs that reached the exact Eq. (2)
  accumulation: ``pairs_examined - pairs_filtered``.

The ``vectorized`` strategy adds three distinct-id counters (0 for the
tuple-granular strategies):

* ``distinct_pairs_examined`` — unique distinct-value pairs given an
  exact evaluation (blocker settles plus verification), summed per
  attribute. Value-level work: at most — and on duplicated data far
  below — the tuple-level pair count.
* ``tuple_fanout``            — tuple pairs the candidate set covers
  (``sum`` of multiplicity products): the work a tuple-granular join
  would have spent on the same candidates.
* ``vector_filter_passes``    — numpy filter passes run (length-band
  chunks, count-filter chunks, band windows).

``reduction_ratio`` summarizes the blocking win: the fraction of the
possible pairs the strategy never examined.
"""

from __future__ import annotations

import warnings
from typing import Any, Counter as CounterType
from typing import List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import (
    FTViolation,
    Pattern,
    PreparedProjection,
    _length_lower_bound,
)
from repro.index.blocking import (
    _EXACT_MARGIN,
    BlockPlan,
    AttributeBlocker,
    _allocate_union,
    _band_width,
    _usable_attributes,
    candidate_pairs,
    plan_blocker,
    vectorized_band_pairs,
    vectorized_qgram_pairs,
)
from repro.index.qgram import passes_count_filter
from repro.index.registry import AttributeIndexRegistry
from repro.obs import span

try:  # numpy is optional at runtime; ``vectorized`` degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _np = None  # type: ignore[assignment]

STRATEGIES = ("naive", "filtered", "qgram", "indexed", "vectorized")


class DegradedJoinWarning(RuntimeWarning):
    """A join strategy degraded to a weaker implementation.

    Emitted once per join when ``join_strategy="vectorized"`` runs in an
    environment without numpy and falls back to ``indexed``: results are
    identical, only the distinct-id batching is lost.
    """


class SimilarityJoin:
    """Threshold self-join over patterns of one FD.

    See the module docstring for the strategy menu and the exact counter
    semantics. After :meth:`join` the instance exposes
    ``possible_pairs`` / ``candidates_generated`` / ``pairs_examined`` /
    ``pairs_filtered`` / ``pairs_verified``, the achieved
    :attr:`reduction_ratio`, and (for ``indexed``) the chosen
    :attr:`plan`.
    """

    def __init__(
        self,
        fd: FD,
        model: DistanceModel,
        tau: float,
        strategy: str = "indexed",
        q: int = 2,
        registry: Optional[AttributeIndexRegistry] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self.fd = fd
        self.model = model
        self.tau = tau
        self.strategy = strategy
        self.q = q
        #: shared attribute indexes; pass one registry to every join of a
        #: run so FDs with overlapping attributes reuse each other's work
        self.registry = registry if registry is not None else AttributeIndexRegistry(q)
        self._qgram_attr = self._pick_qgram_attribute() if strategy == "qgram" else None
        self.plan: Optional[BlockPlan] = None
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.possible_pairs = 0
        self.candidates_generated = 0
        self.pairs_examined = 0
        self.pairs_filtered = 0
        self.pairs_verified = 0
        # per-join deltas of the shared model/registry counters, so sums
        # over joins sharing one registry stay correct
        self.kernel_calls = 0
        self.index_builds = 0
        self.index_reuses = 0
        # distinct-id counters of the vectorized strategy (0 elsewhere)
        self.distinct_pairs_examined = 0
        self.tuple_fanout = 0
        self.vector_filter_passes = 0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the possible pairs never examined (0 for scans)."""
        if not self.possible_pairs:
            return 0.0
        return 1.0 - min(1.0, self.pairs_examined / self.possible_pairs)

    def counters(self) -> dict:
        """The join's instrumentation as a plain mapping (for stats)."""
        return {
            "possible_pairs": self.possible_pairs,
            "candidates_generated": self.candidates_generated,
            "pairs_examined": self.pairs_examined,
            "pairs_filtered": self.pairs_filtered,
            "pairs_verified": self.pairs_verified,
            "kernel_calls": self.kernel_calls,
            "index_builds": self.index_builds,
            "index_reuses": self.index_reuses,
            "distinct_pairs_examined": self.distinct_pairs_examined,
            "tuple_fanout": self.tuple_fanout,
            "vector_filter_passes": self.vector_filter_passes,
            "reduction_ratio": self.reduction_ratio,
            "blocker": self.plan.describe() if self.plan is not None else None,
        }

    # ------------------------------------------------------------------
    def _pick_qgram_attribute(self) -> Optional[Tuple[int, float]]:
        """Choose the string attribute with the tightest edit budget.

        Returns (position in the FD projection, weight) or ``None`` when
        the FD has no usable string attribute.
        """
        n_lhs = len(self.fd.lhs)
        best: Optional[Tuple[int, float]] = None
        for pos, _attr in enumerate(self.fd.attributes):
            weight = (
                self.model.weights.lhs if pos < n_lhs else self.model.weights.rhs
            )
            if weight <= 0:
                continue
            if best is None or weight > best[1]:
                best = (pos, weight)
        return best

    def _qgram_reject(self, v1: Tuple, v2: Tuple) -> bool:
        """True when the q-gram filter proves the pair exceeds tau.

        Pairwise reference form of the test; the scan loop inlines a
        boolean-identical version over registry-interned gram profiles
        with the verdict cached per distinct value pair
        (:meth:`AttributeIndexRegistry.count_filter_reject`).
        """
        if self._qgram_attr is None:
            return False
        pos, weight = self._qgram_attr
        a, b = v1[pos], v2[pos]
        if not isinstance(a, str) or not isinstance(b, str) or a == b:
            return False
        # The single attribute alone must satisfy weight * ned <= tau,
        # i.e. lev <= (tau / weight) * max(len).
        longest = max(len(a), len(b))
        if longest == 0:
            return False
        max_edits = int((self.tau / weight) * longest)
        return not passes_count_filter(a, b, max_edits, self.q)

    # ------------------------------------------------------------------
    def join(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """All FT-violating pairs among *patterns* at threshold ``tau``."""
        self._reset_counters()
        self.plan = None
        model, registry = self.model, self.registry
        with span(
            "detect", fd=self.fd.name, strategy=self.strategy, tau=self.tau
        ) as detect_span:
            kernel_calls0 = model.kernel_calls + registry.kernel_calls
            builds0 = registry.index_builds
            reuses0 = registry.index_reuses
            n = len(patterns)
            self.possible_pairs = n * (n - 1) // 2
            if self.strategy == "indexed":
                out = self._indexed_path(patterns)
            elif self.strategy == "vectorized":
                if _np is None:
                    warnings.warn(
                        "numpy is unavailable; join_strategy='vectorized' "
                        "degrades to 'indexed' (identical results, scalar "
                        "performance)",
                        DegradedJoinWarning,
                        stacklevel=2,
                    )
                    out = self._indexed_path(patterns)
                else:
                    vectorized = self._join_vectorized(patterns)
                    if vectorized is None:
                        # custom overrides / uncoercible actives: the
                        # scalar paths own those semantics
                        out = self._indexed_path(patterns)
                    else:
                        out = vectorized
            else:
                out = self._join_scan(patterns)
            self.kernel_calls = (
                model.kernel_calls + registry.kernel_calls - kernel_calls0
            )
            self.index_builds = registry.index_builds - builds0
            self.index_reuses = registry.index_reuses - reuses0
            # Counters land as span attributes only; the executor publishes
            # the unified registry, so nothing is double counted.
            detect_span.set(violations=len(out), **self.counters())
        return out

    def _indexed_path(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """Plan and run the ``indexed`` strategy (also the degraded path)."""
        self.plan = plan_blocker(
            self.fd, self.model, self.tau, patterns, self.q, self.registry
        )
        if self.plan.kind != "scan":
            return self._join_indexed(patterns)
        # no indexable attribute: fall back to the filtered scan
        return self._join_scan(patterns)

    # ------------------------------------------------------------------
    def _join_vectorized(
        self, patterns: Sequence[Pattern]
    ) -> Optional[List[FTViolation]]:
        """The distinct-dictionary-id join, numpy-batched end to end.

        Pipeline (soundness/identity argument in ``docs/detection.md``):

        1. reuse the pigeonhole allocation of the indexed planner to
           split ``tau`` across the FD's usable attributes;
        2. realize each blocker at distinct-id granularity — numpy band
           windows for numerics, length-band + packed q-gram
           count-filter passes for strings, with survivors settled
           **exactly once per distinct pair** through the batched
           prepared Myers kernel;
        3. fan the surviving value pairs out to pattern pairs through
           the per-value pattern groups (segmented ``repeat``/``cumsum``
           expansion), union the blockers, and sort via one
           ``np.unique`` over packed ``i * n + j`` keys;
        4. verify candidates with per-attribute exact distances computed
           once per distinct value pair and accumulated elementwise in
           attribute order — IEEE-identical to the scalar Eq. (2) loop,
           so emitted distances are bit-identical.

        Returns ``None`` when the FD needs the scalar paths (custom
        distance overrides, uncoercible numerics, or no sound
        allocation); the caller degrades to ``indexed``.
        """
        np = _np
        model, fd, tau, registry = self.model, self.fd, self.tau, self.registry
        n = len(patterns)
        if n < 2:
            self.plan = BlockPlan(kind="block", blockers=(), estimate=0)
            return []
        if any(model.has_override(attr) for attr in fd.attributes):
            return None
        n_lhs = len(fd.lhs)
        active = sum(
            1
            for pos in range(len(fd.attributes))
            if (model.weights.lhs if pos < n_lhs else model.weights.rhs) > 0.0
        )
        infos = _usable_attributes(fd, model, patterns, self.q, registry)
        if len(infos) != active:
            return None  # an active attribute failed coercion
        allocation = _allocate_union(infos, tau)
        if allocation is None:
            return None  # the union cannot cover tau soundly
        # -- pick each blocker's kind up front (mirrors _AttrInfo.blocker)
        realized: List[Tuple[Any, float, str]] = []
        for info, budget in allocation:
            ratio = budget / info.weight
            if ratio >= 1.0 - _EXACT_MARGIN:
                return None  # vacuous blocker; defensive (planner agrees)
            if info.numeric:
                kind = "exact" if info.spread <= 0.0 else "band"
            elif ratio * info.max_len < 1.0 - _EXACT_MARGIN:
                kind = "exact"
            else:
                kind = "qgram"
            realized.append((info, ratio, kind))

        # -- per-attribute group arrays (shared by fan-out and verify)
        arrays_of: dict = {}

        def group_arrays(info: Any) -> Tuple[Any, Any, Any]:
            cached = arrays_of.get(info.position)
            if cached is None:
                gsize = np.fromiter(
                    (len(g) for g in info.groups),
                    dtype=np.int64,
                    count=len(info.groups),
                )
                members = np.fromiter(
                    (index for group in info.groups for index in group),
                    dtype=np.int64,
                    count=n,
                )
                goff = np.cumsum(gsize) - gsize
                cached = (members, goff, gsize)
                arrays_of[info.position] = cached
            return cached

        # -- realize blockers and fan distinct-id pairs out to patterns
        distinct_examined = 0
        filter_passes = 0
        key_parts: List[Any] = []
        described: List[AttributeBlocker] = []
        for info, ratio, kind in realized:
            members, goff, gsize = group_arrays(info)
            described.append(
                AttributeBlocker(
                    kind=kind,
                    position=info.position,
                    attribute=info.attribute,
                    weight=info.weight,
                    ratio=ratio,
                )
            )
            intra = np.nonzero(gsize >= 2)[0]
            part = _fanout_keys(members, goff, gsize, intra, intra, n, True)
            if part is not None:
                key_parts.append(part)
            if kind == "exact":
                continue
            if kind == "band":
                band = _band_width(ratio, info.spread)
                u, v, passes = vectorized_band_pairs(info.values, band)
                filter_passes += passes
            else:
                entry, codes = registry.string_index(info.attribute, info.values)
                _, _, packed, sizes, lengths = entry.gram_arrays()
                cu, cv, budgets, passes = vectorized_qgram_pairs(
                    packed, sizes, lengths, ratio, self.q
                )
                filter_passes += passes
                distinct_examined += int(cu.size)
                verdicts = registry.settle_many(
                    entry, cu.tolist(), cv.tolist(), budgets.tolist()
                )
                keep = np.asarray(verdicts, dtype=bool)
                cu, cv = cu[keep], cv[keep]
                # canonical codes -> this FD's local value ids
                codes_arr = np.asarray(codes, dtype=np.int64)
                local = np.empty(len(codes), dtype=np.int64)
                local[codes_arr] = np.arange(len(codes), dtype=np.int64)
                u, v = local[cu], local[cv]
            part = _fanout_keys(members, goff, gsize, u, v, n, False)
            if part is not None:
                key_parts.append(part)

        if key_parts:
            keys = np.unique(np.concatenate(key_parts))
        else:
            keys = np.zeros(0, dtype=np.int64)
        ci = keys // n
        cj = keys - ci * n
        count = int(keys.size)
        self.candidates_generated = count
        self.pairs_examined = count

        # -- verify: exact per-attribute distances once per distinct
        #    value pair, accumulated elementwise in attribute order
        totals = np.zeros(count, dtype=np.float64)
        for info in infos:
            members, goff, gsize = group_arrays(info)
            code_of_pattern = np.empty(n, dtype=np.int64)
            code_of_pattern[members] = np.repeat(
                np.arange(len(gsize), dtype=np.int64), gsize
            )
            a = code_of_pattern[ci]
            b = code_of_pattern[cj]
            neq = np.nonzero(a != b)[0]
            if neq.size == 0:
                continue
            term = np.zeros(count, dtype=np.float64)
            if info.numeric:
                values = np.asarray(info.values, dtype=np.float64)
                if info.spread <= 0.0:
                    term[neq] = 1.0
                else:
                    gaps = np.abs(values[a[neq]] - values[b[neq]])
                    term[neq] = np.minimum(gaps / info.spread, 1.0)
            else:
                n_values = len(info.values)
                lo = np.minimum(a[neq], b[neq])
                hi = np.maximum(a[neq], b[neq])
                unique_keys, inverse = np.unique(
                    lo * n_values + hi, return_inverse=True
                )
                uu = unique_keys // n_values
                vv = unique_keys - uu * n_values
                entry, codes = registry.string_index(info.attribute, info.values)
                codes_arr = np.asarray(codes, dtype=np.int64)
                canon_u = codes_arr[uu]
                canon_v = codes_arr[vv]
                lengths = np.asarray(entry.lengths, dtype=np.int64)
                longest = np.maximum(lengths[canon_u], lengths[canon_v])
                # the loosest budget the scalar banded loop could use;
                # pairs rejected here provably exceed tau (margin
                # weight / longest, far above float noise)
                budgets = ((tau / info.weight) * longest).astype(np.int64) + 1
                edits = np.asarray(
                    registry.bounded_edits_many(
                        entry,
                        canon_u.tolist(),
                        canon_v.tolist(),
                        budgets.tolist(),
                    ),
                    dtype=np.int64,
                )
                distances = np.where(
                    edits <= budgets, edits / longest, np.inf
                )
                distinct_examined += int(unique_keys.size)
                term[neq] = distances[inverse]
            totals = totals + info.weight * term

        rejected = int(np.isinf(totals).sum())
        self.pairs_filtered = rejected
        self.pairs_verified = count - rejected
        self.distinct_pairs_examined = distinct_examined
        self.vector_filter_passes = filter_passes
        multiplicity = np.fromiter(
            (pattern.multiplicity for pattern in patterns),
            dtype=np.int64,
            count=n,
        )
        self.tuple_fanout = int((multiplicity[ci] * multiplicity[cj]).sum())
        self.plan = BlockPlan(
            kind="block", blockers=tuple(described), estimate=count
        )
        hits = np.nonzero(totals <= tau)[0]
        out: List[FTViolation] = []
        for c in hits.tolist():
            out.append(
                FTViolation(
                    patterns[int(ci[c])],
                    patterns[int(cj[c])],
                    float(totals[c]),
                )
            )
        return out

    def _join_indexed(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """Verify only the blocker's candidates, in scan order.

        Candidates arrive sorted by left index, so the left pattern's
        per-attribute kernel preparations (:class:`PreparedProjection`)
        are built once per run of equal ``i`` and reused across all its
        right-hand candidates — the one-vs-many shape.
        """
        assert self.plan is not None
        candidates = candidate_pairs(
            self.plan, patterns, self.model, self.q, self.registry
        )
        self.candidates_generated = len(candidates)
        out: List[FTViolation] = []
        model, fd, tau = self.model, self.fd, self.tau
        prepared: Optional[PreparedProjection] = None
        prepared_i = -1
        for i, j in candidates:
            self.pairs_examined += 1
            left, right = patterns[i], patterns[j]
            if _length_lower_bound(model, fd, left.values, right.values) > tau:
                self.pairs_filtered += 1
                continue
            self.pairs_verified += 1
            if i != prepared_i:
                prepared = PreparedProjection(model, fd, left.values)
                prepared_i = i
            dist = prepared.distance_within_banded(right.values, tau)
            if dist is not None:
                out.append(FTViolation(left, right, dist))
        return out

    def _join_scan(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """The quadratic pair scan shared by naive/filtered/qgram."""
        out: List[FTViolation] = []
        naive = self.strategy == "naive"
        qgram = self.strategy == "qgram"
        model, fd, tau = self.model, self.fd, self.tau
        lhs, rhs = fd.lhs, fd.rhs
        profiles: Optional[List[Optional["CounterType[str]"]]] = None
        pos = -1
        ratio = 0.0
        q = self.q
        reject = self.registry.count_filter_reject
        if qgram and self._qgram_attr is not None:
            # gram profiles once per pattern (interned per distinct value
            # in the registry), not twice per pair
            pos, weight = self._qgram_attr
            ratio = self.tau / weight
            gram_profile = self.registry.gram_profile
            profiles = [
                gram_profile(p.values[pos])
                if isinstance(p.values[pos], str)
                else None
                for p in patterns
            ]
        for i, left in enumerate(patterns):
            # left preparation once per row of the scan (one-vs-many):
            # the length-bound spec and per-attribute kernel comparers
            # are streamed over every right-hand pattern
            prepared = (
                None if naive else PreparedProjection(model, fd, left.values)
            )
            pa = profiles[i] if profiles is not None else None
            if pa is not None:
                a_left = left.values[pos]
                la = len(a_left)
            for k, right in enumerate(patterns[i + 1 :], start=i + 1):
                self.pairs_examined += 1
                if naive:
                    # genuinely unfiltered: full Eq. (2), then compare
                    self.pairs_verified += 1
                    dist = model.projection_distance(
                        lhs, rhs, left.values, right.values
                    )
                    if dist <= tau:
                        out.append(FTViolation(left, right, dist))
                    continue
                if prepared.length_lower_bound(right.values) > tau:
                    self.pairs_filtered += 1
                    continue
                if pa is not None:
                    # inline count filter: the single attribute alone
                    # must satisfy weight * ned <= tau, i.e.
                    # lev <= (tau / weight) * max(len)
                    b = right.values[pos]
                    pb = profiles[k]
                    if pb is not None and a_left != b:
                        lb = len(b)
                        longest = la if la > lb else lb
                        if longest:
                            max_edits = int(ratio * longest)
                            if not a_left or not b:
                                if longest > max_edits:
                                    self.pairs_filtered += 1
                                    continue
                            else:
                                need = longest + q - 1 - max_edits * q
                                if need > 0 and reject(
                                    a_left, b, pa, pb, need
                                ):
                                    self.pairs_filtered += 1
                                    continue
                self.pairs_verified += 1
                dist = prepared.distance_within(
                    right.values, tau, use_filters=False
                )
                if dist is not None:
                    out.append(FTViolation(left, right, dist))
        self.candidates_generated = self.pairs_examined
        return out


def _fanout_keys(
    members: Any,
    goff: Any,
    gsize: Any,
    u: Any,
    v: Any,
    n: int,
    triangle: bool,
) -> Optional[Any]:
    """Fan value-id pairs out to packed pattern-pair keys ``i * n + j``.

    ``members``/``goff``/``gsize`` describe the per-value pattern groups
    (flattened members, group offsets, group sizes). Each ``(u, v)``
    value pair expands to the full cross product of its two groups via
    segmented ``repeat``/``cumsum`` arithmetic — the frequency-weighted
    fan-out, all in numpy. With *triangle* (the intra-group case,
    ``u == v``) only ``i < j`` pairs are kept; cross pairs are
    canonicalized to ``min * n + max``. Returns ``None`` for an empty
    expansion.
    """
    if _np is None or len(u) == 0:
        return None
    su = gsize[u]
    sv = gsize[v]
    counts = su * sv
    total = int(counts.sum())
    if total == 0:
        return None
    pair_of = _np.repeat(_np.arange(len(u), dtype=_np.int64), counts)
    base = _np.cumsum(counts) - counts
    within = _np.arange(total, dtype=_np.int64) - base[pair_of]
    right_size = sv[pair_of]
    iu = within // right_size
    iv = within - iu * right_size
    pi = members[goff[u][pair_of] + iu]
    pj = members[goff[v][pair_of] + iv]
    if triangle:
        keep = pi < pj
        pi, pj = pi[keep], pj[keep]
        if pi.size == 0:
            return None
        return pi * n + pj
    return _np.minimum(pi, pj) * n + _np.maximum(pi, pj)
