"""Similarity self-join over FD patterns.

Detecting FT-violations is a threshold self-join: find every pattern pair
whose weighted projection distance (Eq. 2) is at most ``tau``. This
module wraps the pairwise scan with pluggable filter stacks so the cost
of detection can be studied (ablation benches) and tuned:

* ``naive``     — exact distance for every pair, no filtering.
* ``filtered``  — per-attribute length lower bound + early-abort
  accumulation (sound, default).
* ``qgram``     — ``filtered`` plus a q-gram count filter on the most
  selective string attribute of the FD.

All strategies return exactly the same pairs; only the work differs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import (
    FTViolation,
    Pattern,
    projection_distance_within,
)
from repro.index.qgram import passes_count_filter

STRATEGIES = ("naive", "filtered", "qgram")


class SimilarityJoin:
    """Threshold self-join over patterns of one FD.

    >>> # doctest-level usage lives in tests/test_simjoin.py
    """

    def __init__(
        self,
        fd: FD,
        model: DistanceModel,
        tau: float,
        strategy: str = "filtered",
        q: int = 2,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self.fd = fd
        self.model = model
        self.tau = tau
        self.strategy = strategy
        self.q = q
        self._qgram_attr = self._pick_qgram_attribute() if strategy == "qgram" else None
        self.pairs_examined = 0
        self.pairs_filtered = 0

    def _pick_qgram_attribute(self) -> Optional[Tuple[int, float]]:
        """Choose the string attribute with the tightest edit budget.

        Returns (position in the FD projection, weight) or ``None`` when
        the FD has no usable string attribute.
        """
        n_lhs = len(self.fd.lhs)
        best: Optional[Tuple[int, float]] = None
        for pos, _attr in enumerate(self.fd.attributes):
            weight = (
                self.model.weights.lhs if pos < n_lhs else self.model.weights.rhs
            )
            if weight <= 0:
                continue
            if best is None or weight > best[1]:
                best = (pos, weight)
        return best

    def _qgram_reject(self, v1: Tuple, v2: Tuple) -> bool:
        """True when the q-gram filter proves the pair exceeds tau."""
        if self._qgram_attr is None:
            return False
        pos, weight = self._qgram_attr
        a, b = v1[pos], v2[pos]
        if not isinstance(a, str) or not isinstance(b, str) or a == b:
            return False
        # The single attribute alone must satisfy weight * ned <= tau,
        # i.e. lev <= (tau / weight) * max(len).
        longest = max(len(a), len(b))
        if longest == 0:
            return False
        max_edits = int((self.tau / weight) * longest)
        return not passes_count_filter(a, b, max_edits, self.q)

    def join(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """All FT-violating pairs among *patterns* at threshold ``tau``."""
        out: List[FTViolation] = []
        self.pairs_examined = 0
        self.pairs_filtered = 0
        lhs, rhs = self.fd.lhs, self.fd.rhs
        for i, left in enumerate(patterns):
            for right in patterns[i + 1 :]:
                self.pairs_examined += 1
                if self.strategy == "naive":
                    # genuinely unfiltered: full Eq. (2), then compare
                    dist = self.model.projection_distance(
                        lhs, rhs, left.values, right.values
                    )
                    if dist <= self.tau:
                        out.append(FTViolation(left, right, dist))
                    continue
                if self.strategy == "qgram" and self._qgram_reject(
                    left.values, right.values
                ):
                    self.pairs_filtered += 1
                    continue
                dist = projection_distance_within(
                    self.model,
                    self.fd,
                    left.values,
                    right.values,
                    self.tau,
                    use_filters=True,
                )
                if dist is not None:
                    out.append(FTViolation(left, right, dist))
        return out
