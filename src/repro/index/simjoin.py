"""Similarity self-join over FD patterns.

Detecting FT-violations is a threshold self-join: find every pattern pair
whose weighted projection distance (Eq. 2) is at most ``tau``. This
module wraps the join with pluggable strategies so the cost of detection
can be studied (ablation benches) and tuned:

* ``naive``     — exact distance for every pair, no filtering.
* ``filtered``  — per-attribute length lower bound + early-abort
  accumulation over the full pair scan.
* ``qgram``     — ``filtered`` plus a q-gram count filter on the most
  selective string attribute of the FD.
* ``indexed``   — sub-quadratic candidate generation (engine default):
  a per-FD blocker planner (:mod:`repro.index.blocking`) replaces the
  all-pairs loop with exact-match partitioning, a sorted numeric band
  join, or an inverted q-gram prefix index, and candidates are verified
  with the banded Levenshtein kernel. Falls back to the filtered scan
  when no attribute is indexable.

All strategies return exactly the same violations, in the same order,
with bit-identical distances; only the work differs.

**Counter semantics** (normalized across strategies):

* ``possible_pairs``       — ``P * (P - 1) / 2`` for ``P`` patterns; the
  work a full pair scan would face.
* ``candidates_generated`` — pairs the strategy put on the table: equal
  to ``possible_pairs`` for the scan strategies, the blocker output for
  ``indexed``.
* ``pairs_examined``       — candidate pairs actually inspected (always
  equals ``candidates_generated``; kept for backward compatibility).
* ``pairs_filtered``       — of those, rejected by a cheap sound filter
  (length lower bound, q-gram count) before exact verification. Always
  0 for ``naive``, which verifies everything.
* ``pairs_verified``       — pairs that reached the exact Eq. (2)
  accumulation: ``pairs_examined - pairs_filtered``.

``reduction_ratio`` summarizes the blocking win: the fraction of the
possible pairs the strategy never examined.
"""

from __future__ import annotations

from typing import Counter as CounterType
from typing import List, Optional, Sequence, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import (
    FTViolation,
    Pattern,
    PreparedProjection,
    _length_lower_bound,
)
from repro.index.blocking import BlockPlan, candidate_pairs, plan_blocker
from repro.index.qgram import passes_count_filter
from repro.index.registry import AttributeIndexRegistry
from repro.obs import span

STRATEGIES = ("naive", "filtered", "qgram", "indexed")


class SimilarityJoin:
    """Threshold self-join over patterns of one FD.

    See the module docstring for the strategy menu and the exact counter
    semantics. After :meth:`join` the instance exposes
    ``possible_pairs`` / ``candidates_generated`` / ``pairs_examined`` /
    ``pairs_filtered`` / ``pairs_verified``, the achieved
    :attr:`reduction_ratio`, and (for ``indexed``) the chosen
    :attr:`plan`.
    """

    def __init__(
        self,
        fd: FD,
        model: DistanceModel,
        tau: float,
        strategy: str = "indexed",
        q: int = 2,
        registry: Optional[AttributeIndexRegistry] = None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; expected {STRATEGIES}")
        if tau < 0:
            raise ValueError("tau must be non-negative")
        self.fd = fd
        self.model = model
        self.tau = tau
        self.strategy = strategy
        self.q = q
        #: shared attribute indexes; pass one registry to every join of a
        #: run so FDs with overlapping attributes reuse each other's work
        self.registry = registry if registry is not None else AttributeIndexRegistry(q)
        self._qgram_attr = self._pick_qgram_attribute() if strategy == "qgram" else None
        self.plan: Optional[BlockPlan] = None
        self._reset_counters()

    def _reset_counters(self) -> None:
        self.possible_pairs = 0
        self.candidates_generated = 0
        self.pairs_examined = 0
        self.pairs_filtered = 0
        self.pairs_verified = 0
        # per-join deltas of the shared model/registry counters, so sums
        # over joins sharing one registry stay correct
        self.kernel_calls = 0
        self.index_builds = 0
        self.index_reuses = 0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of the possible pairs never examined (0 for scans)."""
        if not self.possible_pairs:
            return 0.0
        return 1.0 - min(1.0, self.pairs_examined / self.possible_pairs)

    def counters(self) -> dict:
        """The join's instrumentation as a plain mapping (for stats)."""
        return {
            "possible_pairs": self.possible_pairs,
            "candidates_generated": self.candidates_generated,
            "pairs_examined": self.pairs_examined,
            "pairs_filtered": self.pairs_filtered,
            "pairs_verified": self.pairs_verified,
            "kernel_calls": self.kernel_calls,
            "index_builds": self.index_builds,
            "index_reuses": self.index_reuses,
            "reduction_ratio": self.reduction_ratio,
            "blocker": self.plan.describe() if self.plan is not None else None,
        }

    # ------------------------------------------------------------------
    def _pick_qgram_attribute(self) -> Optional[Tuple[int, float]]:
        """Choose the string attribute with the tightest edit budget.

        Returns (position in the FD projection, weight) or ``None`` when
        the FD has no usable string attribute.
        """
        n_lhs = len(self.fd.lhs)
        best: Optional[Tuple[int, float]] = None
        for pos, _attr in enumerate(self.fd.attributes):
            weight = (
                self.model.weights.lhs if pos < n_lhs else self.model.weights.rhs
            )
            if weight <= 0:
                continue
            if best is None or weight > best[1]:
                best = (pos, weight)
        return best

    def _qgram_reject(self, v1: Tuple, v2: Tuple) -> bool:
        """True when the q-gram filter proves the pair exceeds tau.

        Pairwise reference form of the test; the scan loop inlines a
        boolean-identical version over registry-interned gram profiles
        with the verdict cached per distinct value pair
        (:meth:`AttributeIndexRegistry.count_filter_reject`).
        """
        if self._qgram_attr is None:
            return False
        pos, weight = self._qgram_attr
        a, b = v1[pos], v2[pos]
        if not isinstance(a, str) or not isinstance(b, str) or a == b:
            return False
        # The single attribute alone must satisfy weight * ned <= tau,
        # i.e. lev <= (tau / weight) * max(len).
        longest = max(len(a), len(b))
        if longest == 0:
            return False
        max_edits = int((self.tau / weight) * longest)
        return not passes_count_filter(a, b, max_edits, self.q)

    # ------------------------------------------------------------------
    def join(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """All FT-violating pairs among *patterns* at threshold ``tau``."""
        self._reset_counters()
        self.plan = None
        model, registry = self.model, self.registry
        with span(
            "detect", fd=self.fd.name, strategy=self.strategy, tau=self.tau
        ) as detect_span:
            kernel_calls0 = model.kernel_calls + registry.kernel_calls
            builds0 = registry.index_builds
            reuses0 = registry.index_reuses
            n = len(patterns)
            self.possible_pairs = n * (n - 1) // 2
            if self.strategy == "indexed":
                self.plan = plan_blocker(
                    self.fd, self.model, self.tau, patterns, self.q, registry
                )
                if self.plan.kind != "scan":
                    out = self._join_indexed(patterns)
                else:
                    # no indexable attribute: fall back to the filtered scan
                    out = self._join_scan(patterns)
            else:
                out = self._join_scan(patterns)
            self.kernel_calls = (
                model.kernel_calls + registry.kernel_calls - kernel_calls0
            )
            self.index_builds = registry.index_builds - builds0
            self.index_reuses = registry.index_reuses - reuses0
            # Counters land as span attributes only; the executor publishes
            # the unified registry, so nothing is double counted.
            detect_span.set(violations=len(out), **self.counters())
        return out

    def _join_indexed(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """Verify only the blocker's candidates, in scan order.

        Candidates arrive sorted by left index, so the left pattern's
        per-attribute kernel preparations (:class:`PreparedProjection`)
        are built once per run of equal ``i`` and reused across all its
        right-hand candidates — the one-vs-many shape.
        """
        assert self.plan is not None
        candidates = candidate_pairs(
            self.plan, patterns, self.model, self.q, self.registry
        )
        self.candidates_generated = len(candidates)
        out: List[FTViolation] = []
        model, fd, tau = self.model, self.fd, self.tau
        prepared: Optional[PreparedProjection] = None
        prepared_i = -1
        for i, j in candidates:
            self.pairs_examined += 1
            left, right = patterns[i], patterns[j]
            if _length_lower_bound(model, fd, left.values, right.values) > tau:
                self.pairs_filtered += 1
                continue
            self.pairs_verified += 1
            if i != prepared_i:
                prepared = PreparedProjection(model, fd, left.values)
                prepared_i = i
            dist = prepared.distance_within_banded(right.values, tau)
            if dist is not None:
                out.append(FTViolation(left, right, dist))
        return out

    def _join_scan(self, patterns: Sequence[Pattern]) -> List[FTViolation]:
        """The quadratic pair scan shared by naive/filtered/qgram."""
        out: List[FTViolation] = []
        naive = self.strategy == "naive"
        qgram = self.strategy == "qgram"
        model, fd, tau = self.model, self.fd, self.tau
        lhs, rhs = fd.lhs, fd.rhs
        profiles: Optional[List[Optional["CounterType[str]"]]] = None
        pos = -1
        ratio = 0.0
        q = self.q
        reject = self.registry.count_filter_reject
        if qgram and self._qgram_attr is not None:
            # gram profiles once per pattern (interned per distinct value
            # in the registry), not twice per pair
            pos, weight = self._qgram_attr
            ratio = self.tau / weight
            gram_profile = self.registry.gram_profile
            profiles = [
                gram_profile(p.values[pos])
                if isinstance(p.values[pos], str)
                else None
                for p in patterns
            ]
        for i, left in enumerate(patterns):
            # left preparation once per row of the scan (one-vs-many):
            # the length-bound spec and per-attribute kernel comparers
            # are streamed over every right-hand pattern
            prepared = (
                None if naive else PreparedProjection(model, fd, left.values)
            )
            pa = profiles[i] if profiles is not None else None
            if pa is not None:
                a_left = left.values[pos]
                la = len(a_left)
            for k, right in enumerate(patterns[i + 1 :], start=i + 1):
                self.pairs_examined += 1
                if naive:
                    # genuinely unfiltered: full Eq. (2), then compare
                    self.pairs_verified += 1
                    dist = model.projection_distance(
                        lhs, rhs, left.values, right.values
                    )
                    if dist <= tau:
                        out.append(FTViolation(left, right, dist))
                    continue
                if prepared.length_lower_bound(right.values) > tau:
                    self.pairs_filtered += 1
                    continue
                if pa is not None:
                    # inline count filter: the single attribute alone
                    # must satisfy weight * ned <= tau, i.e.
                    # lev <= (tau / weight) * max(len)
                    b = right.values[pos]
                    pb = profiles[k]
                    if pb is not None and a_left != b:
                        lb = len(b)
                        longest = la if la > lb else lb
                        if longest:
                            max_edits = int(ratio * longest)
                            if not a_left or not b:
                                if longest > max_edits:
                                    self.pairs_filtered += 1
                                    continue
                            else:
                                need = longest + q - 1 - max_edits * q
                                if need > 0 and reject(
                                    a_left, b, pa, pb, need
                                ):
                                    self.pairs_filtered += 1
                                    continue
                self.pairs_verified += 1
                dist = prepared.distance_within(
                    right.values, tau, use_filters=False
                )
                if dist is not None:
                    out.append(FTViolation(left, right, dist))
        self.candidates_generated = self.pairs_examined
        return out
