"""Sub-quadratic candidate generation for FT-violation detection.

The threshold self-join of Section 2.1 asks for every pattern pair whose
weighted projection distance (Eq. 2) is at most ``tau``. Per-attribute
distances are non-negative, which yields a **pigeonhole bound**: pick
any subset ``S`` of the FD's positive-weight attributes and any budget
split ``b_i > 0`` with ``sum(b_i) >= tau``; a pair whose distance on
*every* attribute of ``S`` satisfies ``w_i * d_i > b_i`` has total
weighted distance ``> tau`` and can never be an FT-violation. The
candidate set is therefore the **union** of one per-attribute blocker
per member of ``S``, each run at ratio ``r_i = b_i / w_i``:

* ``exact`` — partition patterns by the attribute value; sound whenever
  any difference already exceeds the ratio (string attributes with
  ``r * max_len < 1``, constant-spread numerics, ``tau == 0``).
* ``band`` — sort the distinct numeric values and emit pairs within
  ``r * spread`` of each other; pairs farther apart have normalized
  Euclidean distance ``> r``.
* ``qgram`` — length-aware inverted q-gram index with prefix-filter
  probing. For value lengths ``(la, lb)`` the edit budget is
  ``k = floor(r * max(la, lb) + eps)`` (the epsilon keeps
  float-boundary pairs in); a string within ``k`` edits of the probe
  value shares all but at most ``k * q`` of its distinct q-grams — one
  edit destroys at most ``q`` distinct gram types — so it must hit at
  least one of any ``k * q + 1`` of them. Probing the ``k * q + 1``
  globally rarest grams of the query against per-length posting lists
  is therefore sound; buckets whose length differs from the query's by
  more than ``k`` are skipped outright (``lev >= |la - lb|``). Probe
  survivors are then settled *exactly* at the value level with the
  banded Levenshtein kernel — distinct values are far fewer than
  patterns, so this is cheap and makes the blocker emit precisely the
  pairs within their edit budget.

:func:`plan_blocker` builds the single-attribute plans the budget
``b = tau`` allows plus a greedy multi-attribute allocation (exact
partitions are nearly free budget-wise, numeric bands absorb arbitrary
budget, q-gram budgets rise one edit at a time on the longest
attribute first), ranks every plan by estimated candidate pairs, and
returns the cheapest — or a *scan* plan when nothing beats the filtered
pair scan, e.g. because every blocker would be vacuous at the required
ratios.

Every blocker rejects with a real margin (``>= 1`` whole edit for
q-grams, a relative-plus-absolute band slack for numerics, one
character of normalized length for exact string partitions), so float
rounding in the reference Eq. (2) accumulation can never disagree with
an exclusion. The full soundness argument lives in ``docs/detection.md``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.constraints import FD
from repro.core.distances import DistanceModel, levenshtein_banded, qgrams
from repro.core.violation import Pattern
from repro.index.qgram import packed_overlap
from repro.index.registry import AttributeIndexRegistry

try:  # numpy is optional at runtime; the vectorized passes degrade without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-absent CI job
    _np = None  # type: ignore[assignment]

#: relative epsilon inside the edit-budget floor so float rounding in
#: ``ratio * length`` can never round an exactly-representable budget
#: down; rejection keeps a near-full-edit margin.
_BUDGET_EPS = 1e-9

#: relative slack applied to the numeric band for the same reason.
_BAND_SLACK = 1e-9

#: absolute band slack (times spread) so even near-zero budgets reject
#: with a margin far above float noise.
_BAND_ABS_SLACK = 1e-12

#: margin under which a string edit budget is treated as exactly zero
#: (every differing pair then exceeds the ratio, enabling exact
#: partitioning), and by which ratios stay clear of the ``d <= 1`` clamp.
_EXACT_MARGIN = 1e-6

#: a block plan must beat the scan estimate by this factor; candidate
#: generation overhead eats narrow wins.
_PLAN_ADVANTAGE = 0.8


@dataclass(frozen=True)
class AttributeBlocker:
    """One attribute's sound candidate filter inside a :class:`BlockPlan`.

    ``ratio`` is the attribute-level distance budget ``b / weight``; a
    pair this blocker rejects is guaranteed to have normalized distance
    ``> ratio`` on the attribute. ``budget`` is the integer edit budget
    for ``qgram`` blockers (0 otherwise).
    """

    kind: str  # "exact" | "band" | "qgram"
    position: int
    attribute: str
    weight: float
    ratio: float
    budget: int = 0
    estimate: int = 0
    #: q-gram blockers precompute their surviving value-id pairs during
    #: planning (the work is value-level and cheap); ``None`` means the
    #: emitter must probe the index itself.
    value_pairs: Optional[Tuple[Tuple[int, int], ...]] = None

    def describe(self) -> str:
        return f"{self.kind}({self.attribute})"


@dataclass(frozen=True)
class BlockPlan:
    """The blocker union chosen for one similarity self-join.

    ``kind`` is ``block`` when :attr:`blockers` is a sound union whose
    per-attribute budgets sum to at least ``tau``, or ``scan`` when the
    join must fall back to the filtered pair scan. ``estimate`` is the
    (possibly heuristic) candidate-pair count used to rank plans.
    """

    kind: str  # "block" | "scan"
    blockers: Tuple[AttributeBlocker, ...] = ()
    estimate: int = 0

    def describe(self) -> str:
        """Compact label for stats and CLI output."""
        if self.kind == "scan":
            return "scan"
        return "+".join(blocker.describe() for blocker in self.blockers)


# ----------------------------------------------------------------------
# Grouping helpers
# ----------------------------------------------------------------------
def _group_by_value(
    patterns: Sequence[Pattern], position: int, numeric: bool
) -> Optional[Tuple[List[Any], List[List[int]]]]:
    """Distinct (coerced) values and their pattern-index groups.

    Values are coerced the way :meth:`DistanceModel.attribute_distance`
    coerces them (``str`` for string attributes, ``float`` for numeric),
    so grouping matches the distance semantics exactly. Returns ``None``
    when a value refuses the numeric coercion (the attribute is then
    unusable for blocking).

    Patterns minted by :func:`~repro.core.violation.group_patterns` over
    an encoded relation carry their projections as value ids
    (``Pattern.ids``); those partition on the ids directly — one int
    lookup per pattern, one coercion per *distinct* value — which the
    intern invariant guarantees is the same grouping. Hand-built
    patterns fall back to value-keyed grouping.
    """
    values: List[Any] = []
    groups: List[List[int]] = []
    if patterns and patterns[0].ids is not None:
        by_vid: Dict[int, int] = {}
        for index, pattern in enumerate(patterns):
            assert pattern.ids is not None
            vid = pattern.ids[position]
            slot = by_vid.get(vid)
            if slot is None:
                raw = pattern.values[position]
                if numeric:
                    try:
                        value = float(raw)
                    except (TypeError, ValueError):
                        return None
                else:
                    value = str(raw)
                by_vid[vid] = len(values)
                values.append(value)
                groups.append([index])
            else:
                groups[slot].append(index)
        return values, groups
    ids: Dict[Any, int] = {}
    for index, pattern in enumerate(patterns):
        raw = pattern.values[position]
        if numeric:
            try:
                value = float(raw)
            except (TypeError, ValueError):
                return None
        else:
            value = str(raw)
        vid = ids.get(value)
        if vid is None:
            ids[value] = len(values)
            values.append(value)
            groups.append([index])
        else:
            groups[vid].append(index)
    return values, groups


def _intra_pair_count(groups: Sequence[Sequence[int]]) -> int:
    return sum(len(g) * (len(g) - 1) // 2 for g in groups)


def _cross_pairs(
    left: Sequence[int], right: Sequence[int]
) -> List[Tuple[int, int]]:
    return [(u, v) if u < v else (v, u) for u in left for v in right]


# ----------------------------------------------------------------------
# Band join (numeric attributes)
# ----------------------------------------------------------------------
def _band_width(ratio: float, spread: float) -> float:
    return ratio * spread * (1.0 + _BAND_SLACK) + spread * _BAND_ABS_SLACK


def _band_windows(values: List[float], band: float) -> List[Tuple[int, int]]:
    """Value-id pairs whose numeric gap is within *band* (two-pointer)."""
    order = sorted(range(len(values)), key=lambda vid: values[vid])
    pairs: List[Tuple[int, int]] = []
    left = 0
    for right in range(len(order)):
        while values[order[right]] - values[order[left]] > band:
            left += 1
        for mid in range(left, right):
            pairs.append((order[mid], order[right]))
    return pairs


def _band_estimate(
    values: List[float], groups: List[List[int]], band: float
) -> int:
    """Exact candidate-pair count of the band join, without emitting."""
    order = sorted(range(len(values)), key=lambda vid: values[vid])
    total = _intra_pair_count(groups)
    left = 0
    window = 0  # sum of group sizes currently in [left, right)
    for right in range(len(order)):
        while values[order[right]] - values[order[left]] > band:
            window -= len(groups[order[left]])
            left += 1
        total += window * len(groups[order[right]])
        window += len(groups[order[right]])
    return total


# ----------------------------------------------------------------------
# Q-gram prefix index (string attributes)
# ----------------------------------------------------------------------
class QGramPrefixIndex:
    """Length-bucketed inverted q-gram index over distinct values.

    Posting lists are keyed by (value length, gram); probing iterates
    the length buckets the edit budget allows and unions the postings
    of the query's ``k*q + 1`` rarest grams (the prefix filter). When a
    query has at most ``k*q`` distinct grams the filter is vacuous for
    that query and the whole bucket is taken — soundness over
    selectivity.
    """

    def __init__(self, values: Sequence[str], ratio: float, q: int) -> None:
        self.ratio = ratio
        self.q = q
        self._profiles: List[frozenset] = [
            frozenset(qgrams(value, q)) for value in values
        ]
        frequency: Counter = Counter()
        for profile in self._profiles:
            frequency.update(profile)
        self._frequency = frequency
        self._lengths: List[int] = [len(value) for value in values]
        self._by_length: Dict[int, List[int]] = {}
        self._postings: Dict[int, Dict[str, List[int]]] = {}
        for vid, length in enumerate(self._lengths):
            self._by_length.setdefault(length, []).append(vid)
            bucket = self._postings.setdefault(length, {})
            for gram in self._profiles[vid]:
                bucket.setdefault(gram, []).append(vid)

    def budget(self, la: int, lb: int) -> int:
        """The edit budget for a value-length pair, epsilon included."""
        return int(self.ratio * max(la, lb) + _BUDGET_EPS)

    def candidate_value_pairs(self) -> Set[Tuple[int, int]]:
        """All value-id pairs that may be within their edit budget."""
        frequency = self._frequency
        pairs: Set[Tuple[int, int]] = set()
        lengths = sorted(self._by_length)
        for vid, profile in enumerate(self._profiles):
            la = self._lengths[vid]
            prefix_source = sorted(profile, key=lambda g: (frequency[g], g))
            for lb in lengths:
                k = self.budget(la, lb)
                if abs(la - lb) > k:
                    continue
                if len(prefix_source) <= k * self.q:
                    hits: Sequence[int] = self._by_length[lb]
                else:
                    bucket = self._postings[lb]
                    seen: Set[int] = set()
                    for gram in prefix_source[: k * self.q + 1]:
                        seen.update(bucket.get(gram, ()))
                    hits = seen
                for other in hits:
                    if other != vid:
                        pairs.add((vid, other) if vid < other else (other, vid))
        return pairs


def _qgram_value_pairs(
    values: Sequence[str],
    groups: Sequence[Sequence[int]],
    ratio: float,
    q: int,
    cap: int,
    expansion_limit: float,
) -> Optional[Tuple[Tuple[Tuple[int, int], ...], int]]:
    """Value-id pairs within the *ratio* budget, plus their expansion.

    Prefix-index probing proposes candidates; each survivor is then
    settled exactly with the banded Levenshtein kernel, so the emitted
    set is precisely the pairs within ``floor(ratio * max_len + eps)``
    edits — the tightest sound single-attribute candidate set. Returns
    ``(pairs, expanded)`` where *expanded* counts the cross pattern
    pairs the value pairs unfold to, or ``None`` as soon as the probe
    survivors exceed *cap* or the running expansion exceeds
    *expansion_limit* — a blocker past either bound cannot beat the
    plan that set it, so the (banded) verification work stops early.
    """
    index = QGramPrefixIndex(values, ratio, q)
    raw = index.candidate_value_pairs()
    if len(raw) > cap:
        return None
    kept: List[Tuple[int, int]] = []
    expanded = 0
    for u, v in sorted(raw):
        a, b = values[u], values[v]
        k = index.budget(len(a), len(b))
        if levenshtein_banded(a, b, k) <= k:
            kept.append((u, v))
            expanded += len(groups[u]) * len(groups[v])
            if expanded > expansion_limit:
                return None
    return tuple(kept), expanded


# ----------------------------------------------------------------------
# Vectorized candidate passes (distinct-id granularity, numpy-batched)
# ----------------------------------------------------------------------
#: element budget per transient matrix of the length-band pass and byte
#: budget per packed-overlap gather — both bound peak memory, neither
#: affects the emitted pair set.
_VEC_MATRIX_ELEMS = 1 << 21
_VEC_OVERLAP_BYTES = 1 << 23


def vectorized_band_pairs(values: Sequence[float], band: float) -> Tuple[Any, Any, int]:
    """Value-id pairs with ``|a - b| <= band``, as numpy arrays.

    The vectorized twin of :func:`_band_windows`: an argsort plus one
    ``searchsorted`` per side replaces the two-pointer scan, and the
    windows expand through segmented ``repeat``/``cumsum`` arithmetic.
    Returns ``(u, v, passes)`` where *passes* counts the vectorized
    filter passes run. Same pair set as the scalar code — the window
    condition compares the same floats.
    """
    arr = _np.asarray(values, dtype=_np.float64)
    order = _np.argsort(arr, kind="stable")
    sv = arr[order]
    idx = _np.arange(len(sv), dtype=_np.int64)
    starts = _np.searchsorted(sv, sv - band, side="left")
    counts = idx - starts
    total = int(counts.sum())
    if total == 0:
        empty = _np.zeros(0, dtype=_np.int64)
        return empty, empty, 1
    pair_of = _np.repeat(idx, counts)
    base = _np.cumsum(counts) - counts
    within = _np.arange(total, dtype=_np.int64) - base[pair_of]
    mids = starts[pair_of] + within
    return order[mids], order[pair_of], 1


def vectorized_qgram_pairs(
    packed: Any,
    sizes: Any,
    lengths: Any,
    ratio: float,
    q: int,
) -> Tuple[Any, Any, Any, int]:
    """Distinct-id pair candidates of one q-gram blocker, numpy-batched.

    Runs the two sound prefilters over the canonical (bit-packed) gram
    matrix of :meth:`_StringIndex.gram_arrays`, upper triangle only:

    1. **length band** — ``|la - lb| <= k`` with the per-pair edit
       budget ``k = floor(ratio * max(la, lb) + eps)``;
    2. **q-gram count filter** (distinct-set variant) — ``lev <= k``
       implies the profiles share at least ``max(|Ga|, |Gb|) - k*q``
       grams, so pairs under that overlap are rejected by popcounting
       the packed rows.

    Returns ``(u, v, k, passes)``: surviving canonical code pairs, the
    edit budget per pair (for the exact settle the caller runs), and the
    number of vectorized filter passes. Survivors are a superset of the
    pairs within their budget; the caller settles them exactly, so the
    emitted value-pair set ends up identical to the scalar blocker's.
    """
    n_values = len(lengths)
    passes = 0
    out_u: List[Any] = []
    out_v: List[Any] = []
    out_k: List[Any] = []
    row_bytes = packed.shape[1] if packed.ndim == 2 else 1
    overlap_chunk = max(1, _VEC_OVERLAP_BYTES // max(row_bytes, 1))
    row_chunk = max(16, _VEC_MATRIX_ELEMS // max(n_values, 1))
    idx = _np.arange(n_values, dtype=_np.int64)
    for start in range(0, n_values, row_chunk):
        stop = min(start + row_chunk, n_values)
        li = lengths[start:stop, None]
        maxlen = _np.maximum(li, lengths[None, :])
        budget = (ratio * maxlen + _BUDGET_EPS).astype(_np.int64)
        mask = _np.abs(li - lengths[None, :]) <= budget
        mask &= idx[None, :] > idx[start:stop, None]  # upper triangle
        passes += 1
        rows, cols = _np.nonzero(mask)
        if rows.size == 0:
            continue
        budgets = budget[rows, cols]
        rows = rows + start
        need = _np.maximum(sizes[rows], sizes[cols]) - budgets * q
        keep = _np.ones(rows.size, dtype=bool)
        check = _np.nonzero(need > 0)[0]
        for lo in range(0, check.size, overlap_chunk):
            sel = check[lo : lo + overlap_chunk]
            overlap = packed_overlap(packed, rows[sel], cols[sel])
            keep[sel] = overlap >= need[sel]
            passes += 1
        out_u.append(rows[keep])
        out_v.append(cols[keep])
        out_k.append(budgets[keep])
    if not out_u:
        empty = _np.zeros(0, dtype=_np.int64)
        return empty, empty, empty, passes
    return (
        _np.concatenate(out_u),
        _np.concatenate(out_v),
        _np.concatenate(out_k),
        passes,
    )


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
class _AttrInfo:
    """Everything the planner needs to know about one usable attribute."""

    def __init__(
        self,
        position: int,
        attribute: str,
        weight: float,
        numeric: bool,
        spread: float,
        values: List[Any],
        groups: List[List[int]],
        q: int,
        registry: AttributeIndexRegistry,
    ) -> None:
        self.position = position
        self.attribute = attribute
        self.weight = weight
        self.numeric = numeric
        self.spread = spread
        self.values = values
        self.groups = groups
        self.q = q
        self.registry = registry
        self.intra = _intra_pair_count(groups)
        if numeric:
            self.max_len = 0
        else:
            self.max_len = max((len(v) for v in values), default=0)

    # -- budget levels -------------------------------------------------
    def base_budget(self) -> float:
        """The cheapest sound level: exact partition / zero-width band."""
        if self.numeric and self.spread > 0.0:
            return self.weight * _EXACT_MARGIN  # near-zero band
        if self.numeric or self.max_len == 0:
            # constant numerics / all-empty strings: distinct values are
            # at the clamp, any ratio below 1 excludes them
            return self.weight * (1.0 - 2.0 * _EXACT_MARGIN)
        return self.weight * (1.0 - 2.0 * _EXACT_MARGIN) / self.max_len

    def max_budget(self) -> float:
        """The largest budget this attribute can absorb soundly.

        Normalized distances are clamped at 1, so any ratio at or above
        1 makes the blocker vacuous; everything strictly below stays
        sound (a partially vacuous q-gram probe just takes whole length
        buckets for the affected queries).
        """
        if self.numeric and self.spread <= 0.0:
            return self.base_budget()
        if not self.numeric and self.max_len == 0:
            return self.base_budget()
        return self.weight * (1.0 - 2.0 * _EXACT_MARGIN)

    def next_level(self, budget: float) -> Optional[float]:
        """The next discrete budget above *budget* (strings only).

        Level ``k`` is the largest budget whose edit allowance at
        ``max_len`` is still ``k``: ``ratio * max_len`` just under
        ``k + 1``.
        """
        if self.numeric or self.max_len == 0:
            return None
        ceiling = self.max_budget()
        for k in range(1, self.max_len + 1):
            level = self.weight * (k + 1 - _EXACT_MARGIN) / self.max_len
            if level > ceiling:
                return None
            if level > budget:
                return level
        return None

    # -- blocker construction ------------------------------------------
    def blocker(
        self, budget: float, limit: float = float("inf")
    ) -> Optional[AttributeBlocker]:
        """The sound blocker this attribute runs at *budget*, or None.

        *limit* bounds the candidate-pair estimate a q-gram blocker may
        reach: construction aborts (returns ``None``) as soon as the
        running expansion proves the blocker cannot beat the plan that
        set the limit, which keeps planning cheap on hopeless ratios.
        """
        if budget <= 0.0 or self.weight <= 0.0:
            return None
        ratio = budget / self.weight
        if ratio >= 1.0 - _EXACT_MARGIN:
            return None  # vacuous: normalized distances are clamped at 1
        value_pairs: Optional[Tuple[Tuple[int, int], ...]] = None
        if self.numeric:
            if self.spread <= 0.0:
                kind, k, estimate = "exact", 0, self.intra
            else:
                band = _band_width(ratio, self.spread)
                kind, k = "band", 0
                estimate = self.registry.band_estimate(
                    self.attribute, self.values, self.groups, band
                )
        elif ratio * self.max_len < 1.0 - _EXACT_MARGIN:
            kind, k, estimate = "exact", 0, self.intra
        else:
            k = int(ratio * self.max_len + _BUDGET_EPS)
            kind = "qgram"
            result = self.registry.qgram_value_pairs(
                self.attribute,
                self.values,
                self.groups,
                ratio,
                self._pair_cap(),
                limit - self.intra,
            )
            if result is None:
                return None  # cannot beat the plan that set the limit
            value_pairs, expanded = result
            estimate = self.intra + expanded
        return AttributeBlocker(
            kind=kind,
            position=self.position,
            attribute=self.attribute,
            weight=self.weight,
            ratio=ratio,
            budget=k,
            estimate=estimate,
            value_pairs=value_pairs,
        )

    def _pair_cap(self) -> int:
        """Value-pair budget for planning-time banded verification."""
        n_patterns = sum(len(group) for group in self.groups)
        return max(50_000, n_patterns * n_patterns // 8)


def _usable_attributes(
    fd: FD,
    model: DistanceModel,
    patterns: Sequence[Pattern],
    q: int,
    registry: AttributeIndexRegistry,
) -> List[_AttrInfo]:
    n_lhs = len(fd.lhs)
    infos: List[_AttrInfo] = []
    for position, attribute in enumerate(fd.attributes):
        weight = model.weights.lhs if position < n_lhs else model.weights.rhs
        if weight <= 0.0:
            continue  # contributes nothing to Eq. (2)
        if model.has_override(attribute):
            continue  # custom distance: no geometry to block on
        numeric = model.is_numeric(attribute)
        grouped = _group_by_value(patterns, position, numeric)
        if grouped is None:
            continue
        values, groups = grouped
        spread = model.spread(attribute) if numeric else 0.0
        infos.append(
            _AttrInfo(
                position,
                attribute,
                weight,
                numeric,
                spread,
                values,
                groups,
                q,
                registry,
            )
        )
    return infos


def _allocate_union(
    infos: List[_AttrInfo], tau: float
) -> Optional[List[Tuple[_AttrInfo, float]]]:
    """Greedy budget split with ``sum(budgets) >= tau``, or ``None``.

    Every attribute starts at its cheapest sound level (exact partition
    or zero-width band). Leftover budget flows into numeric bands first
    (they absorb continuously), then raises string q-gram budgets one
    edit at a time, smallest increment first — long attributes absorb
    budget with the least selectivity loss.
    """
    if not infos:
        return None
    budgets = [info.base_budget() for info in infos]
    deficit = tau - sum(budgets)
    if deficit > 0.0:
        # continuous absorption into numeric bands
        for i, info in enumerate(infos):
            if deficit <= 0.0:
                break
            room = info.max_budget() - budgets[i]
            if info.numeric and info.spread > 0.0 and room > 0.0:
                take = min(room, deficit)
                budgets[i] += take
                deficit -= take
        # discrete q-gram level raises: always lift the attribute whose
        # next level leaves it at the smallest ratio, keeping ratios low
        # and even across the union (selectivity decays with ratio)
        while deficit > 0.0:
            best: Optional[Tuple[float, int, float]] = None
            for i, info in enumerate(infos):
                level = info.next_level(budgets[i])
                if level is None:
                    continue
                next_ratio = level / info.weight
                if best is None or (next_ratio, i) < best[:2]:
                    best = (next_ratio, i, level)
            if best is None:
                return None  # cannot cover tau without going vacuous
            _, i, level = best
            deficit -= level - budgets[i]
            budgets[i] = level
    else:
        # surplus: drop the most expensive partitions we can spare
        order = sorted(
            range(len(infos)),
            key=lambda i: (-infos[i].intra, -budgets[i], infos[i].position),
        )
        keep = [True] * len(infos)
        total = sum(budgets)
        for i in order:
            if sum(keep) == 1:
                break
            if total - budgets[i] >= tau:
                keep[i] = False
                total -= budgets[i]
        infos = [info for i, info in enumerate(infos) if keep[i]]
        budgets = [b for i, b in enumerate(budgets) if keep[i]]
    return list(zip(infos, budgets))


def plan_blocker(
    fd: FD,
    model: DistanceModel,
    tau: float,
    patterns: Sequence[Pattern],
    q: int = 2,
    registry: Optional[AttributeIndexRegistry] = None,
) -> BlockPlan:
    """Pick the cheapest sound blocker union for one self-join.

    Candidate plans are the greedy multi-attribute allocation of
    :func:`_allocate_union` plus every single attribute whose weight
    exceeds ``tau`` (the whole budget on one blocker); each is ranked
    by its candidate-pair count (exact for every blocker kind — q-gram
    blockers settle their value pairs during planning) and the cheapest
    wins. Construction aborts early once a plan provably cannot beat
    the best so far; when nothing beats ``_PLAN_ADVANTAGE`` times the
    ``P * (P - 1) / 2`` scan estimate the plan is a ``scan``.

    Pass a shared :class:`AttributeIndexRegistry` so plans over FDs
    with overlapping attributes reuse each other's q-gram indexes and
    sorted numeric orders; the plan itself is identical either way.
    """
    n = len(patterns)
    scan = BlockPlan(kind="scan", estimate=n * (n - 1) // 2)
    if n < 2 or tau < 0.0:
        return scan
    if registry is None:
        registry = AttributeIndexRegistry(q)
    infos = _usable_attributes(fd, model, patterns, q, registry)
    if not infos:
        return scan
    # candidate generation has real overhead (probing, set union, sort);
    # a plan must leave a clear margin over the scan to be worth it, and
    # the margin doubles as the abort limit for blocker construction
    limit = scan.estimate * _PLAN_ADVANTAGE
    best: Optional[BlockPlan] = None
    allocation = _allocate_union(infos, tau)
    if allocation is not None:
        blockers: Optional[List[AttributeBlocker]] = []
        total = 0
        for info, budget in allocation:
            blocker = info.blocker(budget, limit - total)
            if blocker is None or total + blocker.estimate > limit:
                blockers = None
                break
            blockers.append(blocker)
            total += blocker.estimate
        if blockers:
            best = BlockPlan(
                kind="block", blockers=tuple(blockers), estimate=total
            )
            limit = min(limit, float(total))
    for info in infos:
        if tau >= info.weight:
            continue  # the attribute alone can never exceed tau
        blocker = info.blocker(max(tau, info.base_budget()), limit)
        if blocker is None or blocker.estimate >= limit:
            continue
        best = BlockPlan(
            kind="block", blockers=(blocker,), estimate=blocker.estimate
        )
        limit = float(blocker.estimate)
    if best is None or best.estimate >= scan.estimate * _PLAN_ADVANTAGE:
        return scan
    return best


def candidate_pairs(
    plan: BlockPlan,
    patterns: Sequence[Pattern],
    model: DistanceModel,
    q: int = 2,
    registry: Optional[AttributeIndexRegistry] = None,
) -> List[Tuple[int, int]]:
    """Candidate pattern-index pairs of *plan*, sorted ``(i, j), i < j``.

    The union of the plan's per-attribute blockers; each contributes its
    within-group pairs (blocking value identical, distance 0 on the
    attribute) plus its band/q-gram cross pairs. Sorted emission keeps
    the verify order identical to the nested-loop scan, which keeps the
    violation list — and therefore every downstream repair —
    byte-identical across strategies.
    """
    if plan.kind == "scan":
        raise ValueError("scan plans have no candidate generator")
    if registry is None:
        registry = AttributeIndexRegistry(q)
    seen: Set[Tuple[int, int]] = set()
    for blocker in plan.blockers:
        numeric = blocker.kind == "band" or (
            blocker.kind == "exact" and model.is_numeric(blocker.attribute)
        )
        grouped = _group_by_value(patterns, blocker.position, numeric)
        if grouped is None:  # planner vetted this; defensive only
            raise ValueError(
                f"attribute {blocker.attribute!r} stopped coercing"
            )
        values, groups = grouped
        for members in groups:
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    seen.add((u, v))
        if blocker.kind == "band":
            band = _band_width(blocker.ratio, model.spread(blocker.attribute))
            for u, v in registry.band_windows(blocker.attribute, values, band):
                seen.update(_cross_pairs(groups[u], groups[v]))
        elif blocker.kind == "qgram":
            value_pairs: Sequence[Tuple[int, int]]
            if blocker.value_pairs is not None:
                value_pairs = blocker.value_pairs
            else:
                # unsettled fallback: the shared index's raw probe
                # survivors, translated to local ids — same set the
                # per-FD QGramPrefixIndex emitted
                entry, codes = registry.string_index(blocker.attribute, values)
                local_of = {code: vid for vid, code in enumerate(codes)}
                value_pairs = sorted(
                    (local_of[cu], local_of[cv])
                    if local_of[cu] < local_of[cv]
                    else (local_of[cv], local_of[cu])
                    for cu, cv in entry.raw_pairs(blocker.ratio)
                )
            for u, v in value_pairs:
                seen.update(_cross_pairs(groups[u], groups[v]))
    return sorted(seen)
