"""Indexes and optimizations for FT-violation detection."""

from repro.index.blocking import (
    AttributeBlocker,
    BlockPlan,
    QGramPrefixIndex,
    candidate_pairs,
    plan_blocker,
)
from repro.index.qgram import QGramIndex, passes_count_filter, qgram_overlap
from repro.index.simjoin import STRATEGIES, SimilarityJoin

__all__ = [
    "QGramIndex",
    "qgram_overlap",
    "passes_count_filter",
    "SimilarityJoin",
    "STRATEGIES",
    "AttributeBlocker",
    "BlockPlan",
    "QGramPrefixIndex",
    "candidate_pairs",
    "plan_blocker",
]
