"""Fig. 7: precision/recall vs error rate e%.

Paper shape: quality declines moderately as e% grows; Greedy-M stays
closest to its low-noise quality, the naive per-FD greedy (Appro-M)
degrades faster.
"""

import pytest

from _harness import BASE_N, ERROR_RATES, OUR_SYSTEMS, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("error_rate", ERROR_RATES)
@pytest.mark.parametrize("system", OUR_SYSTEMS)
def test_fig7(benchmark, dataset, error_rate, system):
    trial = Trial(dataset=dataset, n=BASE_N, error_rate=error_rate, seed=71)
    result = run_benchmark_trial(benchmark, f"fig7_{dataset}", system, trial)
    assert result.quality.f1 > 0.1
