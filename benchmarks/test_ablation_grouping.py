"""Ablation: tuple grouping (Section 3.1).

Grouping identical projections into one vertex shrinks the violation
graph from |D| to the number of distinct patterns; the directed,
multiplicity-weighted costs keep the repair equivalent. This bench
measures the detection+repair time with and without grouping and checks
the repaired relations agree.
"""

import time

import pytest

from _harness import BASE_N, cached_workload, record_custom
from repro.core.distances import DistanceModel
from repro.core.single.greedy import repair_single_fd_greedy
from repro.eval.metrics import evaluate_repair
from repro.eval.runner import Trial

TRIAL = Trial(dataset="hosp", n=BASE_N, error_rate=0.04, seed=401)


@pytest.mark.parametrize("grouping", [True, False], ids=["grouped", "ungrouped"])
def test_ablation_grouping(benchmark, grouping):
    _, dirty, truth, fds, thresholds = cached_workload(TRIAL)
    model = DistanceModel(dirty)
    fd = fds[1]  # PhoneNumber -> ZipCode

    def run():
        return repair_single_fd_greedy(
            dirty, fd, model, thresholds[fd], grouping=grouping
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    quality = evaluate_repair(result.edits, truth)
    label = "grouped" if grouping else "ungrouped"
    record_custom(
        "ablation_grouping", label, TRIAL, quality, seconds,
        len(result.edits), {"vertices": result.stats["graph_vertices"]},
    )
    if grouping:
        assert result.stats["graph_vertices"] < len(dirty)
    else:
        assert result.stats["graph_vertices"] == len(dirty)
