"""Ablation: LHS/RHS weight split w_l / w_r (Eq. 2).

The paper fixes w_l = w_r = 0.5 and notes w_r "controls the percentage
of right-hand distance". This bench sweeps the split; thresholds are
re-derived analytically for each split so detection stays calibrated.
"""

import time

import pytest

from _harness import BASE_N, record_custom
from repro.core.distances import Weights
from repro.core.engine import Repairer
from repro.eval.metrics import evaluate_repair
from repro.eval.runner import Trial
from repro.generator.hosp import hosp_thresholds
from repro.generator.noise import NoiseConfig, error_cells, inject_noise
from repro.generator.hosp import generate_hosp, hosp_fds

TRIAL = Trial(dataset="hosp", n=BASE_N, error_rate=0.04, seed=405)
SPLITS = [0.3, 0.5, 0.7]


@pytest.mark.parametrize("w_l", SPLITS)
def test_ablation_weights(benchmark, w_l):
    fds = hosp_fds()
    clean = generate_hosp(TRIAL.n, rng=TRIAL.seed)
    dirty, errors = inject_noise(
        clean, fds, NoiseConfig(error_rate=TRIAL.error_rate), rng=TRIAL.seed + 1
    )
    truth = error_cells(errors)
    weights = Weights(w_l, round(1.0 - w_l, 10))
    thresholds = hosp_thresholds(fds, weights)
    repairer = Repairer(
        fds, algorithm="greedy-m", weights=weights, thresholds=thresholds
    )

    start = time.perf_counter()
    result = benchmark.pedantic(
        repairer.repair, args=(dirty,), rounds=1, iterations=1
    )
    seconds = time.perf_counter() - start
    quality = evaluate_repair(result.edits, truth)
    record_custom(
        "ablation_weights", f"w_l={w_l}", TRIAL, quality, seconds,
        len(result.edits),
    )
    assert quality.f1 > 0.5
