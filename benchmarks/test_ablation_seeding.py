"""Ablation: frequency-dominance seeding of the greedy independent set.

At high error rates, the literal Eq. (7)/(8) greedy can crown cheap typo
patterns as anchors (their incremental cost is deflated by foreign
satellites); the joint-target repair then amplifies each flipped anchor
into a wholesale facility rewrite. Dominance seeding — admit patterns
that are more frequent than every pattern they conflict with first —
extends the paper's frequency-ordering insight from the expansion
algorithm to the greedy and removes the flips.
"""

import time

import pytest

from _harness import BASE_N, cached_workload, record_custom
from repro.core.distances import DistanceModel
from repro.core.multi.appro import greedy_sets_per_fd
from repro.core.multi.base import repair_with_sets
from repro.core.multi.fdgraph import fd_components
from repro.eval.metrics import evaluate_repair
from repro.eval.runner import Trial

TRIAL = Trial(dataset="hosp", n=BASE_N, error_rate=0.10, seed=404)


@pytest.mark.parametrize("seeded", [True, False], ids=["seeded", "literal"])
def test_ablation_seeding(benchmark, seeded):
    _, dirty, truth, fds, thresholds = cached_workload(TRIAL)
    model = DistanceModel(dirty)

    def run():
        edits = []
        for component in fd_components(fds):
            _, elements = greedy_sets_per_fd(
                dirty, component, model, thresholds, seed_dominant=seeded
            )
            component_edits, _, _ = repair_with_sets(
                dirty, component, model, elements
            )
            edits.extend(component_edits)
        return edits

    start = time.perf_counter()
    edits = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    quality = evaluate_repair(edits, truth)
    label = "dominance-seeded" if seeded else "literal-eq7/8"
    record_custom("ablation_seeding", label, TRIAL, quality, seconds, len(edits))
    if seeded:
        assert quality.precision > 0.9
