"""Fig. 13: quality vs baselines, varying error rate."""

import pytest

from _harness import (
    BASE_N,
    BASELINE_SYSTEMS,
    ERROR_RATES,
    OUR_SYSTEMS,
    run_benchmark_trial,
)
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("error_rate", ERROR_RATES)
@pytest.mark.parametrize("system", OUR_SYSTEMS + BASELINE_SYSTEMS)
def test_fig13(benchmark, dataset, error_rate, system):
    trial = Trial(dataset=dataset, n=BASE_N, error_rate=error_rate, seed=131)
    result = run_benchmark_trial(benchmark, f"fig13_{dataset}", system, trial)
    assert 0.0 <= result.precision <= 1.0
