"""Fig. 16: runtime vs baselines, varying error rate."""

import pytest

from _harness import (
    BASE_N,
    BASELINE_SYSTEMS,
    ERROR_RATES,
    run_benchmark_trial,
)
from repro.eval.runner import Trial

SYSTEMS = ["greedy-s", "appro-m", "greedy-m"] + BASELINE_SYSTEMS


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("error_rate", ERROR_RATES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig16(benchmark, dataset, error_rate, system):
    trial = Trial(dataset=dataset, n=BASE_N, error_rate=error_rate, seed=161)
    result = run_benchmark_trial(benchmark, f"fig16_{dataset}", system, trial)
    assert result.seconds >= 0.0
