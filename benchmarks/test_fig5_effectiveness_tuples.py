"""Fig. 5: precision/recall vs #tuples (HOSP a-b, Tax c-d).

Paper shape: as N grows, precision and recall of all our algorithms
remain stable; the joint algorithms sit above the sequential single-FD
greedy.
"""

import pytest

from _harness import OUR_SYSTEMS, TUPLE_SIZES, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n", TUPLE_SIZES)
@pytest.mark.parametrize("system", OUR_SYSTEMS)
def test_fig5(benchmark, dataset, n, system):
    trial = Trial(dataset=dataset, n=n, error_rate=0.04, seed=51)
    result = run_benchmark_trial(benchmark, f"fig5_{dataset}", system, trial)
    assert result.precision >= 0.5
    assert result.recall >= 0.5
