"""CI gate over the search-phase speedup in ``BENCH_repair.json``.

The bitset search kernel (``docs/search.md``) must beat the committed
pre-bitset baselines on the *search phase* of the standard HOSP-slice
trajectory — detection is already indexed, so the gate isolates the
span totals the trajectory runner records under ``search_seconds``
(``mis_enumeration`` + ``greedy_growth`` + ``combination`` +
``tree_search``). Two checks, per algorithm:

1. **Speedup** — for the algorithms in :data:`SPEEDUP_REQUIRED`
   (Exact-S and Exact-M, whose enumeration/combination scans dominate),
   the calibrated search time (``search_seconds / calibration_seconds``)
   of the latest entry must undercut the baseline's by at least the
   required factor (2x).
2. **Output hash** — for *every* algorithm present in the trajectory,
   the repair output hash of the latest entry must equal its baseline's.
   A search speedup that changes any repair is a correctness
   regression and fails regardless of timing.

The baseline of an algorithm is the first trajectory entry with the
same scale, tuple count, and algorithm (the committed, pre-bitset one);
the candidate is the last. Exit status follows the shared gate
conventions (``benchmarks/_gate.py``): 0 pass, 1 regression, 2
missing/malformed trajectory (including speedup-gated algorithms that
have a baseline but no fresh entry — run ``benchmarks/_trajectory.py
--algorithm <name>`` first).

Usage::

    python benchmarks/check_search_gate.py [path/to/BENCH_repair.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_repair.json"

#: algorithm -> minimum calibrated search-phase speedup vs its baseline
SPEEDUP_REQUIRED: Dict[str, float] = {"exact-s": 2.0, "exact-m": 2.0}


def calibrated_search(entry: dict) -> Optional[float]:
    """Machine-independent search-phase time of one entry, if recorded."""
    if "search_seconds" not in entry:
        return None
    calibration = float(entry.get("calibration_seconds") or 0.0)
    seconds = float(entry["search_seconds"])
    return seconds / calibration if calibration > 0 else seconds


def pair_up(trajectory: List[dict]) -> Dict[str, Tuple[dict, dict]]:
    """Algorithm -> (baseline, latest) over same-shape entries.

    The baseline is the first entry of an algorithm's (scale, n_tuples)
    shape, the candidate the last; shapes follow the *latest* entry per
    algorithm so a scale switch starts a fresh comparison.
    """
    latest: Dict[str, dict] = {}
    for entry in trajectory:
        algorithm = entry.get("algorithm")
        if algorithm:
            latest[str(algorithm)] = entry
    pairs: Dict[str, Tuple[dict, dict]] = {}
    for algorithm, last in latest.items():
        baseline = next(
            entry
            for entry in trajectory
            if entry.get("algorithm") == algorithm
            and entry.get("scale") == last.get("scale")
            and entry.get("n_tuples") == last.get("n_tuples")
        )
        pairs[algorithm] = (baseline, last)
    return pairs


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(
            f"gate: {path} not found; run benchmarks/_trajectory.py first",
            file=sys.stderr,
        )
        verdict_summary("search gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        pairs = pair_up(trajectory)
        if not pairs:
            raise ValueError("no trajectory entries")
    except (ValueError, KeyError, TypeError, StopIteration) as exc:
        print(f"gate: cannot read trajectory entries: {exc}", file=sys.stderr)
        verdict_summary(
            "search gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    failures: List[str] = []
    missing: List[str] = []
    rows = ["| algorithm | baseline search | latest search | speedup | hash |",
            "|---|---:|---:|---:|---|"]
    for algorithm in sorted(pairs):
        baseline, last = pairs[algorithm]
        base_hash = baseline.get("output_hash")
        last_hash = last.get("output_hash")
        hash_ok = base_hash == last_hash
        if not hash_ok:
            failures.append(
                f"{algorithm}: output hash drifted "
                f"{base_hash} -> {last_hash} (repair changed)"
            )
        base_search = calibrated_search(baseline)
        last_search = calibrated_search(last)
        speedup: Optional[float] = None
        if (
            baseline is not last
            and base_search is not None
            and last_search is not None
            and last_search > 0
        ):
            speedup = base_search / last_search
        required = SPEEDUP_REQUIRED.get(algorithm)
        if required is not None:
            if baseline is last:
                missing.append(
                    f"{algorithm}: only the committed baseline is present; "
                    f"run benchmarks/_trajectory.py --algorithm {algorithm}"
                )
            elif speedup is None:
                missing.append(
                    f"{algorithm}: entries lack search_seconds timings"
                )
            elif speedup < required:
                failures.append(
                    f"{algorithm}: search phase sped up only {speedup:.2f}x "
                    f"(required >= {required:.1f}x)"
                )
        rows.append(
            f"| {algorithm} | "
            f"{'-' if base_search is None else f'{base_search:.2f}'} | "
            f"{'-' if last_search is None else f'{last_search:.2f}'} | "
            f"{'-' if speedup is None else f'{speedup:.2f}x'}"
            f"{'' if required is None else f' (>= {required:.1f}x)'} | "
            f"{'ok' if hash_ok else 'DRIFT'} |"
        )
        print(
            f"gate: {algorithm} — search "
            f"{'-' if base_search is None else f'{base_search:.2f}'} -> "
            f"{'-' if last_search is None else f'{last_search:.2f}'} "
            f"({'-' if speedup is None else f'{speedup:.2f}x'}), "
            f"hash {last_hash} vs {base_hash}"
        )
    detail = "\n".join(rows)

    if failures:
        for failure in failures:
            print(f"gate: FAIL — {failure}", file=sys.stderr)
        verdict_summary(
            "search gate", "FAIL", "\n".join(failures) + "\n\n" + detail
        )
        return EXIT_REGRESSION
    if missing:
        for item in missing:
            print(f"gate: MISSING — {item}", file=sys.stderr)
        verdict_summary(
            "search gate", "MISSING", "\n".join(missing) + "\n\n" + detail
        )
        return EXIT_MISSING
    print("gate: PASS")
    verdict_summary("search gate", "PASS", detail)
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
