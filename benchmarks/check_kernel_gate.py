"""CI gate over the bit-parallel distance kernel.

Two checks, run from the repository root::

    python benchmarks/check_kernel_gate.py

1. **Speedup floor** — a 200-character microbench must show the Myers
   bit-parallel kernel at least 2x faster than the two-row DP. The
   bit-parallel column update is O(ceil(m/w)) big-int words against the
   DP's O(m) inner loop, so anything under 2x on 200-character strings
   means the kernel has regressed into scalar behaviour.
2. **Equivalence suite ran** — the differential suite
   ``tests/test_kernels.py`` is executed and must pass with **zero
   skips**: a skipped kernel-equivalence test would let a wrong kernel
   through on green CI.

Exit status 0 on pass, 1 on failure, 2 when the environment cannot run
the checks (missing pytest, missing test file).
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TEST_FILE = ROOT / "tests" / "test_kernels.py"
MIN_SPEEDUP = 2.0
STRING_LENGTH = 200
PAIRS = 60
ROUNDS = 3


def _workload(rng_seed: int = 9) -> list:
    """Deterministic 200-character string pairs with scattered edits."""
    import random

    rng = random.Random(rng_seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    pairs = []
    for _ in range(PAIRS):
        left = "".join(rng.choice(alphabet) for _ in range(STRING_LENGTH))
        chars = list(left)
        for _ in range(rng.randrange(1, 12)):
            pos = rng.randrange(len(chars))
            chars[pos] = rng.choice(alphabet)
        pairs.append((left, "".join(chars)))
    return pairs


def _time_kernel(fn, pairs) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for a, b in pairs:
            fn(a, b)
        best = min(best, time.perf_counter() - start)
    return best


def check_speedup() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.core.distances import levenshtein_myers, levenshtein_two_row

    pairs = _workload()
    # warm-up + correctness spot check before timing
    for a, b in pairs[:5]:
        assert levenshtein_myers(a, b) == levenshtein_two_row(a, b)
    myers = _time_kernel(levenshtein_myers, pairs)
    two_row = _time_kernel(levenshtein_two_row, pairs)
    speedup = two_row / myers if myers > 0 else float("inf")
    print(
        f"gate: {PAIRS} pairs of {STRING_LENGTH}-char strings — "
        f"myers {myers * 1e3:.1f}ms, two_row {two_row * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x (floor {MIN_SPEEDUP}x)"
    )
    if speedup < MIN_SPEEDUP:
        print(
            f"gate: FAIL — Myers kernel below the {MIN_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


def check_equivalence_suite() -> int:
    if not TEST_FILE.exists():
        print(f"gate: {TEST_FILE} not found", file=sys.stderr)
        return 2
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(TEST_FILE), "-q", "-rs",
         "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(ROOT / "src")},
    )
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    print(f"gate: equivalence suite — {tail}")
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print("gate: FAIL — kernel equivalence suite failed", file=sys.stderr)
        return 1
    if re.search(r"\bskipped\b", proc.stdout):
        sys.stderr.write(proc.stdout)
        print(
            "gate: FAIL — kernel equivalence tests were skipped; the "
            "differential suite must actually run",
            file=sys.stderr,
        )
        return 1
    return 0


def main() -> int:
    try:
        status = check_speedup()
    except ImportError as exc:
        print(f"gate: cannot import the distance layer: {exc}",
              file=sys.stderr)
        return 2
    suite = check_equivalence_suite()
    if suite == 2 or status == 2:
        return 2
    if status or suite:
        return 1
    print("gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
