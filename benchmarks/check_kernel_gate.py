"""CI gate over the bit-parallel distance kernel.

Two checks, run from the repository root::

    python benchmarks/check_kernel_gate.py

1. **Speedup floor** — a 200-character microbench must show the Myers
   bit-parallel kernel at least 2x faster than the two-row DP. The
   bit-parallel column update is O(ceil(m/w)) big-int words against the
   DP's O(m) inner loop, so anything under 2x on 200-character strings
   means the kernel has regressed into scalar behaviour.
2. **Equivalence suite ran** — the differential suite
   ``tests/test_kernels.py`` is executed and must pass with **zero
   skips**: a skipped kernel-equivalence test would let a wrong kernel
   through on green CI.

Exit status follows the shared gate conventions (``benchmarks/_gate.py``):
0 on pass, 1 on failure, 2 when the environment cannot run the checks
(missing pytest, missing test file). A verdict block is appended to
``$GITHUB_STEP_SUMMARY`` when set.
"""

from __future__ import annotations

import re
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

TEST_FILE = ROOT / "tests" / "test_kernels.py"
MIN_SPEEDUP = 2.0
STRING_LENGTH = 200
PAIRS = 60
ROUNDS = 3


def _workload(rng_seed: int = 9) -> list:
    """Deterministic 200-character string pairs with scattered edits."""
    import random

    rng = random.Random(rng_seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    pairs = []
    for _ in range(PAIRS):
        left = "".join(rng.choice(alphabet) for _ in range(STRING_LENGTH))
        chars = list(left)
        for _ in range(rng.randrange(1, 12)):
            pos = rng.randrange(len(chars))
            chars[pos] = rng.choice(alphabet)
        pairs.append((left, "".join(chars)))
    return pairs


def _time_kernel(fn, pairs) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for a, b in pairs:
            fn(a, b)
        best = min(best, time.perf_counter() - start)
    return best


def check_speedup() -> "tuple":
    sys.path.insert(0, str(ROOT / "src"))
    from repro.core.distances import levenshtein_myers, levenshtein_two_row

    pairs = _workload()
    # warm-up + correctness spot check before timing
    for a, b in pairs[:5]:
        assert levenshtein_myers(a, b) == levenshtein_two_row(a, b)
    myers = _time_kernel(levenshtein_myers, pairs)
    two_row = _time_kernel(levenshtein_two_row, pairs)
    speedup = two_row / myers if myers > 0 else float("inf")
    detail = (
        f"{PAIRS} pairs of {STRING_LENGTH}-char strings — "
        f"myers `{myers * 1e3:.1f}ms`, two_row `{two_row * 1e3:.1f}ms`, "
        f"speedup `{speedup:.1f}x` (floor `{MIN_SPEEDUP}x`)"
    )
    print(
        f"gate: {PAIRS} pairs of {STRING_LENGTH}-char strings — "
        f"myers {myers * 1e3:.1f}ms, two_row {two_row * 1e3:.1f}ms, "
        f"speedup {speedup:.1f}x (floor {MIN_SPEEDUP}x)"
    )
    if speedup < MIN_SPEEDUP:
        print(
            f"gate: FAIL — Myers kernel below the {MIN_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return EXIT_REGRESSION, detail
    return EXIT_PASS, detail


def check_equivalence_suite() -> int:
    if not TEST_FILE.exists():
        print(f"gate: {TEST_FILE} not found", file=sys.stderr)
        return EXIT_MISSING
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(TEST_FILE), "-q", "-rs",
         "-p", "no:cacheprovider"],
        capture_output=True,
        text=True,
        cwd=ROOT,
        env={**__import__("os").environ, "PYTHONPATH": str(ROOT / "src")},
    )
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    print(f"gate: equivalence suite — {tail}")
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print("gate: FAIL — kernel equivalence suite failed", file=sys.stderr)
        return EXIT_REGRESSION
    if re.search(r"\bskipped\b", proc.stdout):
        sys.stderr.write(proc.stdout)
        print(
            "gate: FAIL — kernel equivalence tests were skipped; the "
            "differential suite must actually run",
            file=sys.stderr,
        )
        return EXIT_REGRESSION
    return EXIT_PASS


def main() -> int:
    try:
        status, detail = check_speedup()
    except ImportError as exc:
        print(f"gate: cannot import the distance layer: {exc}",
              file=sys.stderr)
        verdict_summary(
            "kernel gate", "MISSING", f"cannot import the distance layer: {exc}"
        )
        return EXIT_MISSING
    suite = check_equivalence_suite()
    if suite == EXIT_MISSING:
        verdict_summary("kernel gate", "MISSING", f"`{TEST_FILE}` not found")
        return EXIT_MISSING
    if status or suite:
        extra = "" if suite == EXIT_PASS else "; equivalence suite failed"
        verdict_summary("kernel gate", "FAIL", detail + extra)
        return EXIT_REGRESSION
    print("gate: PASS")
    verdict_summary("kernel gate", "PASS", detail)
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main())
