"""Append one serving-layer run to the ``BENCH_serve.json`` trajectory.

Measures the four serving claims ``benchmarks/check_serve_gate.py``
gates, on a synthetic catalog workload (distinct 12–14 char codes and
names under tight thresholds — the regime where q-gram candidate
generation has pruning power):

1. **sustained load** — a fleet of async clients drives the micro-
   batched service (10% dirty records) for ``N_REQUESTS``; the entry
   records requests/second and the exact p50/p95/p99 window quantiles
   plus the latency histogram;
2. **model-cache economics** — cold ``get_or_fit`` (the full fit) vs a
   cache hit on the same fingerprint, and the hit rate over a steady
   tenant mix;
3. **index efficiency** — the fraction of fitted elements the indexed
   hot path actually verified vs the linear scan
   (``serve_elements_examined / serve_elements_total``), measured in
   absorb mode where ``consistent_everywhere`` runs;
4. **equivalence** — every served response is replayed through the
   batch :meth:`IncrementalRepairer.repair_record`; any byte difference
   is recorded (and fails the gate).

Entries carry ``"kind": "serve"`` so the end-to-end perf gate
(``benchmarks/check_perf_gate.py``) skips them when the two
trajectories share a file.

Usage::

    PYTHONPATH=src python benchmarks/_serve_bench.py \
        [path/to/BENCH_serve.json]
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import string
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _gate import ROOT, calibration_seconds  # noqa: E402

from repro.core.constraints import FD  # noqa: E402
from repro.core.incremental import IncrementalRepairer  # noqa: E402
from repro.dataset.relation import Relation, Schema  # noqa: E402
from repro.serve import (  # noqa: E402
    ModelCache,
    RepairService,
    ServeConfig,
)

DEFAULT_PATH = ROOT / "BENCH_serve.json"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")
#: (distinct codes, reference rows, served requests, client coroutines)
SCALES = {
    "smoke": (200, 1000, 5000, 16),
    "paper": (400, 4000, 20000, 32),
}
DIRTY_SHARE = 0.10
TAU = 0.15


def build_workload(seed: int = 13):
    """Reference relation + FDs + request stream of the catalog scenario."""
    n_codes, n_rows, n_requests, n_clients = SCALES[SCALE]
    rng = random.Random(seed)

    def token(n: int) -> str:
        return "".join(
            rng.choice(string.ascii_lowercase) for _ in range(n)
        )

    codes = [token(12) for _ in range(n_codes)]
    names = [token(14) for _ in range(n_codes)]
    categories = [token(10) for _ in range(max(20, n_codes // 10))]
    schema = Schema.of("code", "name", "category")
    rows = []
    for _ in range(n_rows):
        j = rng.randrange(n_codes)
        rows.append((codes[j], names[j], categories[j % len(categories)]))
    relation = Relation(schema, rows)
    fds = [
        FD(("code",), ("name",), name="f1"),
        FD(("code",), ("category",), name="f2"),
    ]
    thresholds = {fds[0]: TAU, fds[1]: TAU}

    requests = []
    for _ in range(n_requests):
        j = rng.randrange(n_codes)
        record = {
            "code": codes[j],
            "name": names[j],
            "category": categories[j % len(categories)],
        }
        if rng.random() < DIRTY_SHARE:
            attr = rng.choice(["code", "name"])
            value = record[attr]
            pos = rng.randrange(len(value))
            record[attr] = (
                value[:pos] + rng.choice("XYZQW") + value[pos + 1 :]
            )
        requests.append(record)
    return relation, fds, thresholds, requests, n_clients


def bench_cache(relation, fds, thresholds) -> dict:
    """Cold fit vs cache hit, plus the hit rate over a tenant mix."""
    cache = ModelCache(capacity=4)
    start = time.perf_counter()
    key, _ = cache.get_or_fit(
        relation, fds, thresholds=thresholds, absorb=True
    )
    fit_seconds = time.perf_counter() - start
    # hit path: repeat lookups (timed per lookup, best of the batch)
    hits = 50
    start = time.perf_counter()
    for _ in range(hits):
        hit_key, _ = cache.get_or_fit(
            relation, fds, thresholds=thresholds, absorb=True
        )
    hit_seconds = (time.perf_counter() - start) / hits
    assert hit_key == key
    counters = cache.counters()
    total = counters["model_cache_hits"] + counters["model_cache_misses"]
    return {
        "fit_seconds": fit_seconds,
        "cache_hit_seconds": hit_seconds,
        "cache_speedup": (
            fit_seconds / hit_seconds if hit_seconds > 0 else float("inf")
        ),
        "cache_hit_rate": counters["model_cache_hits"] / total,
        "model_cache_hits": counters["model_cache_hits"],
        "model_cache_misses": counters["model_cache_misses"],
    }


async def drive(service: RepairService, requests, n_clients: int):
    """Sustained load: *n_clients* coroutines draining the request list."""
    queue = list(enumerate(requests))
    results: list = [None] * len(requests)
    cursor = 0

    async def client():
        nonlocal cursor
        while True:
            if cursor >= len(queue):
                return
            index, record = queue[cursor]
            cursor += 1
            results[index] = await service.repair(record)

    async with service:
        start = time.perf_counter()
        await asyncio.gather(*(client() for _ in range(n_clients)))
        wall = time.perf_counter() - start
    return results, wall


def bench_load(relation, fds, thresholds, requests, n_clients) -> dict:
    """Serve every request; verify equivalence against the batch path."""
    service = RepairService(
        ServeConfig(batch_size=32, batch_timeout=0.001)
    )
    key = service.fit(relation, fds, thresholds=thresholds, absorb=True)
    results, wall = asyncio.run(drive(service, requests, n_clients))

    # equivalence replay: a fresh batch repairer must produce the same
    # repairs (absorb mutates state, so replay runs the same sequence)
    replay = IncrementalRepairer(
        fds, thresholds=thresholds, absorb=True
    ).fit(relation)
    mismatches = 0
    for record, served in zip(requests, results):
        expect_record, expect_edits = replay.repair_record(dict(record))
        got_edits = [
            (e["attribute"], e["old"], e["new"]) for e in served["edits"]
        ]
        want_edits = [
            (e.attribute, e.old, e.new) for e in expect_edits
        ]
        if served["record"] != expect_record or got_edits != want_edits:
            mismatches += 1

    model = service.model(key)
    counters = service.counters()
    out = {
        "n_requests": len(requests),
        "n_clients": n_clients,
        "wall_clock_seconds": wall,
        "requests_per_second": len(requests) / wall,
        "examined_fraction": model.examined_fraction(),
        "equivalence_mismatches": mismatches,
        "records_repaired": model.records_repaired,
        "records_absorbed": model.records_absorbed,
        "latency_histogram": service.latency.histogram(),
    }
    for name in (
        "latency_p50_ms",
        "latency_p95_ms",
        "latency_p99_ms",
        "latency_mean_ms",
        "latency_max_ms",
        "queue_wait_mean_ms",
        "queue_depth_peak",
        "serve_batches",
        "serve_requests",
        "serve_batch_mean_size",
        "serve_elements_total",
        "serve_elements_examined",
        "serve_index_probes",
        "serve_index_rebuilds",
    ):
        out[name] = counters[name]
    return out


def main(argv) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    relation, fds, thresholds, requests, n_clients = build_workload()

    entry = {
        "kind": "serve",
        "scale": SCALE,
        "n_reference_rows": len(relation),
        "dirty_share": DIRTY_SHARE,
        "tau": TAU,
        "calibration_seconds": calibration_seconds(),
    }
    entry.update(bench_cache(relation, fds, thresholds))
    entry.update(bench_load(relation, fds, thresholds, requests, n_clients))

    trajectory = []
    if path.exists():
        try:
            trajectory = json.loads(path.read_text())
        except ValueError:
            trajectory = []
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")

    print(
        f"serve bench ({SCALE}): {entry['requests_per_second']:.0f} req/s, "
        f"p50 {entry['latency_p50_ms']:.2f}ms, "
        f"p99 {entry['latency_p99_ms']:.2f}ms, "
        f"cache speedup {entry['cache_speedup']:.0f}x, "
        f"examined {entry['examined_fraction']:.3f}, "
        f"mismatches {entry['equivalence_mismatches']}"
    )
    print(f"appended to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
