"""Table 2: the algorithm inventory, positions and complexities.

The paper's Table 2 is metadata, not measurement — this bench renders it
from the live registry and micro-benchmarks each algorithm once on the
running example so every row demonstrably executes.
"""

import pytest

from _harness import RESULTS_DIR
from repro.core.engine import ALGORITHMS, Repairer
from repro.dataset.citizens import (
    CITIZENS_FDS,
    CITIZENS_THRESHOLDS,
    citizens_dirty,
)
from repro.eval.reporting import format_table


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_table2_row(benchmark, algorithm):
    dirty = citizens_dirty()
    repairer = Repairer(
        CITIZENS_FDS, algorithm=algorithm, thresholds=CITIZENS_THRESHOLDS
    )
    result = benchmark.pedantic(
        repairer.repair, args=(dirty,), rounds=3, iterations=1
    )
    assert result.relation is not None
    benchmark.extra_info["section"] = ALGORITHMS[algorithm]["section"]


def test_table2_render(benchmark):
    rows = [
        [name, info["section"], info["description"], info["complexity"]]
        for name, info in sorted(ALGORITHMS.items())
    ]
    table = format_table(["Abbr.", "Position", "Full name", "Complexity"], rows)

    def render():
        return table

    benchmark.pedantic(render, rounds=1, iterations=1)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "table2.txt").write_text(f"# Table 2\n\n{table}\n")
    assert "exact-s" in table
