"""Empirical check of the claimed complexities (Table 2).

Greedy-S is O(|I| * |V|) on the grouped graph and detection is
O(|V|^2) with filters: doubling the number of distinct patterns should
roughly quadruple detection-dominated runtime, not explode it. This
bench sweeps the pattern count (via the entity count at fixed N) and
records runtime per pattern-pair, which should stay near-flat.
"""

import time

import pytest

from _harness import record_custom
from repro.core.distances import DistanceModel
from repro.core.single.greedy import repair_single_fd_greedy
from repro.core.violation import group_patterns
from repro.eval.metrics import RepairQuality
from repro.eval.runner import Trial
from repro.generator.hosp import generate_hosp, hosp_fds, hosp_thresholds
from repro.generator.noise import NoiseConfig, inject_noise

ENTITY_COUNTS = [10, 20, 40]
N = 1200


@pytest.mark.parametrize("entities", ENTITY_COUNTS)
def test_complexity_scaling(benchmark, entities):
    fd = hosp_fds(1)[0]
    clean = generate_hosp(N, rng=71, n_facilities=entities, n_measures=5)
    dirty, _ = inject_noise(clean, [fd], NoiseConfig(0.04), rng=72)
    tau = hosp_thresholds([fd])[fd]
    patterns = len(group_patterns(dirty, fd))

    def run():
        model = DistanceModel(dirty)  # fresh cache per measurement
        return repair_single_fd_greedy(dirty, fd, model, tau)

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    pairs = patterns * (patterns - 1) / 2
    placeholder = RepairQuality(1.0, 1.0, 1.0, 0, 0.0, 0)
    record_custom(
        "complexity_scaling",
        f"{patterns} patterns",
        Trial(dataset="hosp", n=N, seed=71),
        placeholder,
        seconds,
        len(result.edits),
        {"us_per_pair": round(1e6 * seconds / max(pairs, 1), 3)},
    )
    assert result.stats["graph_vertices"] == patterns
