"""CI gate over the ``BENCH_repair.json`` end-to-end repair trajectory.

Compares the **latest** entry the trajectory runner appended
(``benchmarks/_trajectory.py``) against the **baseline** — the first
entry with the same scale and tuple count (the committed one). Two
checks:

1. **Wall clock** — the calibrated wall time (``wall_seconds /
   calibration_seconds``, which cancels machine speed) must not exceed
   the baseline's by more than ``MAX_REGRESSION`` (25%).
2. **Output hash** — the repair output hash must be identical. A perf
   change that alters the produced repair is a correctness regression
   and fails regardless of timing.

Exit status follows the shared gate conventions (``benchmarks/_gate.py``):
0 pass, 1 regression, 2 missing/malformed trajectory. A phase-timing
comparison table is appended to ``$GITHUB_STEP_SUMMARY`` when set.

Usage::

    python benchmarks/check_perf_gate.py [path/to/BENCH_repair.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    step_summary,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_repair.json"
MAX_REGRESSION = 0.25


def calibrated(entry: dict) -> float:
    """Machine-independent wall measure of one entry."""
    calibration = float(entry.get("calibration_seconds") or 0.0)
    wall = float(entry["wall_seconds"])
    return wall / calibration if calibration > 0 else wall


def find_baseline(trajectory: list, latest: dict) -> dict:
    """First entry of the same workload shape as *latest*."""
    for entry in trajectory:
        if (
            entry.get("scale") == latest.get("scale")
            and entry.get("n_tuples") == latest.get("n_tuples")
            and entry.get("algorithm") == latest.get("algorithm")
        ):
            return entry
    return latest


def phase_table(baseline: dict, latest: dict) -> str:
    """Markdown phase-timing comparison for the step summary."""
    phases = sorted(
        set(baseline.get("phase_seconds", {})) | set(latest.get("phase_seconds", {}))
    )
    lines = [
        "| phase | baseline s | latest s |",
        "|---|---:|---:|",
    ]
    for phase in phases:
        base = baseline.get("phase_seconds", {}).get(phase)
        last = latest.get("phase_seconds", {}).get(phase)
        lines.append(
            f"| {phase} | "
            f"{'-' if base is None else f'{base:.4f}'} | "
            f"{'-' if last is None else f'{last:.4f}'} |"
        )
    return "\n".join(lines)


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(
            f"gate: {path} not found; run benchmarks/_trajectory.py first",
            file=sys.stderr,
        )
        verdict_summary("perf gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        # Only timed repair runs count here; side-channel entries (e.g.
        # the tax_substrate memory/traffic entry, serving-layer entries
        # from BENCH_serve.json, or detector scenario matrices from
        # BENCH_scenarios.json) have their own gates.
        runs = [
            e
            for e in trajectory
            if "wall_seconds" in e
            and e.get("kind") not in ("serve", "scenario")
        ]
        latest = runs[-1]
        baseline = find_baseline(runs, latest)
        base_rate = calibrated(baseline)
        last_rate = calibrated(latest)
        base_hash = baseline["output_hash"]
        last_hash = latest["output_hash"]
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        print(
            f"gate: cannot read trajectory entries: {exc}", file=sys.stderr
        )
        verdict_summary(
            "perf gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    ratio = last_rate / base_rate if base_rate > 0 else 1.0
    print(
        f"gate: {latest.get('algorithm')} on {latest.get('n_tuples')} tuples "
        f"({latest.get('scale')}) — calibrated wall {last_rate:.2f} vs "
        f"baseline {base_rate:.2f} ({ratio:.2f}x, ceiling "
        f"{1 + MAX_REGRESSION:.2f}x); hash {last_hash} vs {base_hash}"
    )
    detail = (
        f"calibrated wall `{last_rate:.2f}` vs baseline `{base_rate:.2f}` "
        f"(`{ratio:.2f}x`, ceiling `{1 + MAX_REGRESSION:.2f}x`)\n\n"
        + phase_table(baseline, latest)
    )

    if last_hash != base_hash:
        print(
            f"gate: FAIL — repair output hash changed "
            f"({base_hash} -> {last_hash}); the repair itself differs",
            file=sys.stderr,
        )
        verdict_summary(
            "perf gate",
            "FAIL",
            f"repair output hash changed: `{base_hash}` → `{last_hash}`\n\n"
            + detail,
        )
        return EXIT_REGRESSION
    if baseline is not latest and ratio > 1 + MAX_REGRESSION:
        print(
            f"gate: FAIL — calibrated wall clock regressed {ratio:.2f}x "
            f"(> {1 + MAX_REGRESSION:.2f}x)",
            file=sys.stderr,
        )
        verdict_summary("perf gate", "FAIL", detail)
        return EXIT_REGRESSION
    print("gate: PASS")
    verdict_summary("perf gate", "PASS", detail)
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
