"""Fig. 6: precision/recall vs #FDs.

Paper shape: recall grows with the number of constraints (more errors
become detectable); Greedy-M >= Appro-M because of cross-FD
synchronization.
"""

import pytest

from _harness import BASE_N, FD_COUNTS, OUR_SYSTEMS, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n_fds", FD_COUNTS)
@pytest.mark.parametrize("system", OUR_SYSTEMS)
def test_fig6(benchmark, dataset, n_fds, system):
    trial = Trial(
        dataset=dataset, n=BASE_N, n_fds=n_fds, error_rate=0.04, seed=61
    )
    result = run_benchmark_trial(benchmark, f"fig6_{dataset}", system, trial)
    assert result.precision >= 0.4
