"""Fig. 15: runtime vs baselines, varying #FDs."""

import pytest

from _harness import (
    BASE_N,
    BASELINE_SYSTEMS,
    FD_COUNTS,
    run_benchmark_trial,
)
from repro.eval.runner import Trial

SYSTEMS = ["greedy-s", "appro-m", "greedy-m"] + BASELINE_SYSTEMS


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n_fds", FD_COUNTS)
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig15(benchmark, dataset, n_fds, system):
    trial = Trial(
        dataset=dataset, n=BASE_N, n_fds=n_fds, error_rate=0.04, seed=151
    )
    result = run_benchmark_trial(benchmark, f"fig15_{dataset}", system, trial)
    assert result.seconds >= 0.0
