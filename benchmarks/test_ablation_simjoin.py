"""Ablation: similarity-join filter stacks for FT-violation detection.

All strategies return identical violation sets; the filters trade a
cheap length/count test against the edit-distance dynamic program. On
short key-like values (the generators' 7-character words) the DP is so
cheap that filters only break even, so this bench measures detection
over *long* values — 25-character strings, the regime of real HOSP
hospital names and addresses — where skipping the DP pays.

``test_hosp_slice_trajectory`` additionally times end-to-end detection
of every strategy on a noisy generated HOSP slice (5k tuples at
``REPRO_BENCH_SCALE=paper``, 800 at smoke) and appends the wall clocks
and candidate counters to the ``BENCH_simjoin.json`` trajectory file at
the repository root; ``benchmarks/check_simjoin_gate.py`` gates CI on
its latest entry.
"""

import json
import time
from pathlib import Path

import pytest

from _harness import SCALE, record_custom
from repro.core.constraints import FD
from repro.core.distances import KERNELS, DistanceModel, Weights, use_kernel
from repro.core.violation import group_patterns
from repro.dataset.relation import Relation, Schema
from repro.eval.metrics import RepairQuality
from repro.eval.runner import Trial
from repro.generator.hosp import HOSP_FDS, generate_hosp, hosp_thresholds
from repro.generator.noise import NoiseConfig, inject_noise
from repro.generator.vocab import build_vocabulary
from repro.index.registry import AttributeIndexRegistry
from repro.index.simjoin import STRATEGIES, SimilarityJoin
from repro.utils.rng import make_rng

TRIAL = Trial(dataset="hosp", n=400, error_rate=0.06, seed=402)
N_ENTITIES = 120
FD_LONG = FD.parse("LongKey -> LongName")
HOSP_SLICE_N = 5000 if SCALE == "paper" else 800
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_simjoin.json"


def _long_string_relation() -> Relation:
    """An instance whose constrained values are 25-character strings."""
    rng = make_rng(7)
    keys = build_vocabulary("key", N_ENTITIES, suffix_length=22, min_edits=8,
                            rng=rng)
    names = build_vocabulary("nam", N_ENTITIES, suffix_length=22, min_edits=8,
                             rng=rng)
    relation = Relation(Schema.of("LongKey", "LongName"))
    for i in range(N_ENTITIES):
        for _ in range(3):
            relation.append((keys[i], names[i]))
    # sprinkle typos so violations exist
    for i in range(0, N_ENTITIES, 5):
        tid = relation.append((keys[i], names[i]))
        text = relation.value(tid, "LongName")
        relation.set_value(tid, "LongName", text[:-2] + "zz")
    return relation


@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_ablation_simjoin(benchmark, strategy):
    relation = _long_string_relation()
    patterns = group_patterns(relation, FD_LONG)
    tau = 0.15  # catches the seeded typos only

    def detect():
        # fresh model per run: the distance cache must not leak between
        # strategies or the later ones get a free ride
        model = DistanceModel(relation)
        join = SimilarityJoin(FD_LONG, model, tau, strategy=strategy)
        return join, join.join(patterns)

    start = time.perf_counter()
    join, violations = benchmark.pedantic(detect, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    placeholder = RepairQuality(1.0, 1.0, 1.0, 0, 0.0, 0)
    record_custom(
        "ablation_simjoin", strategy, TRIAL, placeholder, seconds,
        len(violations),
        {"pairs_examined": join.pairs_examined,
         "pairs_filtered": join.pairs_filtered},
    )
    assert violations


def test_strategies_agree_on_long_strings(benchmark):
    relation = _long_string_relation()
    patterns = group_patterns(relation, FD_LONG)

    def all_strategies():
        results = []
        for strategy in STRATEGIES:
            model = DistanceModel(relation)
            join = SimilarityJoin(FD_LONG, model, 0.15, strategy=strategy)
            results.append(
                {
                    frozenset((v.left.values, v.right.values))
                    for v in join.join(patterns)
                }
            )
        return results

    results = benchmark.pedantic(all_strategies, rounds=1, iterations=1)
    assert all(result == results[0] for result in results[1:])


# ----------------------------------------------------------------------
# The BENCH_simjoin.json trajectory: noisy HOSP slice, every strategy
# ----------------------------------------------------------------------
def _noisy_hosp_workload():
    clean = generate_hosp(HOSP_SLICE_N, rng=7)
    relation, _errors = inject_noise(clean, HOSP_FDS, NoiseConfig(), rng=11)
    weights = Weights(0.5, 0.5)
    thresholds = hosp_thresholds(weights=weights)
    patterns = {fd: group_patterns(relation, fd) for fd in HOSP_FDS}
    return relation, weights, thresholds, patterns


def test_hosp_slice_trajectory(benchmark):
    relation, weights, thresholds, patterns = _noisy_hosp_workload()

    def detect_all_fds(strategy):
        """One full-FD detection pass; fresh model, shared registry."""
        # fresh model per run: the distance cache must not leak between
        # runs or later ones get a free ride
        model = DistanceModel(relation, weights=weights)
        registry = AttributeIndexRegistry()  # shared across the FDs
        counters = {
            "possible_pairs": 0,
            "candidates_generated": 0,
            "pairs_examined": 0,
            "pairs_filtered": 0,
            "pairs_verified": 0,
            "kernel_calls": 0,
            "index_builds": 0,
            "index_reuses": 0,
            "distinct_pairs_examined": 0,
            "tuple_fanout": 0,
            "vector_filter_passes": 0,
        }
        out = []
        start = time.perf_counter()
        for fd in HOSP_FDS:
            join = SimilarityJoin(
                fd, model, thresholds[fd], strategy=strategy,
                registry=registry,
            )
            out.append(
                [
                    (v.left.values, v.right.values, v.distance)
                    for v in join.join(patterns[fd])
                ]
            )
            for key in counters:
                counters[key] += getattr(join, key)
        counters["seconds"] = round(time.perf_counter() - start, 4)
        return counters, out

    def run_all():
        runs = {}
        violations = {}
        for strategy in STRATEGIES:
            runs[strategy], violations[strategy] = detect_all_fds(strategy)
        # kernel sweep: the indexed strategy under every kernel must
        # produce the identical violation list
        kernels = {}
        kernel_violations = {}
        for kernel in KERNELS:
            with use_kernel(kernel):
                counters, out = detect_all_fds("indexed")
            kernels[kernel] = {
                "seconds": counters["seconds"],
                "kernel_calls": counters["kernel_calls"],
            }
            kernel_violations[kernel] = out
        return runs, violations, kernels, kernel_violations

    runs, violations, kernels, kernel_violations = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # every strategy returns the identical violation list, distances and
    # order included — and so does every kernel
    reference = violations["naive"]
    for strategy in STRATEGIES[1:]:
        assert violations[strategy] == reference, strategy
    for kernel, out in kernel_violations.items():
        assert out == reference, kernel

    # the blocker must not examine more pairs than the filtered scan
    assert (
        runs["indexed"]["pairs_examined"] <= runs["filtered"]["pairs_examined"]
    )
    # the shared registry must actually reuse its per-attribute indexes
    assert runs["indexed"]["index_reuses"] > 0
    # distinct-id granularity pays: the vectorized strategy settles far
    # fewer value pairs than the tuple-level fan-out it stands in for
    assert (
        runs["vectorized"]["distinct_pairs_examined"]
        <= runs["vectorized"]["tuple_fanout"]
    )
    assert runs["vectorized"]["vector_filter_passes"] > 0

    entry = {
        "scale": SCALE,
        "n_tuples": HOSP_SLICE_N,
        "n_fds": len(HOSP_FDS),
        "kernel": "myers",
        "possible_pairs": runs["naive"]["possible_pairs"],
        "strategies": runs,
        "kernels": kernels,
        "indexed_verified_fraction": round(
            runs["indexed"]["pairs_verified"]
            / max(1, runs["naive"]["possible_pairs"]),
            4,
        ),
    }
    trajectory = []
    if BENCH_PATH.exists():
        trajectory = json.loads(BENCH_PATH.read_text())
    trajectory.append(entry)
    BENCH_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")

    placeholder = RepairQuality(1.0, 1.0, 1.0, 0, 0.0, 0)
    slice_trial = Trial(dataset="hosp", n=HOSP_SLICE_N, error_rate=0.06,
                        seed=7)
    for strategy, counters in runs.items():
        record_custom(
            "ablation_simjoin", f"hosp-{strategy}", slice_trial, placeholder,
            counters["seconds"], 0, dict(counters),
        )
