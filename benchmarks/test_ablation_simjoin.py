"""Ablation: similarity-join filter stacks for FT-violation detection.

All strategies return identical violation sets; the filters trade a
cheap length/count test against the edit-distance dynamic program. On
short key-like values (the generators' 7-character words) the DP is so
cheap that filters only break even, so this bench measures detection
over *long* values — 25-character strings, the regime of real HOSP
hospital names and addresses — where skipping the DP pays.
"""

import time

import pytest

from _harness import record_custom
from repro.core.constraints import FD
from repro.core.distances import DistanceModel
from repro.core.violation import group_patterns
from repro.dataset.relation import Relation, Schema
from repro.eval.metrics import RepairQuality
from repro.eval.runner import Trial
from repro.generator.vocab import build_vocabulary
from repro.utils.rng import make_rng

TRIAL = Trial(dataset="hosp", n=400, error_rate=0.06, seed=402)
N_ENTITIES = 120
FD_LONG = FD.parse("LongKey -> LongName")


def _long_string_relation() -> Relation:
    """An instance whose constrained values are 25-character strings."""
    rng = make_rng(7)
    keys = build_vocabulary("key", N_ENTITIES, suffix_length=22, min_edits=8,
                            rng=rng)
    names = build_vocabulary("nam", N_ENTITIES, suffix_length=22, min_edits=8,
                             rng=rng)
    relation = Relation(Schema.of("LongKey", "LongName"))
    for i in range(N_ENTITIES):
        for _ in range(3):
            relation.append((keys[i], names[i]))
    # sprinkle typos so violations exist
    for i in range(0, N_ENTITIES, 5):
        tid = relation.append((keys[i], names[i]))
        text = relation.value(tid, "LongName")
        relation.set_value(tid, "LongName", text[:-2] + "zz")
    return relation


@pytest.mark.parametrize("strategy", ["naive", "filtered", "qgram"])
def test_ablation_simjoin(benchmark, strategy):
    from repro.index.simjoin import SimilarityJoin

    relation = _long_string_relation()
    patterns = group_patterns(relation, FD_LONG)
    tau = 0.15  # catches the seeded typos only

    def detect():
        # fresh model per run: the distance cache must not leak between
        # strategies or the later ones get a free ride
        model = DistanceModel(relation)
        join = SimilarityJoin(FD_LONG, model, tau, strategy=strategy)
        return join, join.join(patterns)

    start = time.perf_counter()
    join, violations = benchmark.pedantic(detect, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    placeholder = RepairQuality(1.0, 1.0, 1.0, 0, 0.0, 0)
    record_custom(
        "ablation_simjoin", strategy, TRIAL, placeholder, seconds,
        len(violations),
        {"pairs_examined": join.pairs_examined,
         "pairs_filtered": join.pairs_filtered},
    )
    assert violations


def test_strategies_agree_on_long_strings(benchmark):
    from repro.index.simjoin import SimilarityJoin

    relation = _long_string_relation()
    patterns = group_patterns(relation, FD_LONG)

    def all_three():
        results = []
        for strategy in ("naive", "filtered", "qgram"):
            model = DistanceModel(relation)
            join = SimilarityJoin(FD_LONG, model, 0.15, strategy=strategy)
            results.append(
                {
                    frozenset((v.left.values, v.right.values))
                    for v in join.join(patterns)
                }
            )
        return results

    results = benchmark.pedantic(all_three, rounds=1, iterations=1)
    assert results[0] == results[1] == results[2]
