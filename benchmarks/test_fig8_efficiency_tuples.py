"""Fig. 8: runtime vs #tuples, with and without the target tree.

Paper shape: the "-Tree" variants dominate their no-tree counterparts;
Greedy-M is the slowest of the heuristics (it recomputes synchronized
costs), Appro-M with the tree the fastest multi-FD repairer.

Caveat (see EXPERIMENTS.md): on entity-aligned workloads the joined
target space is near-linear, so tree and naive join run within ~20%
of each other; the paper's large tree gains need a combinatorial
target space, reproduced by benchmarks/test_ablation_targettree.py.
"""

import pytest

from _harness import TREE_SYSTEMS, TUPLE_SIZES, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n", TUPLE_SIZES)
@pytest.mark.parametrize("system", TREE_SYSTEMS + ["greedy-s"])
def test_fig8(benchmark, dataset, n, system):
    trial = Trial(dataset=dataset, n=n, error_rate=0.04, seed=81)
    result = run_benchmark_trial(benchmark, f"fig8_{dataset}", system, trial)
    assert result.seconds >= 0.0
