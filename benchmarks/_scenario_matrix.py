"""Append one detector scenario-matrix run to ``BENCH_scenarios.json``.

The workload is the shipped scenario grid
(:data:`repro.eval.runner.SCENARIOS` — every error profile on its
natural dataset) crossed with every registry detector, at 2000 tuples
under ``REPRO_BENCH_SCALE=paper`` and 400 at ``smoke``. Each run
appends one ``kind="scenario"`` entry:

* identity — scale, tuple count, the detector and scenario lists;
* the matrix — per (scenario x detector) cell-exact precision / recall
  / F1 from :func:`repro.eval.metrics.evaluate_detection`, plus flagged
  counts and per-detector seconds;
* the FD anchor — a full ``greedy-m`` repair of the ``fd-noise``
  scenario scored against the injected truth, run twice (detectors off,
  every detector on) with both output hashes recorded. The scenario
  gate (``benchmarks/check_scenario_gate.py``) fails when the hashes
  diverge: detectors are an advisory signal layer and must never change
  the repair (``docs/scenarios.md``).

The ``kind`` marker keeps ``benchmarks/check_perf_gate.py`` from
trending these entries as end-to-end repair runs.

Usage::

    PYTHONPATH=src python benchmarks/_scenario_matrix.py \
        [path/to/BENCH_scenarios.json]
"""

from __future__ import annotations

import json
import sys
import time
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _gate import ROOT, calibration_seconds  # noqa: E402
from _harness import SCALE  # noqa: E402

from repro.core.engine import Repairer  # noqa: E402
from repro.detect import DETECTORS  # noqa: E402
from repro.eval.metrics import evaluate_repair  # noqa: E402
from repro.eval.runner import SCENARIOS, scenario_matrix  # noqa: E402
from repro.exec.config import RepairConfig  # noqa: E402
from repro.obs import repair_output_hash  # noqa: E402

DEFAULT_PATH = ROOT / "BENCH_scenarios.json"
SCENARIO_N = 2000 if SCALE == "paper" else 400
REPAIR_ALGORITHM = "greedy-m"


def matrix_entry() -> dict:
    """One scenario-matrix run as a trajectory entry."""
    detectors = DETECTORS.names()
    start = time.perf_counter()
    results = scenario_matrix(detectors=detectors, n=SCENARIO_N)
    matrix_wall = time.perf_counter() - start
    matrix = [
        {
            "scenario": r.scenario.name,
            "dataset": r.scenario.dataset,
            "profile": r.scenario.profile,
            "detector": r.detector,
            "target": r.is_target,
            "precision": round(r.quality.precision, 6),
            "recall": round(r.quality.recall, 6),
            "f1": round(r.quality.f1, 6),
            "flagged_cells": r.quality.flagged_cells,
            "true_errors": r.quality.true_errors,
            "seconds": round(r.seconds, 4),
        }
        for r in results
    ]
    return {
        "kind": "scenario",
        "scale": SCALE,
        "n_tuples": SCENARIO_N,
        "calibration_seconds": round(calibration_seconds(), 4),
        "detectors": list(detectors),
        "scenarios": [s.name for s in SCENARIOS],
        "datasets": sorted({s.dataset for s in SCENARIOS}),
        "matrix_seconds": round(matrix_wall, 4),
        "matrix": matrix,
        "fd_repair": _fd_repair_anchor(),
    }


def _fd_repair_anchor() -> dict:
    """The fd-noise scenario repaired end-to-end, detectors off vs on.

    Scores the repair cell-exactly against the injected truth and pins
    both output hashes; the gate requires them identical (the advisory
    detector layer must not influence the search).
    """
    scenario = next(s for s in SCENARIOS if s.name == "fd-noise")
    _, dirty, truth, fds, thresholds = scenario.workload(SCENARIO_N)
    hashes = {}
    quality = None
    edits = 0
    for label, spec in (("plain", None), ("detectors", tuple(DETECTORS))):
        repairer = Repairer(
            fds,
            algorithm=REPAIR_ALGORITHM,
            thresholds=thresholds,
            config=RepairConfig(detectors=spec),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = repairer.repair(dirty)
        hashes[label] = repair_output_hash(result.edits, result.cost)
        if label == "plain":
            variables = result.stats.get("variables", set())
            quality = evaluate_repair(result.edits, truth, variables)
            edits = len(result.edits)
    return {
        "scenario": scenario.name,
        "algorithm": REPAIR_ALGORITHM,
        "precision": round(quality.precision, 6),
        "recall": round(quality.recall, 6),
        "f1": round(quality.f1, 6),
        "edits": edits,
        "true_errors": quality.true_errors,
        "output_hash_plain": hashes["plain"],
        "output_hash_detectors": hashes["detectors"],
        "byte_identical": hashes["plain"] == hashes["detectors"],
    }


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    entry = matrix_entry()
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text())
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    targets = [c for c in entry["matrix"] if c["target"]]
    anchor = entry["fd_repair"]
    print(
        f"scenarios: {len(entry['scenarios'])} scenario(s) x "
        f"{len(entry['detectors'])} detector(s) on {entry['n_tuples']} "
        f"tuples ({SCALE}) — target-diagonal F1 "
        + ", ".join(f"{c['scenario']}={c['f1']:.3f}" for c in targets)
        + f"; fd repair F1 {anchor['f1']:.3f}, hashes "
        f"{'identical' if anchor['byte_identical'] else 'DIVERGED'}; "
        f"{len(trajectory)} entr{'y' if len(trajectory) == 1 else 'ies'} "
        f"in {path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
