"""Exact vs greedy on instances where exhaustive search is feasible.

The single- and multi-FD repair problems are NP-hard (Theorems 3, 6);
the exact algorithms therefore only run at small scale — exactly as in
the paper, where Exact-M could not handle the larger Tax settings. This
bench demonstrates (a) the optimality gap of the heuristics is ~0 on
feasible instances, and (b) the runtime separation between exact and
greedy (the practical argument for Sections 3.2/4.3/4.4).
"""

import time

import pytest

from _harness import record_custom, run_benchmark_trial
from repro.eval.runner import Trial, run_trial

SIZES = [80, 160, 320]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("system", ["exact-m", "greedy-m"])
def test_exact_vs_greedy(benchmark, n, system):
    trial = Trial(
        dataset="hosp",
        n=n,
        n_fds=2,  # the connected {ZipCode->City,State ; Phone->ZipCode}
        error_rate=0.04,
        seed=501,
        max_nodes=200_000,
        max_combinations=100_000,
        fallback="greedy",
    )
    result = run_benchmark_trial(benchmark, "exact_optimality", system, trial)
    assert result.precision > 0.6


def test_exact_cost_lower_bounds_greedy(benchmark):
    trial = Trial(
        dataset="hosp", n=120, n_fds=2, error_rate=0.04, seed=502,
        max_nodes=200_000, max_combinations=100_000, fallback="greedy",
    )

    def both():
        return run_trial("exact-m", trial), run_trial("greedy-m", trial)

    exact, greedy = benchmark.pedantic(both, rounds=1, iterations=1)
    exact_cost = exact.stats.get("component_cost", None)
    # compare via the engine-reported costs in stats-free fashion:
    # rerun to fetch RepairResult costs directly
    from repro.eval.runner import build_system, Trial as T

    _, dirty, _, fds, thresholds = trial.workload()
    exact_result = build_system("exact-m", fds, thresholds, trial).repair(dirty)
    greedy_result = build_system("greedy-m", fds, thresholds, trial).repair(dirty)
    assert exact_result.cost <= greedy_result.cost + 1e-9
