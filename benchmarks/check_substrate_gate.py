"""CI gate over the columnar-substrate ``tax_substrate`` entries.

Checks the **latest** ``tax_substrate`` entry appended by
``benchmarks/_trajectory.py --substrate`` against fixed ceilings (no
baseline entry needed — the properties are absolute):

1. **Flat memory** — the marginal resident bytes per tuple between the
   two Tax load points must stay under ``MARGINAL_BYTES_CEILING``. The
   columnar layout costs 4 bytes per cell (64 B for Tax's 16
   attributes) plus allocator slack; a pointer-per-cell row-major
   relation is several hundred bytes per tuple and blows the ceiling.
2. **Small task messages** — ``task_bytes_max`` (the largest per-task
   request pickle of the ``n_jobs=2`` repair) must stay under
   ``TASK_BYTES_CEILING``, and the recorded row-major per-task bytes
   must be at least ``MIN_TASK_REDUCTION``x larger — the pre-1.2
   substrate embedded the whole relation in every task.
3. **Unchanged repairs** — the output hash of every algorithm on the
   pinned 800-tuple HOSP slice must equal the row-major-era constants.
   Any drift means the encoding changed repair semantics.

Exit status follows ``benchmarks/_gate.py``: 0 pass, 1 regression,
2 missing/malformed trajectory.

Usage::

    python benchmarks/check_substrate_gate.py [path/to/BENCH_repair.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_repair.json"

#: marginal resident bytes per Tax tuple (16 attrs x 4 B encoded = 64 B;
#: measured ~62 B — the ceiling leaves room for allocator variance)
MARGINAL_BYTES_CEILING = 160.0
#: largest allowed per-task request message, bytes (measured ~1.2 KiB)
TASK_BYTES_CEILING = 16384
#: per-task payload shrink factor vs the row-major substrate
MIN_TASK_REDUCTION = 10.0
#: repair output hashes on the pinned 800-tuple HOSP slice, recorded on
#: the row-major substrate before the columnar rewrite
EXPECTED_HASHES = {
    "appro-m": "ed47302ef255617b",
    "exact-m": "ed47302ef255617b",
    "exact-s": "3a25e7b8fe51b497",
    "greedy-m": "ed47302ef255617b",
    "greedy-s": "3a25e7b8fe51b497",
}


def check(entry: dict) -> list:
    """All gate failures of one entry (empty = pass)."""
    failures = []
    marginal = float(entry.get("marginal_bytes_per_tuple", float("inf")))
    if marginal > MARGINAL_BYTES_CEILING:
        failures.append(
            f"marginal RSS {marginal:.1f} B/tuple exceeds the "
            f"{MARGINAL_BYTES_CEILING:.0f} B ceiling (memory not flat)"
        )
    shipping = entry.get("shipping", {})
    task_max = int(shipping.get("task_bytes_max", 0))
    if not task_max:
        failures.append("no task_bytes_max recorded")
    elif task_max > TASK_BYTES_CEILING:
        failures.append(
            f"largest task message {task_max} B exceeds the "
            f"{TASK_BYTES_CEILING} B ceiling"
        )
    row_major = int(shipping.get("row_major_task_bytes", 0))
    if task_max and row_major / task_max < MIN_TASK_REDUCTION:
        failures.append(
            f"task payload only {row_major / task_max:.1f}x smaller than "
            f"row-major (need >= {MIN_TASK_REDUCTION:.0f}x)"
        )
    hashes = entry.get("output_hashes", {})
    for algorithm, expected in EXPECTED_HASHES.items():
        got = hashes.get(algorithm)
        if got != expected:
            failures.append(
                f"{algorithm}: output hash {got} != {expected} "
                f"(repairs changed)"
            )
    return failures


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        verdict_summary("substrate gate", "MISSING", f"no {path.name}")
        print(f"substrate gate: missing {path}", file=sys.stderr)
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        entries = [
            e for e in trajectory if e.get("workload") == "tax_substrate"
        ]
    except (json.JSONDecodeError, AttributeError) as exc:
        verdict_summary("substrate gate", "MISSING", f"malformed: {exc}")
        print(f"substrate gate: malformed {path}: {exc}", file=sys.stderr)
        return EXIT_MISSING
    if not entries:
        verdict_summary(
            "substrate gate", "MISSING", "no tax_substrate entry"
        )
        print(
            "substrate gate: no tax_substrate entry; run "
            "benchmarks/_trajectory.py --substrate",
            file=sys.stderr,
        )
        return EXIT_MISSING

    latest = entries[-1]
    failures = check(latest)
    shipping = latest.get("shipping", {})
    detail = (
        f"{latest.get('n_tuples')} tuples ({latest.get('scale')}): "
        f"{latest.get('marginal_bytes_per_tuple')} B/tuple marginal RSS, "
        f"task max {shipping.get('task_bytes_max')} B vs "
        f"{shipping.get('row_major_task_bytes')} B row-major, "
        f"{len(latest.get('output_hashes', {}))} hash(es) checked"
    )
    if failures:
        verdict_summary(
            "substrate gate", "FAIL", detail + "\n\n- " + "\n- ".join(failures)
        )
        for failure in failures:
            print(f"substrate gate: {failure}", file=sys.stderr)
        return EXIT_REGRESSION
    verdict_summary("substrate gate", "PASS", detail)
    print(f"substrate gate: pass — {detail}")
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
