"""Fig. 11: quality vs NADEEF/URM/Llunatic, varying #tuples.

Paper shape: our algorithms above every baseline on both precision and
recall at every size.
"""

import pytest

from _harness import (
    BASELINE_SYSTEMS,
    OUR_SYSTEMS,
    TUPLE_SIZES,
    run_benchmark_trial,
)
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n", TUPLE_SIZES)
@pytest.mark.parametrize("system", OUR_SYSTEMS + BASELINE_SYSTEMS)
def test_fig11(benchmark, dataset, n, system):
    trial = Trial(dataset=dataset, n=n, error_rate=0.04, seed=111)
    result = run_benchmark_trial(benchmark, f"fig11_{dataset}", system, trial)
    assert 0.0 <= result.precision <= 1.0
