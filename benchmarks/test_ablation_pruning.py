"""Ablation: LB/UB pruning in the Exact-S expansion (Eqs. 5-6).

Pruning never changes the optimum (Theorem 4); it cuts the number of
expansion-tree nodes. Measured on the measure-code FDs of a small HOSP
instance, where exact enumeration is feasible.
"""

import time

import pytest

from _harness import cached_workload, record_custom
from repro.core.distances import DistanceModel
from repro.core.single.exact import repair_single_fd_exact
from repro.eval.metrics import evaluate_repair
from repro.eval.runner import Trial

TRIAL = Trial(dataset="hosp", n=240, error_rate=0.04, seed=403)


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "unpruned"])
def test_ablation_pruning(benchmark, prune):
    _, dirty, truth, fds, thresholds = cached_workload(TRIAL)
    model = DistanceModel(dirty)
    fd = fds[6]  # MeasureCode -> MeasureName

    def run():
        return repair_single_fd_exact(
            dirty, fd, model, thresholds[fd], prune=prune, max_nodes=500_000
        )

    start = time.perf_counter()
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    quality = evaluate_repair(result.edits, truth)
    label = "pruned" if prune else "unpruned"
    record_custom(
        "ablation_pruning", label, TRIAL, quality, seconds, len(result.edits),
        {"nodes": result.stats["nodes_generated"],
         "pruned": result.stats["nodes_pruned"]},
    )


def test_pruning_preserves_cost(benchmark):
    _, dirty, _, fds, thresholds = cached_workload(TRIAL)
    model = DistanceModel(dirty)
    fd = fds[6]

    def both():
        pruned = repair_single_fd_exact(
            dirty, fd, model, thresholds[fd], prune=True, max_nodes=500_000
        )
        full = repair_single_fd_exact(
            dirty, fd, model, thresholds[fd], prune=False, max_nodes=500_000
        )
        return pruned, full

    pruned, full = benchmark.pedantic(both, rounds=1, iterations=1)
    assert pruned.cost == pytest.approx(full.cost)
    assert pruned.stats["nodes_generated"] <= full.stats["nodes_generated"]
