"""Shared infrastructure for the per-figure benchmark harness.

Every file in this directory regenerates one table or figure of the
paper's Section 6 (see DESIGN.md for the index). Conventions:

* each (system, x-value) combination is one pytest-benchmark case, run
  exactly once (``benchmark.pedantic(rounds=1)``) — the timing feeds the
  efficiency figures, the repair quality feeds the effectiveness ones;
* workloads are cached per condition so every system sees the identical
  dirty instance;
* at session end, each figure's series is rendered as a text table and
  written to ``benchmarks/results/<figure>.txt`` (and echoed to stdout),
  giving the same rows/series the paper plots.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``smoke`` (default) — minutes on a laptop; hundreds of tuples;
* ``paper`` — thousands of tuples, closer to the paper's x-axes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.eval.reporting import format_by_system, format_series
from repro.eval.runner import Trial, TrialResult, build_system
from repro.eval.metrics import evaluate_repair

SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")

#: x-axes per scale
if SCALE == "paper":
    TUPLE_SIZES = [2000, 4000, 8000]
    FD_COUNTS = [1, 3, 5, 7, 9]
    ERROR_RATES = [0.02, 0.04, 0.06, 0.08, 0.10]
    BASE_N = 2000
else:
    TUPLE_SIZES = [200, 400, 800]
    FD_COUNTS = [1, 3, 5, 7, 9]
    ERROR_RATES = [0.02, 0.04, 0.06, 0.08, 0.10]
    BASE_N = 400

#: the scalable systems used for the full figure sweeps (the exact
#: algorithms are exercised by dedicated small-instance benches —
#: running them at sweep scale is the NP-hard part the paper also
#: avoids on its larger settings)
OUR_SYSTEMS = ["greedy-s", "appro-m", "greedy-m"]
TREE_SYSTEMS = ["appro-m", "appro-m-notree", "greedy-m", "greedy-m-notree"]
BASELINE_SYSTEMS = ["nadeef", "urm", "llunatic"]

RESULTS_DIR = Path(__file__).parent / "results"

_workloads: Dict[Trial, Tuple] = {}
_figures: Dict[str, List[TrialResult]] = {}


def cached_workload(trial: Trial):
    """The (clean, dirty, truth, fds, thresholds) tuple for a condition."""
    if trial not in _workloads:
        _workloads[trial] = trial.workload()
    return _workloads[trial]


def run_benchmark_trial(benchmark, figure: str, system: str, trial: Trial) -> TrialResult:
    """Run *system* on *trial* once under pytest-benchmark and record it."""
    _, dirty, truth, fds, thresholds = cached_workload(trial)
    runner = build_system(system, fds, thresholds, trial)
    holder = {}

    def target():
        holder["result"] = runner.repair(dirty)

    benchmark.pedantic(target, rounds=1, iterations=1)
    repair = holder["result"]
    quality = evaluate_repair(
        repair.edits, truth, repair.stats.get("variables", set())
    )
    seconds = benchmark.stats.stats.mean if benchmark.stats else 0.0
    result = TrialResult(
        system, trial, quality, seconds, len(repair.edits), dict(repair.stats)
    )
    _figures.setdefault(figure, []).append(result)
    benchmark.extra_info.update(
        {
            "figure": figure,
            "precision": round(quality.precision, 4),
            "recall": round(quality.recall, 4),
            "edits": len(repair.edits),
        }
    )
    return result


#: figure id -> (x-axis label, x extractor, metrics to render)
_FIGURE_SPECS = {
    "fig5_hosp": ("N", lambda r: r.trial.n, ["precision", "recall"]),
    "fig5_tax": ("N", lambda r: r.trial.n, ["precision", "recall"]),
    "fig6_hosp": ("#FDs", lambda r: r.trial.n_fds, ["precision", "recall"]),
    "fig6_tax": ("#FDs", lambda r: r.trial.n_fds, ["precision", "recall"]),
    "fig7_hosp": ("e%", lambda r: r.trial.error_rate, ["precision", "recall"]),
    "fig7_tax": ("e%", lambda r: r.trial.error_rate, ["precision", "recall"]),
    "fig8_hosp": ("N", lambda r: r.trial.n, ["seconds"]),
    "fig8_tax": ("N", lambda r: r.trial.n, ["seconds"]),
    "fig9_hosp": ("#FDs", lambda r: r.trial.n_fds, ["seconds"]),
    "fig9_tax": ("#FDs", lambda r: r.trial.n_fds, ["seconds"]),
    "fig10_hosp": ("e%", lambda r: r.trial.error_rate, ["seconds"]),
    "fig10_tax": ("e%", lambda r: r.trial.error_rate, ["seconds"]),
    "fig11_hosp": ("N", lambda r: r.trial.n, ["precision", "recall"]),
    "fig11_tax": ("N", lambda r: r.trial.n, ["precision", "recall"]),
    "fig12_hosp": ("#FDs", lambda r: r.trial.n_fds, ["precision", "recall"]),
    "fig12_tax": ("#FDs", lambda r: r.trial.n_fds, ["precision", "recall"]),
    "fig13_hosp": ("e%", lambda r: r.trial.error_rate, ["precision", "recall"]),
    "fig13_tax": ("e%", lambda r: r.trial.error_rate, ["precision", "recall"]),
    "fig14_hosp": ("N", lambda r: r.trial.n, ["seconds"]),
    "fig14_tax": ("N", lambda r: r.trial.n, ["seconds"]),
    "fig15_hosp": ("#FDs", lambda r: r.trial.n_fds, ["seconds"]),
    "fig15_tax": ("#FDs", lambda r: r.trial.n_fds, ["seconds"]),
    "fig16_hosp": ("e%", lambda r: r.trial.error_rate, ["seconds"]),
    "fig16_tax": ("e%", lambda r: r.trial.error_rate, ["seconds"]),
    "table3_hosp": ("system", lambda r: r.system, ["precision", "recall", "seconds"]),
    "table3_tax": ("system", lambda r: r.system, ["precision", "recall", "seconds"]),
    "ablation_grouping": ("variant", lambda r: r.system, ["seconds"]),
    "ablation_simjoin": ("strategy", lambda r: r.system, ["seconds"]),
    "ablation_pruning": ("variant", lambda r: r.system, ["seconds"]),
    "ablation_seeding": ("variant", lambda r: r.system, ["precision", "recall"]),
    "ablation_targettree": ("variant", lambda r: r.system, ["seconds"]),
    "complexity_scaling": ("variant", lambda r: r.system, ["seconds"]),
    "ablation_weights": ("w_l", lambda r: r.system, ["precision", "recall"]),
    "exact_optimality": ("N", lambda r: r.trial.n, ["precision", "seconds"]),
    "related_md_hosp": ("system", lambda r: r.system, ["precision", "recall", "seconds"]),
    "related_md_tax": ("system", lambda r: r.system, ["precision", "recall", "seconds"]),
}


def write_reports() -> None:
    """Render every collected figure to benchmarks/results/ and stdout."""
    if not _figures:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    print("\n\n" + "=" * 72)
    print(f"Reproduced figures ({SCALE} scale) — also in {RESULTS_DIR}/")
    print("=" * 72)
    for figure, results in sorted(_figures.items()):
        label, x_of, metrics = _FIGURE_SPECS.get(
            figure, ("x", lambda r: r.trial.n, ["precision"])
        )
        if label in ("system", "variant", "strategy", "w_l"):
            body = (
                f"# {figure} (scale={SCALE})\n\n"
                + format_by_system(results, metrics)
                + "\n"
            )
        else:
            blocks = []
            for metric in metrics:
                table = format_series(results, label, x_of, metric)
                blocks.append(f"[{metric}]\n{table}")
            body = (
                f"# {figure} (scale={SCALE})\n\n" + "\n\n".join(blocks) + "\n"
            )
        (RESULTS_DIR / f"{figure}.txt").write_text(body)
        print(f"\n--- {figure} ---")
        print(body)

def record_custom(figure, label, trial, quality, seconds, edits=0, stats=None):
    """Record a hand-built measurement under a custom series label."""
    result = TrialResult(label, trial, quality, seconds, edits, stats or {})
    _figures.setdefault(figure, []).append(result)
    return result
