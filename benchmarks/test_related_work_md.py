"""Related work (Section 2.3): FT-repair vs metric-dependency repair.

The paper's closest relatives relax only one side of a constraint with a
similarity predicate. This bench measures the consequence: an MD-style
repairer tolerates near-miss RHS corruptions (they *satisfy* the metric
dependency) and cannot see LHS typos, capping recall well below the
holistic FT-violation algorithms.
"""

import pytest

from _harness import BASE_N, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("system", ["greedy-m", "metricfd"])
def test_related_work_md(benchmark, dataset, system):
    trial = Trial(dataset=dataset, n=BASE_N, error_rate=0.04, seed=601)
    result = run_benchmark_trial(
        benchmark, f"related_md_{dataset}", system, trial
    )
    assert result.quality is not None
