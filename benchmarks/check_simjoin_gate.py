"""CI gate over the BENCH_simjoin.json trajectory.

Reads the latest entry of the trajectory file the simjoin ablation
benchmark appends (``benchmarks/test_ablation_simjoin.py``) and fails
when the ``indexed`` strategy examined more candidate pairs than the
``filtered`` scan — the regression the candidate-generation layer
exists to prevent. Exit status follows the shared gate conventions
(``benchmarks/_gate.py``): 0 on pass, 1 on regression, 2 when the
trajectory is missing or malformed. A verdict block is appended to
``$GITHUB_STEP_SUMMARY`` when set.

Usage::

    python benchmarks/check_simjoin_gate.py [path/to/BENCH_simjoin.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_simjoin.json"


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(f"gate: {path} not found; run the simjoin ablation first",
              file=sys.stderr)
        verdict_summary("simjoin gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        entry = trajectory[-1]
        strategies = entry["strategies"]
        indexed = strategies["indexed"]["pairs_examined"]
        filtered = strategies["filtered"]["pairs_examined"]
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        print(f"gate: cannot read latest trajectory entry: {exc}",
              file=sys.stderr)
        verdict_summary(
            "simjoin gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    possible = entry.get("possible_pairs", 0)
    print(
        f"gate: scale={entry.get('scale')} n={entry.get('n_tuples')} "
        f"possible={possible} indexed_examined={indexed} "
        f"filtered_examined={filtered}"
    )
    detail = (
        f"scale `{entry.get('scale')}`, n `{entry.get('n_tuples')}` — "
        f"possible `{possible}`, indexed examined `{indexed}`, "
        f"filtered examined `{filtered}`"
    )
    if indexed > filtered:
        print(
            "gate: FAIL — indexed examined more candidate pairs than the "
            "filtered scan",
            file=sys.stderr,
        )
        verdict_summary("simjoin gate", "FAIL", detail)
        return EXIT_REGRESSION
    reduction = 1.0 - indexed / possible if possible else 0.0
    print(f"gate: PASS — indexed pair reduction {reduction:.1%}")
    verdict_summary(
        "simjoin gate",
        "PASS",
        detail + f"; indexed pair reduction `{reduction:.1%}`",
    )
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
