"""CI gate over the BENCH_simjoin.json trajectory.

Two checks, each against the latest entry of its kind in the
trajectory file:

* **ablation** — the latest strategy-ablation entry
  (``benchmarks/test_ablation_simjoin.py``, recognized by its
  ``strategies`` mapping) must show the ``indexed`` strategy examining
  no more candidate pairs than the ``filtered`` scan — the regression
  the candidate-generation layer exists to prevent.
* **vectorized floor** — the latest ``vectorized_simjoin`` sweep entry
  (``benchmarks/_trajectory.py --simjoin``) must show (a) one repair
  hash per algorithm across indexed-serial, vectorized-serial and
  vectorized ``n_jobs=2`` — byte-identity is the contract; (b) the
  vectorized detect wall at least ``2x`` faster than indexed on the
  HOSP slice at paper scale (``1.3x`` at smoke, where fixed numpy
  overheads weigh against an ~0.07s baseline); and (c) distinct-id
  pairs examined no greater than the tuple fan-out they stand in for.

Either entry kind may be missing (older trajectories); a check without
an entry is skipped rather than failed, but both missing is MISSING.
Exit status follows the shared gate conventions (``benchmarks/_gate.py``):
0 on pass, 1 on regression, 2 when the trajectory is missing or
malformed. A verdict block is appended to ``$GITHUB_STEP_SUMMARY`` when
set.

Usage::

    python benchmarks/check_simjoin_gate.py [path/to/BENCH_simjoin.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_simjoin.json"

#: minimum indexed/vectorized detect-wall ratio on the HOSP sweep
VECTOR_SPEEDUP_FLOOR = {"paper": 2.0, "smoke": 1.3}


def _last(trajectory: list, predicate) -> dict:
    for entry in reversed(trajectory):
        if isinstance(entry, dict) and predicate(entry):
            return entry
    return {}


def _check_ablation(entry: dict) -> tuple:
    """(ok, detail) for the strategy-ablation entry."""
    strategies = entry["strategies"]
    indexed = strategies["indexed"]["pairs_examined"]
    filtered = strategies["filtered"]["pairs_examined"]
    possible = entry.get("possible_pairs", 0)
    reduction = 1.0 - indexed / possible if possible else 0.0
    detail = (
        f"scale `{entry.get('scale')}`, n `{entry.get('n_tuples')}` — "
        f"possible `{possible}`, indexed examined `{indexed}`, "
        f"filtered examined `{filtered}`, reduction `{reduction:.1%}`"
    )
    print(
        f"gate: ablation scale={entry.get('scale')} "
        f"n={entry.get('n_tuples')} possible={possible} "
        f"indexed_examined={indexed} filtered_examined={filtered}"
    )
    if indexed > filtered:
        return False, detail + " — indexed examined MORE than filtered"
    return True, detail


def _check_vectorized(entry: dict) -> tuple:
    """(ok, detail) for the vectorized_simjoin sweep entry."""
    problems = []
    hosp = entry.get("hosp", {})
    speedup = float(hosp.get("speedup", 0.0))
    floor = VECTOR_SPEEDUP_FLOOR.get(str(entry.get("scale")), 1.3)
    if speedup < floor:
        problems.append(
            f"HOSP speedup `{speedup}x` under the `{floor}x` floor"
        )
    if not entry.get("hashes_match", False):
        problems.append("repair hashes differ across strategies/n_jobs")
    vectorized = hosp.get("vectorized", {})
    distinct = int(vectorized.get("distinct_pairs_examined", 0))
    fanout = int(vectorized.get("tuple_fanout", 0))
    if distinct > fanout:
        problems.append(
            f"distinct pairs `{distinct}` exceed tuple fan-out `{fanout}`"
        )
    tax = entry.get("tax", {})
    detail = (
        f"scale `{entry.get('scale')}` — HOSP speedup `{speedup}x` "
        f"(floor `{floor}x`), Tax speedup `{tax.get('speedup')}x`, "
        f"distinct `{distinct}` vs fan-out `{fanout}`, hashes "
        f"{'one value per algorithm' if entry.get('hashes_match') else 'MISMATCHED'}"
    )
    print(
        f"gate: vectorized scale={entry.get('scale')} "
        f"hosp_speedup={speedup} floor={floor} distinct={distinct} "
        f"fanout={fanout} hashes_match={entry.get('hashes_match')}"
    )
    if problems:
        return False, detail + " — " + "; ".join(problems)
    return True, detail


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(f"gate: {path} not found; run the simjoin ablation first",
              file=sys.stderr)
        verdict_summary("simjoin gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        ablation = _last(trajectory, lambda e: "strategies" in e)
        vectorized = _last(
            trajectory, lambda e: e.get("workload") == "vectorized_simjoin"
        )
        if not ablation and not vectorized:
            raise ValueError("no ablation or vectorized_simjoin entries")
        checks = []
        if ablation:
            checks.append(("ablation", _check_ablation(ablation)))
        if vectorized:
            checks.append(("vectorized", _check_vectorized(vectorized)))
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        print(f"gate: cannot read latest trajectory entries: {exc}",
              file=sys.stderr)
        verdict_summary(
            "simjoin gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    detail = "; ".join(f"{name}: {result[1]}" for name, result in checks)
    if not all(result[0] for _, result in checks):
        failing = [name for name, result in checks if not result[0]]
        print(f"gate: FAIL — {', '.join(failing)} check(s) regressed",
              file=sys.stderr)
        verdict_summary("simjoin gate", "FAIL", detail)
        return EXIT_REGRESSION
    print(f"gate: PASS — {len(checks)} check(s)")
    verdict_summary("simjoin gate", "PASS", detail)
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
