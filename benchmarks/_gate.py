"""Shared conventions for the CI gate scripts in this directory.

Every ``check_*_gate.py`` follows the same contract:

* exit ``EXIT_PASS`` (0) — the gated property holds;
* exit ``EXIT_REGRESSION`` (1) — the bench ran but the property failed
  (a real regression, fail the job loudly);
* exit ``EXIT_MISSING`` (2) — the gate could not run at all (missing or
  malformed bench file, missing tooling). CI treats this differently
  from a regression: the *pipeline* is broken, not the code under test.

Each gate also appends a small markdown block to
``$GITHUB_STEP_SUMMARY`` when that variable is set (it is, inside a
GitHub Actions step), so the verdict is readable from the run's summary
page without digging through logs. Outside CI the summary is skipped.

``calibration_seconds()`` times a fixed pure-Python workload so
wall-clock measurements can be compared across machines of different
speeds: the perf gate diffs *calibrated* ratios (wall / calibration),
which cancels the machine's scalar speed out of the comparison.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional

EXIT_PASS = 0
EXIT_REGRESSION = 1
EXIT_MISSING = 2

#: repository root (gates live in benchmarks/)
ROOT = Path(__file__).resolve().parent.parent


def step_summary(markdown: str) -> None:
    """Append *markdown* to the GitHub Actions step summary, if any.

    A no-op outside CI (``GITHUB_STEP_SUMMARY`` unset) and on any I/O
    error — the gate's exit code is the contract, the summary is
    best-effort decoration.
    """
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(markdown.rstrip() + "\n\n")
    except OSError:
        pass


def verdict_summary(gate: str, verdict: str, detail: str = "") -> None:
    """The one-line verdict block every gate emits."""
    icon = {"PASS": "✅", "FAIL": "❌", "MISSING": "⚠️"}.get(verdict, "")
    lines = [f"### {gate}: {icon} {verdict}"]
    if detail:
        lines.append("")
        lines.append(detail)
    step_summary("\n".join(lines))


_CALIBRATION_CACHE: Optional[float] = None


def calibration_seconds(rounds: int = 3) -> float:
    """Wall seconds of a fixed pure-Python workload (best of *rounds*).

    The workload mixes integer arithmetic, string slicing, and dict
    churn — the same instruction mix the repair hot paths exercise — so
    the ratio ``bench_wall / calibration_seconds`` is roughly
    machine-independent. Cached per process.
    """
    global _CALIBRATION_CACHE
    if _CALIBRATION_CACHE is not None:
        return _CALIBRATION_CACHE
    text = "abcdefghijklmnopqrstuvwxyz" * 8
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        total = 0
        table = {}
        for i in range(40_000):
            total += i * 31 % 997
            chunk = text[i % 26 : i % 26 + 13]
            table[chunk] = table.get(chunk, 0) + 1
        best = min(best, time.perf_counter() - start)
        assert total and table  # keep the loop un-eliminable
    _CALIBRATION_CACHE = best
    return best
