"""Run every CI gate in this directory and emit one consolidated verdict.

CI used to call the seven ``check_*_gate.py`` scripts as seven workflow
steps, each appending its own ``$GITHUB_STEP_SUMMARY`` block; reading a
red run meant scrolling eight sections. This runner imports each gate
module, calls its ``main()`` in-process with the step summary
suppressed, and appends a **single** verdict table:

| gate | verdict | detail |
|---|---|---|
| kernel | ✅ PASS | ... |

Per-gate console output is passed through unchanged, so logs keep the
full detail each gate prints. The exit code aggregates the shared
conventions (``benchmarks/_gate.py``): ``EXIT_REGRESSION`` (1) when any
gate regressed, else ``EXIT_MISSING`` (2) when any gate could not run,
else ``EXIT_PASS`` (0). A gate that raises is reported as MISSING (the
pipeline is broken, not the code under test).

Usage::

    python benchmarks/check_all_gates.py [--gates kernel,perf,...]

``--gates`` selects a comma-separated subset (default: all, in
dependency-light-to-heavy order). Unknown names fail fast with the
known list.
"""

from __future__ import annotations

import contextlib
import importlib.util
import io
import os
import sys
import traceback
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    step_summary,
)

HERE = Path(__file__).resolve().parent

#: gate name -> module file. Order is the run (and table) order.
GATES: Dict[str, str] = {
    "kernel": "check_kernel_gate.py",
    "simjoin": "check_simjoin_gate.py",
    "search": "check_search_gate.py",
    "perf": "check_perf_gate.py",
    "substrate": "check_substrate_gate.py",
    "sched": "check_sched_gate.py",
    "serve": "check_serve_gate.py",
    "scenario": "check_scenario_gate.py",
}

_ICONS = {
    EXIT_PASS: "✅ PASS",
    EXIT_REGRESSION: "❌ FAIL",
    EXIT_MISSING: "⚠️ MISSING",
}


def run_gate(name: str) -> Tuple[int, str]:
    """(exit code, captured output) of one gate, summary suppressed.

    The gate module is imported fresh from its file and its ``main()``
    called in-process; ``GITHUB_STEP_SUMMARY`` is unset for the
    duration so the per-gate block does not compete with the
    consolidated table this runner writes.
    """
    module_file = HERE / GATES[name]
    buffer = io.StringIO()
    saved = os.environ.pop("GITHUB_STEP_SUMMARY", None)
    try:
        with contextlib.redirect_stdout(buffer), \
                contextlib.redirect_stderr(buffer):
            try:
                spec = importlib.util.spec_from_file_location(
                    f"_gate_run_{name}", module_file
                )
                module = importlib.util.module_from_spec(spec)
                spec.loader.exec_module(module)
                if name == "kernel":  # its main() takes no argv
                    code = int(module.main())
                else:
                    code = int(module.main([str(module_file)]))
            except SystemExit as exc:  # a gate that sys.exit()s early
                code = int(exc.code or 0)
            except Exception:
                traceback.print_exc(file=buffer)
                code = EXIT_MISSING
    finally:
        if saved is not None:
            os.environ["GITHUB_STEP_SUMMARY"] = saved
    return code, buffer.getvalue()


def detail_line(output: str) -> str:
    """The most informative single line of a gate's console output.

    Prefers the last ``gate: ...`` line that is not the bare verdict —
    every gate prints its measurements in that shape before deciding.
    """
    informative = [
        line[len("gate: "):].strip()
        for line in output.splitlines()
        if line.startswith("gate: ")
        and line.strip() not in ("gate: PASS", "gate: FAIL")
    ]
    return informative[-1].replace("|", "\\|") if informative else ""


def consolidated_table(results: Dict[str, Tuple[int, str]]) -> str:
    lines = [
        "### gate suite",
        "",
        "| gate | verdict | detail |",
        "|---|---|---|",
    ]
    for name, (code, output) in results.items():
        verdict = _ICONS.get(code, f"exit {code}")
        lines.append(f"| {name} | {verdict} | {detail_line(output)} |")
    return "\n".join(lines)


def main(argv: Sequence[str]) -> int:
    selected: List[str] = list(GATES)
    rest = list(argv[1:])
    while rest:
        arg = rest.pop(0)
        if arg == "--gates":
            if not rest:
                print("--gates requires a value", file=sys.stderr)
                return EXIT_MISSING
            selected = [n.strip() for n in rest.pop(0).split(",") if n.strip()]
        else:
            print(f"unknown argument {arg!r}", file=sys.stderr)
            return EXIT_MISSING
    unknown = [n for n in selected if n not in GATES]
    if unknown:
        print(
            f"unknown gate(s) {unknown}; known: {', '.join(GATES)}",
            file=sys.stderr,
        )
        return EXIT_MISSING

    results: Dict[str, Tuple[int, str]] = {}
    for name in selected:
        code, output = run_gate(name)
        results[name] = (code, output)
        banner = _ICONS.get(code, f"exit {code}")
        print(f"=== {name} gate: {banner} " + "=" * max(1, 50 - len(name)))
        sys.stdout.write(output if output.endswith("\n") else output + "\n")

    step_summary(consolidated_table(results))
    codes = [code for code, _ in results.values()]
    failed = [n for n, (c, _) in results.items() if c == EXIT_REGRESSION]
    missing = [n for n, (c, _) in results.items() if c == EXIT_MISSING]
    print(
        f"gate suite: {len(codes) - len(failed) - len(missing)} pass, "
        f"{len(failed)} fail ({', '.join(failed) or '-'}), "
        f"{len(missing)} missing ({', '.join(missing) or '-'})"
    )
    if failed:
        return EXIT_REGRESSION
    if missing:
        return EXIT_MISSING
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
