"""CI gate over the adaptive skew scheduler in ``BENCH_repair.json``.

Reads the latest ``skew_sched`` entry appended by
``benchmarks/_trajectory.py --sched`` and enforces three properties of
the subtree-splitting scheduler (``docs/parallelism.md``):

1. **Adaptive speedup** — the modeled ``n_jobs=4`` makespan speedup of
   the adaptive schedule (dominant component split into subtree tasks,
   shared incumbent bounds) must reach at least 3x over serial.
2. **Static baseline** — the same workload under static component-level
   scheduling must model *below* 1.5x. This is not a typo: the entry
   has to prove the giant component really dominates, so the adaptive
   win is attributable to splitting rather than to the workload being
   embarrassingly parallel to begin with.
3. **Determinism** — the serial, static, and adaptive repairs of the
   main workload must share one output hash, and every algorithm of the
   entry's hash-slice sweep must hash identically across its serial and
   split settings. A scheduling win that changes any repair is a
   correctness regression and fails regardless of the speedups.

Speedups are recomputed here from the entry's measured per-unit CPU
seconds (never trusted from the stored fields): the units are
list-scheduled longest-first onto the entry's worker count, mirroring
an idle pool worker grabbing the largest pending task. CPU-time replay
is machine-load-independent, so the gate is meaningful on single-core
containers and noisy shared runners where wall clocks are not. The
adaptive speedup may legitimately exceed the worker count — the bound
exchange lets concurrent subtrees prune with incumbents a serial search
would only discover later, shrinking total work below serial.

Exit status follows the shared gate conventions (``benchmarks/_gate.py``):
0 pass, 1 regression, 2 missing/malformed (run ``benchmarks/_trajectory.py
--sched`` first).

Usage::

    python benchmarks/check_sched_gate.py [path/to/BENCH_repair.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_repair.json"

#: minimum modeled adaptive speedup over serial at the entry's n_jobs
ADAPTIVE_REQUIRED = 3.0
#: the static schedule must stay *below* this (the skew must be real)
STATIC_CEILING = 1.5


def lpt_makespan(durations: List[float], workers: int) -> float:
    """Longest-processing-time list-schedule makespan of *durations*."""
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def modeled_speedup(entry: dict, mode: str) -> float:
    """Serial CPU total over the modeled makespan of *mode*'s units."""
    serial_total = sum(
        float(u) for u in entry["serial"]["unit_cpu_seconds"]
    )
    units = [float(u) for u in entry[mode]["unit_cpu_seconds"]]
    makespan = lpt_makespan(units, int(entry["config"]["n_jobs"]))
    if makespan <= 0:
        raise ValueError(f"{mode} entry has no measured CPU units")
    return serial_total / makespan


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(
            f"gate: {path} not found; run benchmarks/_trajectory.py "
            f"--sched first",
            file=sys.stderr,
        )
        verdict_summary("sched gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        entries = [
            e for e in trajectory if e.get("workload") == "skew_sched"
        ]
        if not entries:
            raise ValueError(
                "no skew_sched entry; run benchmarks/_trajectory.py --sched"
            )
        entry = entries[-1]
        static = modeled_speedup(entry, "static")
        adaptive = modeled_speedup(entry, "adaptive")
        main_hashes = {
            mode: entry[mode]["output_hash"]
            for mode in ("serial", "static", "adaptive")
        }
        sweep = entry["hash_slice"]["output_hashes"]
    except (ValueError, KeyError, TypeError) as exc:
        print(f"gate: cannot read skew_sched entry: {exc}", file=sys.stderr)
        verdict_summary(
            "sched gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    failures: List[str] = []
    if adaptive < ADAPTIVE_REQUIRED:
        failures.append(
            f"adaptive schedule models only {adaptive:.2f}x "
            f"(required >= {ADAPTIVE_REQUIRED:.1f}x)"
        )
    if static >= STATIC_CEILING:
        failures.append(
            f"static schedule models {static:.2f}x "
            f"(must stay < {STATIC_CEILING:.1f}x — the workload no longer "
            f"isolates the giant-component skew)"
        )
    if len(set(main_hashes.values())) != 1:
        failures.append(
            f"main-workload repairs diverged across schedules: {main_hashes}"
        )
    for algorithm in sorted(sweep):
        if len(set(sweep[algorithm])) != 1:
            failures.append(
                f"{algorithm}: output hash differs across split settings "
                f"{sweep[algorithm]} (splitting changed the repair)"
            )

    config = entry.get("config", {})
    stats = entry.get("adaptive", {})
    detail = "\n".join(
        [
            "| check | value | required |",
            "|---|---:|---|",
            f"| adaptive modeled speedup | {adaptive:.2f}x | "
            f">= {ADAPTIVE_REQUIRED:.1f}x |",
            f"| static modeled speedup | {static:.2f}x | "
            f"< {STATIC_CEILING:.1f}x |",
            f"| schedule hash agreement | "
            f"{'ok' if len(set(main_hashes.values())) == 1 else 'DRIFT'} "
            f"| equal |",
            f"| hash sweep ({len(sweep)} algorithms) | "
            f"{'ok' if all(len(set(v)) == 1 for v in sweep.values()) else 'DRIFT'}"
            f" | equal |",
        ]
    )
    print(
        f"gate: {config.get('algorithm')} giant chain "
        f"{config.get('chain')} at n_jobs={config.get('n_jobs')} — "
        f"adaptive {adaptive:.2f}x vs static {static:.2f}x modeled "
        f"({stats.get('subtree_tasks', 0)} subtree task(s), "
        f"{stats.get('steals', 0)} steal(s), "
        f"{stats.get('bound_exchange_hits', 0)} bound hit(s))"
    )

    if failures:
        for failure in failures:
            print(f"gate: FAIL — {failure}", file=sys.stderr)
        verdict_summary(
            "sched gate", "FAIL", "\n".join(failures) + "\n\n" + detail
        )
        return EXIT_REGRESSION
    print("gate: PASS")
    verdict_summary("sched gate", "PASS", detail)
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
