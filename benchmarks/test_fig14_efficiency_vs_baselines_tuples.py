"""Fig. 14: runtime vs baselines, varying #tuples.

Paper shape: URM is the fastest (frequency counting only); our greedy
algorithms beat the chase-based NADEEF/Llunatic.
"""

import pytest

from _harness import (
    BASELINE_SYSTEMS,
    TUPLE_SIZES,
    run_benchmark_trial,
)
from repro.eval.runner import Trial

SYSTEMS = ["greedy-s", "appro-m", "greedy-m"] + BASELINE_SYSTEMS


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n", TUPLE_SIZES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_fig14(benchmark, dataset, n, system):
    trial = Trial(dataset=dataset, n=n, error_rate=0.04, seed=141)
    result = run_benchmark_trial(benchmark, f"fig14_{dataset}", system, trial)
    assert result.seconds >= 0.0
