"""CI gate over the ``BENCH_serve.json`` serving-layer trajectory.

Checks the **latest** entry ``benchmarks/_serve_bench.py`` appended
against the serving acceptance floors — absolute numbers, not baselines,
because the serving contract is stated in service-level terms:

1. **throughput** — sustained ``requests_per_second`` ≥ ``MIN_RPS``
   (1,000 req/s single-process at smoke scale);
2. **tail latency** — ``latency_p99_ms`` ≤ ``MAX_P99_MS`` (25 ms);
3. **cache economics** — ``cache_speedup`` (cold fit over cache hit)
   ≥ ``MIN_CACHE_SPEEDUP`` (50×);
4. **index efficiency** — ``examined_fraction`` (elements the indexed
   hot path verified over what the linear scan would touch)
   ≤ ``MAX_EXAMINED_FRACTION`` (0.20);
5. **equivalence** — ``equivalence_mismatches`` must be 0: every served
   response replayed byte-identical through the batch
   ``IncrementalRepairer.repair_record``.

Exit status follows the shared gate conventions (``benchmarks/_gate.py``):
0 pass, 1 regression, 2 missing/malformed trajectory. A latency /
throughput table is appended to ``$GITHUB_STEP_SUMMARY`` when set.

Usage::

    python benchmarks/check_serve_gate.py [path/to/BENCH_serve.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_serve.json"

MIN_RPS = 1000.0
MAX_P99_MS = 25.0
MIN_CACHE_SPEEDUP = 50.0
MAX_EXAMINED_FRACTION = 0.20


def check(entry: dict) -> list:
    """The failed-check descriptions for *entry* (empty = pass)."""
    failures = []
    rps = float(entry["requests_per_second"])
    if rps < MIN_RPS:
        failures.append(
            f"throughput {rps:.0f} req/s below floor {MIN_RPS:.0f}"
        )
    p99 = float(entry["latency_p99_ms"])
    if p99 > MAX_P99_MS:
        failures.append(
            f"p99 latency {p99:.2f}ms above ceiling {MAX_P99_MS:.0f}ms"
        )
    speedup = float(entry["cache_speedup"])
    if speedup < MIN_CACHE_SPEEDUP:
        failures.append(
            f"cache speedup {speedup:.1f}x below floor "
            f"{MIN_CACHE_SPEEDUP:.0f}x"
        )
    fraction = float(entry["examined_fraction"])
    if fraction > MAX_EXAMINED_FRACTION:
        failures.append(
            f"examined fraction {fraction:.3f} above ceiling "
            f"{MAX_EXAMINED_FRACTION:.2f}"
        )
    mismatches = int(entry["equivalence_mismatches"])
    if mismatches:
        failures.append(
            f"{mismatches} served response(s) differ from the batch "
            f"repair path"
        )
    return failures


def latency_table(entry: dict) -> str:
    """Markdown service-level table for the step summary."""
    rows = [
        ("requests/s", f"{entry['requests_per_second']:.0f}",
         f"≥ {MIN_RPS:.0f}"),
        ("p50 ms", f"{entry['latency_p50_ms']:.2f}", "—"),
        ("p95 ms", f"{entry['latency_p95_ms']:.2f}", "—"),
        ("p99 ms", f"{entry['latency_p99_ms']:.2f}",
         f"≤ {MAX_P99_MS:.0f}"),
        ("cache speedup", f"{entry['cache_speedup']:.0f}x",
         f"≥ {MIN_CACHE_SPEEDUP:.0f}x"),
        ("examined fraction", f"{entry['examined_fraction']:.3f}",
         f"≤ {MAX_EXAMINED_FRACTION:.2f}"),
        ("mean batch size", f"{entry['serve_batch_mean_size']:.1f}", "—"),
        ("queue depth peak", f"{entry['queue_depth_peak']}", "—"),
        ("equivalence mismatches",
         f"{entry['equivalence_mismatches']}", "= 0"),
    ]
    lines = ["| metric | value | floor/ceiling |", "|---|---:|---:|"]
    lines.extend(f"| {n} | {v} | {b} |" for n, v, b in rows)
    return "\n".join(lines)


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(
            f"gate: {path} not found; run benchmarks/_serve_bench.py first",
            file=sys.stderr,
        )
        verdict_summary("serve gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        entries = [e for e in trajectory if e.get("kind") == "serve"]
        latest = entries[-1]
        failures = check(latest)
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        print(
            f"gate: cannot read trajectory entries: {exc}", file=sys.stderr
        )
        verdict_summary(
            "serve gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    print(
        f"gate: serve ({latest.get('scale')}) — "
        f"{latest['requests_per_second']:.0f} req/s, "
        f"p99 {latest['latency_p99_ms']:.2f}ms, "
        f"cache {latest['cache_speedup']:.0f}x, "
        f"examined {latest['examined_fraction']:.3f}, "
        f"mismatches {latest['equivalence_mismatches']}"
    )
    detail = latency_table(latest)
    if failures:
        for failure in failures:
            print(f"gate: FAIL — {failure}", file=sys.stderr)
        verdict_summary(
            "serve gate",
            "FAIL",
            "\n".join(f"- {f}" for f in failures) + "\n\n" + detail,
        )
        return EXIT_REGRESSION
    print("gate: PASS")
    verdict_summary("serve gate", "PASS", detail)
    return EXIT_PASS


if __name__ == "__main__":
    sys.exit(main(sys.argv))
