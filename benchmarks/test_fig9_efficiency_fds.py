"""Fig. 9: runtime vs #FDs, with and without the target tree.

Paper shape: with a single FD the tree brings nothing; as #FDs grows the
tree's pruning pays off and the gap to the no-tree variants widens.

Caveat (see EXPERIMENTS.md): on entity-aligned workloads the joined
target space is near-linear, so tree and naive join run within ~20%
of each other; the paper's large tree gains need a combinatorial
target space, reproduced by benchmarks/test_ablation_targettree.py.
"""

import pytest

from _harness import BASE_N, FD_COUNTS, TREE_SYSTEMS, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n_fds", FD_COUNTS)
@pytest.mark.parametrize("system", TREE_SYSTEMS)
def test_fig9(benchmark, dataset, n_fds, system):
    trial = Trial(
        dataset=dataset, n=BASE_N, n_fds=n_fds, error_rate=0.04, seed=91
    )
    result = run_benchmark_trial(benchmark, f"fig9_{dataset}", system, trial)
    assert result.seconds >= 0.0
