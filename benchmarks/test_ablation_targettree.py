"""Ablation: target tree vs naive join in a combinatorial target space.

Section 5's motivation is that materializing the join of per-FD
independent sets "may be exponential to the number of tuples". On
entity-aligned workloads (HOSP/Tax) the join is nearly bijective and the
tree only ties the naive scan (see figs 8-10); this bench constructs the
regime the index was built for — several FDs sharing only their RHS
attribute, so the target space is a product of the per-FD sets — and
measures construction plus nearest-target search both ways.

Expected shape: the best-first search visits a small, pruned fraction of
the tree while the naive scan pays the full product for every query.
"""

import time

import pytest

from _harness import record_custom
from repro.core.constraints import parse_fds
from repro.core.distances import DistanceModel
from repro.core.multi.target_tree import TargetTree
from repro.core.multi.targets import join_targets, nearest_target_naive
from repro.dataset.relation import Relation, Schema
from repro.eval.metrics import RepairQuality
from repro.eval.runner import Trial
from repro.generator.vocab import build_vocabulary

#: three FDs sharing only the hub attribute B: the target space is the
#: per-hub product of the A/C/D fibres.
FDS = parse_fds(["A -> B", "C -> B", "D -> B"])
HUBS = 4
FIBRE = 7  # values of A (resp. C, D) per hub value


def _component():
    a_vocab = build_vocabulary("aa", HUBS * FIBRE, rng=1)
    c_vocab = build_vocabulary("cc", HUBS * FIBRE, rng=2)
    d_vocab = build_vocabulary("dd", HUBS * FIBRE, rng=3)
    b_vocab = build_vocabulary("bb", HUBS, rng=4)
    rows = []
    for i in range(HUBS * FIBRE):
        hub = b_vocab[i % HUBS]
        rows.append((a_vocab[i], hub, c_vocab[i], d_vocab[i]))
    relation = Relation(Schema.of("A", "B", "C", "D"), rows)
    sets = [
        [(a_vocab[i], b_vocab[i % HUBS]) for i in range(HUBS * FIBRE)],
        [(c_vocab[i], b_vocab[i % HUBS]) for i in range(HUBS * FIBRE)],
        [(d_vocab[i], b_vocab[i % HUBS]) for i in range(HUBS * FIBRE)],
    ]
    return relation, sets


TRIAL = Trial(dataset="hosp", n=HUBS * FIBRE, seed=406)


@pytest.mark.parametrize("variant", ["tree", "naive"])
def test_ablation_targettree(benchmark, variant):
    relation, sets = _component()
    model = DistanceModel(relation)
    attrs = ("A", "B", "C", "D")
    queries = [relation.project(tid, attrs) for tid in relation.tids()]

    if variant == "tree":

        def run():
            tree = TargetTree(FDS, sets, model)
            return [tree.nearest_target(q)[1] for q in queries], tree

    else:

        def run():
            targets = join_targets(FDS, sets)
            return (
                [nearest_target_naive(model, targets, q)[1] for q in queries],
                targets,
            )

    start = time.perf_counter()
    costs, structure = benchmark.pedantic(run, rounds=1, iterations=1)
    seconds = time.perf_counter() - start
    placeholder = RepairQuality(1.0, 1.0, 1.0, 0, 0.0, 0)
    extra = {}
    if variant == "tree":
        extra = {
            "nodes": structure.node_count,
            "visited": structure.nodes_visited,
            "pruned": structure.nodes_pruned,
        }
    else:
        extra = {"targets_materialized": len(structure)}
    record_custom(
        "ablation_targettree", variant, TRIAL, placeholder, seconds,
        len(costs), extra,
    )
    # every query is itself a target: cost 0 everywhere, both ways
    assert all(c == 0.0 for c in costs)


def test_tree_and_naive_agree_on_offset_queries(benchmark):
    relation, sets = _component()
    model = DistanceModel(relation)
    tree = TargetTree(FDS, sets, model)
    targets = join_targets(FDS, sets)
    attrs = ("A", "B", "C", "D")
    queries = [
        tuple(v + "x" for v in relation.project(tid, attrs))
        for tid in list(relation.tids())[:10]
    ]

    def both():
        return [
            (tree.nearest_target(q)[1], nearest_target_naive(model, targets, q)[1])
            for q in queries
        ]

    pairs = benchmark.pedantic(both, rounds=1, iterations=1)
    for tree_cost, naive_cost in pairs:
        assert abs(tree_cost - naive_cost) < 1e-9
