"""Table 3: the full-system snapshot (P / R / time on both datasets).

Paper setting: HOSP N=8k, Tax N=4k, all 9 FDs, e=4%. The smoke scale
shrinks N (set REPRO_BENCH_SCALE=paper for closer sizes); the *ordering*
of systems is the reproduced result: our joint algorithms lead quality,
URM is fastest but weakest, the chase baselines sit in between.
"""

import pytest

from _harness import BASE_N, BASELINE_SYSTEMS, SCALE, run_benchmark_trial
from repro.eval.runner import Trial

SYSTEMS = ["greedy-s", "appro-m", "greedy-m"] + BASELINE_SYSTEMS
HOSP_N = 8000 if SCALE == "paper" else 2 * BASE_N
TAX_N = 4000 if SCALE == "paper" else BASE_N


@pytest.mark.parametrize("system", SYSTEMS)
def test_table3_hosp(benchmark, system):
    trial = Trial(dataset="hosp", n=HOSP_N, error_rate=0.04, seed=301)
    result = run_benchmark_trial(benchmark, "table3_hosp", system, trial)
    assert result.quality is not None


@pytest.mark.parametrize("system", SYSTEMS)
def test_table3_tax(benchmark, system):
    trial = Trial(dataset="tax", n=TAX_N, error_rate=0.04, seed=302)
    result = run_benchmark_trial(benchmark, "table3_tax", system, trial)
    assert result.quality is not None
