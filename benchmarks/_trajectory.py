"""Append one traced repair run to the ``BENCH_repair.json`` trajectory.

The standard workload is the noisy HOSP slice the simjoin trajectory
also uses (800 tuples at ``REPRO_BENCH_SCALE=smoke``, 5000 at
``paper``), repaired end-to-end with the engine default (greedy-m,
indexed detection) under ``trace=True``. Each run appends one
normalized entry:

* identity — scale, tuple/FD counts, algorithm, dataset fingerprint;
* wall clocks — end-to-end seconds plus the per-phase span totals of
  the run report, and the machine calibration constant
  (:func:`benchmarks._gate.calibration_seconds`) that lets the gate
  compare runs across machines;
* counters — the unified registry snapshot (pair/kernel/cache work);
* correctness — the repair output hash. The perf gate
  (``benchmarks/check_perf_gate.py``) fails on any hash drift: a perf
  win that changes repairs is a correctness regression.

Each entry also breaks the *search phase* out of the span totals
(``search_phase_seconds``: ``mis_enumeration``, ``greedy_growth``,
``combination``, ``tree_search``; ``search_seconds`` is their sum) —
the numbers ``benchmarks/check_search_gate.py`` compares against the
committed pre-bitset baselines.

Usage::

    PYTHONPATH=src python benchmarks/_trajectory.py \
        [--algorithm greedy-m] [path/to/BENCH_repair.json]
"""

from __future__ import annotations

import json
import sys
import time
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _gate import ROOT, calibration_seconds  # noqa: E402
from _harness import SCALE  # noqa: E402

from repro.core.engine import Repairer  # noqa: E402
from repro.core.distances import Weights  # noqa: E402
from repro.generator.hosp import (  # noqa: E402
    HOSP_FDS,
    generate_hosp,
    hosp_thresholds,
)
from repro.generator.noise import NoiseConfig, inject_noise  # noqa: E402

DEFAULT_PATH = ROOT / "BENCH_repair.json"
HOSP_SLICE_N = 5000 if SCALE == "paper" else 800
ALGORITHM = "greedy-m"

#: search-phase entry keys -> the span names whose totals they sum
SEARCH_PHASES = {
    "mis_enumeration": "mis/expand",
    "greedy_growth": "greedy/grow",
    "combination": "combinations",
    "tree_search": "targets/search",
}

#: counters worth trending run over run (subset of the unified registry)
TRENDED_COUNTERS = (
    "possible_pairs",
    "candidates_generated",
    "pairs_examined",
    "pairs_filtered",
    "pairs_verified",
    "kernel_calls",
    "index_builds",
    "index_reuses",
    "cache_hits",
    "cache_misses",
    "fd_components",
)


def workload():
    """The standard noisy HOSP slice (deterministic seeds)."""
    clean = generate_hosp(HOSP_SLICE_N, rng=7)
    relation, _errors = inject_noise(clean, HOSP_FDS, NoiseConfig(), rng=11)
    return relation


def run_entry(algorithm: str = ALGORITHM) -> dict:
    """One traced repair of the standard workload as a trajectory entry."""
    relation = workload()
    weights = Weights(0.5, 0.5)
    thresholds = hosp_thresholds(weights=weights)
    extra = {}
    if algorithm.startswith("exact"):
        # Exact searches legitimately exhaust their budgets on the big
        # components of this slice; degrade like the CLI default does.
        extra["fallback"] = "greedy"
    repairer = Repairer(
        HOSP_FDS,
        algorithm=algorithm,
        weights=weights,
        thresholds=thresholds,
        trace=True,
        **extra,
    )
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # degradations are expected here
        result = repairer.repair(relation)
    wall = time.perf_counter() - start
    report = repairer.report()
    counters = report.counters
    totals = report.phase_totals()
    search_phases = {
        key: round(totals.get(name, 0.0), 4)
        for key, name in sorted(SEARCH_PHASES.items())
    }
    return {
        "scale": SCALE,
        "n_tuples": HOSP_SLICE_N,
        "n_fds": len(HOSP_FDS),
        "algorithm": algorithm,
        "dataset_sha256": report.dataset["sha256"],
        "wall_seconds": round(wall, 4),
        "calibration_seconds": round(calibration_seconds(), 4),
        "phase_seconds": {
            name: round(seconds, 4)
            for name, seconds in sorted(totals.items())
        },
        "search_phase_seconds": search_phases,
        "search_seconds": round(sum(search_phases.values()), 4),
        "counters": {
            key: counters[key] for key in TRENDED_COUNTERS if key in counters
        },
        "edits": len(result.edits),
        "cost": round(result.cost, 9),
        "output_hash": report.result["output_hash"],
        "rss_peak_bytes": report.rss.get("peak_bytes"),
    }


def main(argv: list) -> int:
    algorithm = ALGORITHM
    positional = []
    rest = list(argv[1:])
    while rest:
        arg = rest.pop(0)
        if arg == "--algorithm":
            if not rest:
                print("--algorithm requires a value", file=sys.stderr)
                return 2
            algorithm = rest.pop(0)
        else:
            positional.append(arg)
    path = Path(positional[0]) if positional else DEFAULT_PATH
    entry = run_entry(algorithm)
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text())
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(
        f"trajectory: {entry['algorithm']} on {entry['n_tuples']} tuples "
        f"({entry['scale']}) — {entry['wall_seconds']}s wall, "
        f"{entry['edits']} edit(s), hash {entry['output_hash']}; "
        f"{len(trajectory)} entr{'y' if len(trajectory) == 1 else 'ies'} "
        f"in {path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
