"""Append one traced repair run to the ``BENCH_repair.json`` trajectory.

The standard workload is the noisy HOSP slice the simjoin trajectory
also uses (800 tuples at ``REPRO_BENCH_SCALE=smoke``, 5000 at
``paper``), repaired end-to-end with the engine default (greedy-m,
indexed detection) under ``trace=True``. Each run appends one
normalized entry:

* identity — scale, tuple/FD counts, algorithm, dataset fingerprint;
* wall clocks — end-to-end seconds plus the per-phase span totals of
  the run report, and the machine calibration constant
  (:func:`benchmarks._gate.calibration_seconds`) that lets the gate
  compare runs across machines;
* counters — the unified registry snapshot (pair/kernel/cache work);
* correctness — the repair output hash. The perf gate
  (``benchmarks/check_perf_gate.py``) fails on any hash drift: a perf
  win that changes repairs is a correctness regression.

Each entry also breaks the *search phase* out of the span totals
(``search_phase_seconds``: ``mis_enumeration``, ``greedy_growth``,
``combination``, ``tree_search``; ``search_seconds`` is their sum) —
the numbers ``benchmarks/check_search_gate.py`` compares against the
committed pre-bitset baselines.

``--substrate`` appends a ``tax_substrate`` entry instead: the columnar
substrate measured at paper scale — a 1M-row (125k at smoke) Tax load in
fresh subprocesses at two sizes (the marginal per-tuple RSS between them
is the flatness number ``benchmarks/check_substrate_gate.py`` gates), an
``n_jobs=2`` repair recording the relation-shipping traffic
(``relation_bytes_shipped``, per-task message sizes, and the row-major
bytes the pre-1.2 substrate would have pickled per task), and the
800-tuple HOSP output hash of every algorithm (always the smoke slice,
so the gate can pin exact values at every scale).

``--simjoin`` appends a ``vectorized_simjoin`` entry to
``BENCH_simjoin.json`` instead: the vectorized-vs-indexed detection
sweep on the noisy HOSP slice (detect-phase walls, the distinct-id
counters), the same sweep on a Tax substrate slice whose constant
active domain is the regime dictionary-granularity filtering exists
for, and a five-algorithm repair-hash sweep at serial and ``n_jobs=2``
under ``join_strategy="vectorized"`` — the equality and speedup floors
``benchmarks/check_simjoin_gate.py`` gates.

``--sched`` appends a ``skew_sched`` entry: the adaptive skew-aware
scheduler (``docs/parallelism.md``) measured on the skewed generator's
one-giant-component workload. It repairs the same relation three ways —
serial, statically scheduled at ``n_jobs=4``, and adaptively split into
subtree tasks — and records the measured per-unit CPU seconds plus the
*modeled* list-schedule speedups ``benchmarks/check_sched_gate.py``
gates (modeled, because CPU-time replay is meaningful on any runner,
including single-core containers where wall clocks cannot show a
speedup). A five-algorithm hash sweep across serial and split settings
pins the determinism contract: splitting may only re-order work, never
change the repair.

Usage::

    PYTHONPATH=src python benchmarks/_trajectory.py \
        [--algorithm greedy-m] [--substrate] [--sched] [--simjoin] \
        [path/to/BENCH_repair.json]
"""

from __future__ import annotations

import gc
import json
import pickle
import subprocess
import sys
import time
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from _gate import ROOT, calibration_seconds  # noqa: E402
from _harness import SCALE  # noqa: E402

from repro.core.engine import Repairer  # noqa: E402
from repro.core.distances import Weights  # noqa: E402
from repro.generator.hosp import (  # noqa: E402
    HOSP_FDS,
    generate_hosp,
    hosp_thresholds,
)
from repro.generator.noise import NoiseConfig, inject_noise  # noqa: E402

DEFAULT_PATH = ROOT / "BENCH_repair.json"
HOSP_SLICE_N = 5000 if SCALE == "paper" else 800
ALGORITHM = "greedy-m"

#: --substrate: Tax rows at full load (the paper's largest x-axis)
TAX_SUBSTRATE_N = 1_000_000 if SCALE == "paper" else 125_000
#: fixed entity-catalog sizes — a constant active domain makes the load
#: linear in n and is the shape that exercises dictionary encoding
TAX_CATALOG = {"n_residences": 400, "n_employers": 300, "n_filings": 40}
#: rows of the noisy slice the shipping measurement repairs at n_jobs=2
TAX_SHIPPING_N = 2000
#: every algorithm's hash is pinned on the 800-tuple smoke HOSP slice
HASH_SLICE_N = 800
HASH_ALGORITHMS = ("appro-m", "exact-m", "exact-s", "greedy-m", "greedy-s")

#: search-phase entry keys -> the span names whose totals they sum
SEARCH_PHASES = {
    "mis_enumeration": "mis/expand",
    "greedy_growth": "greedy/grow",
    "combination": "combinations",
    "tree_search": "targets/search",
}

#: counters worth trending run over run (subset of the unified registry)
TRENDED_COUNTERS = (
    "possible_pairs",
    "candidates_generated",
    "pairs_examined",
    "pairs_filtered",
    "pairs_verified",
    "kernel_calls",
    "index_builds",
    "index_reuses",
    "cache_hits",
    "cache_misses",
    "fd_components",
)


def workload():
    """The standard noisy HOSP slice (deterministic seeds)."""
    clean = generate_hosp(HOSP_SLICE_N, rng=7)
    relation, _errors = inject_noise(clean, HOSP_FDS, NoiseConfig(), rng=11)
    return relation


def run_entry(algorithm: str = ALGORITHM) -> dict:
    """One traced repair of the standard workload as a trajectory entry."""
    relation = workload()
    weights = Weights(0.5, 0.5)
    thresholds = hosp_thresholds(weights=weights)
    extra = {}
    if algorithm.startswith("exact"):
        # Exact searches legitimately exhaust their budgets on the big
        # components of this slice; degrade like the CLI default does.
        extra["fallback"] = "greedy"
    repairer = Repairer(
        HOSP_FDS,
        algorithm=algorithm,
        weights=weights,
        thresholds=thresholds,
        trace=True,
        **extra,
    )
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # degradations are expected here
        result = repairer.repair(relation)
    wall = time.perf_counter() - start
    report = repairer.report()
    counters = report.counters
    totals = report.phase_totals()
    search_phases = {
        key: round(totals.get(name, 0.0), 4)
        for key, name in sorted(SEARCH_PHASES.items())
    }
    return {
        "scale": SCALE,
        "n_tuples": HOSP_SLICE_N,
        "n_fds": len(HOSP_FDS),
        "algorithm": algorithm,
        "dataset_sha256": report.dataset["sha256"],
        "wall_seconds": round(wall, 4),
        "calibration_seconds": round(calibration_seconds(), 4),
        "phase_seconds": {
            name: round(seconds, 4)
            for name, seconds in sorted(totals.items())
        },
        "search_phase_seconds": search_phases,
        "search_seconds": round(sum(search_phases.values()), 4),
        "counters": {
            key: counters[key] for key in TRENDED_COUNTERS if key in counters
        },
        "edits": len(result.edits),
        "cost": round(result.cost, 9),
        "output_hash": report.result["output_hash"],
        "rss_peak_bytes": report.rss.get("peak_bytes"),
    }


# ----------------------------------------------------------------------
# --substrate: columnar memory, shipping traffic, and hash pinning
# ----------------------------------------------------------------------
def _vm_rss_bytes() -> int:
    """Current resident set size, from /proc (Linux)."""
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found in /proc/self/status")


def substrate_point(n: int) -> dict:
    """Load an n-row Tax instance and measure its resident footprint.

    Run in a *fresh* subprocess per point (``--_substrate-point``), so
    the RSS reflects one relation and not interpreter history; the gate
    uses the marginal bytes between two points, which also cancels the
    fixed interpreter + import overhead out.
    """
    from repro.generator.tax import generate_tax

    relation = generate_tax(n, rng=0, **TAX_CATALOG)
    gc.collect()
    stats = relation.dict_stats()
    return {
        "n_tuples": len(relation),
        "rss_bytes": _vm_rss_bytes(),
        "encoded_bytes": stats["encoded_bytes"],
        "dictionary_entries": stats["dictionary_entries"],
        "dict_hit_rate": round(stats["dict_hit_rate"], 6),
    }


def _measure_point(n: int) -> dict:
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--_substrate-point", str(n)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def _shipping_measurement() -> dict:
    """An n_jobs=2 Tax repair, recording what crossed the pool boundary."""
    from repro.core.engine import Repairer
    from repro.generator.noise import NoiseConfig, inject_noise
    from repro.generator.tax import (
        TAX_FDS,
        generate_tax,
        tax_thresholds,
    )

    clean = generate_tax(TAX_SHIPPING_N, rng=5, **TAX_CATALOG)
    relation, _errors = inject_noise(clean, TAX_FDS, NoiseConfig(), rng=13)
    repairer = Repairer(
        TAX_FDS,
        algorithm="greedy-m",
        thresholds=tax_thresholds(),
        n_jobs=2,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        result = repairer.repair(relation)
    stats = result.stats
    # what the pre-1.2 substrate paid: the whole relation pickled into
    # every per-task message, row-major (schema + row tuples)
    row_major = len(
        pickle.dumps((relation.schema, list(relation)), protocol=5)
    )
    components = int(stats.get("fd_components", 0))
    return {
        "n_tuples": len(relation),
        "n_jobs": stats.n_jobs,
        "fd_components": components,
        "relations_shipped": int(stats.get("relations_shipped", 0)),
        "relation_payload_bytes": int(stats.get("relation_payload_bytes", 0)),
        "relation_bytes_shipped": stats.relation_bytes_shipped,
        "task_bytes_max": stats.task_bytes_max,
        "task_bytes_total": int(stats.get("task_bytes_total", 0)),
        "row_major_task_bytes": row_major,
        "row_major_total_bytes": row_major * components,
        "task_reduction_ratio": round(
            row_major / stats.task_bytes_max, 2
        ) if stats.task_bytes_max else None,
        "dict_hit_rate": round(stats.dict_hit_rate, 6),
    }


def _hash_sweep() -> dict:
    """Every algorithm's output hash on the pinned 800-tuple HOSP slice."""
    from repro.obs import repair_output_hash

    clean = generate_hosp(HASH_SLICE_N, rng=7)
    relation, _errors = inject_noise_hosp(clean)
    weights = Weights(0.5, 0.5)
    thresholds = hosp_thresholds(weights=weights)
    hashes = {}
    for algorithm in HASH_ALGORITHMS:
        extra = {"fallback": "greedy"} if algorithm.startswith("exact") else {}
        repairer = Repairer(
            HOSP_FDS,
            algorithm=algorithm,
            weights=weights,
            thresholds=thresholds,
            **extra,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = repairer.repair(relation)
        hashes[algorithm] = repair_output_hash(result.edits, result.cost)
    return hashes


def inject_noise_hosp(clean):
    from repro.generator.noise import NoiseConfig, inject_noise

    return inject_noise(clean, HOSP_FDS, NoiseConfig(), rng=11)


def run_substrate_entry() -> dict:
    """The ``tax_substrate`` trajectory entry (see module docstring)."""
    small = _measure_point(max(TAX_SUBSTRATE_N // 8, 1000))
    full = _measure_point(TAX_SUBSTRATE_N)
    marginal = (full["rss_bytes"] - small["rss_bytes"]) / (
        full["n_tuples"] - small["n_tuples"]
    )
    shipping = _shipping_measurement()
    return {
        "workload": "tax_substrate",
        "scale": SCALE,
        "n_tuples": TAX_SUBSTRATE_N,
        "calibration_seconds": round(calibration_seconds(), 4),
        "load_points": [small, full],
        "marginal_bytes_per_tuple": round(marginal, 2),
        "shipping": shipping,
        "hash_slice_n": HASH_SLICE_N,
        "output_hashes": _hash_sweep(),
    }


# ----------------------------------------------------------------------
# --simjoin: the vectorized distinct-id detection sweep
# ----------------------------------------------------------------------
SIMJOIN_PATH = ROOT / "BENCH_simjoin.json"
#: rows of the noisy Tax slice the sweep also detects over — the
#: constant-active-domain regime where tuple counts dwarf distinct ids
TAX_SIMJOIN_N = TAX_SUBSTRATE_N
#: the counters each strategy's sweep row records
SIMJOIN_COUNTERS = (
    "pairs_examined",
    "pairs_filtered",
    "pairs_verified",
    "kernel_calls",
    "distinct_pairs_examined",
    "tuple_fanout",
    "vector_filter_passes",
)


def _simjoin_detect_sweep(relation, fds, thresholds, rounds: int = 2) -> dict:
    """Detect-phase walls and counters: indexed vs vectorized.

    Mirrors the ablation bench's measurement discipline — a fresh
    distance model per run (no cache leakage between strategies), one
    shared attribute-index registry per run, best wall of *rounds* —
    and asserts the two strategies emit identical violation triples.
    """
    from repro.core.distances import DistanceModel
    from repro.core.violation import group_patterns
    from repro.index.registry import AttributeIndexRegistry
    from repro.index.simjoin import SimilarityJoin

    weights = Weights(0.5, 0.5)
    patterns = {fd: group_patterns(relation, fd) for fd in fds}
    out: dict = {"n_tuples": len(relation), "n_fds": len(fds)}
    signatures = {}
    for strategy in ("indexed", "vectorized"):
        best_wall = None
        best_counters: dict = {}
        signature = None
        for _ in range(rounds):
            model = DistanceModel(relation, weights=weights)
            registry = AttributeIndexRegistry()
            counters = dict.fromkeys(SIMJOIN_COUNTERS, 0)
            signature = []
            start = time.perf_counter()
            for fd in fds:
                join = SimilarityJoin(
                    fd,
                    model,
                    thresholds[fd],
                    strategy=strategy,
                    registry=registry,
                )
                signature.append(
                    [
                        (v.left.values, v.right.values, v.distance)
                        for v in join.join(patterns[fd])
                    ]
                )
                for key in SIMJOIN_COUNTERS:
                    counters[key] += getattr(join, key)
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
                best_counters = counters
        signatures[strategy] = signature
        out[strategy] = {"seconds": round(best_wall, 4), **best_counters}
    if signatures["vectorized"] != signatures["indexed"]:
        raise AssertionError(
            "vectorized and indexed detection disagree on this workload"
        )
    out["violations_equal"] = True
    out["speedup"] = round(
        out["indexed"]["seconds"] / max(out["vectorized"]["seconds"], 1e-9), 3
    )
    return out


def _vectorized_hash_sweep() -> dict:
    """Repair hashes of every algorithm under the vectorized strategy.

    For each algorithm: the indexed-serial reference hash plus the
    vectorized hash at serial and ``n_jobs=2`` — three values the gate
    requires to be one.
    """
    from repro.obs import repair_output_hash

    clean = generate_hosp(HASH_SLICE_N, rng=7)
    relation, _errors = inject_noise(clean, HOSP_FDS, NoiseConfig(), rng=11)
    weights = Weights(0.5, 0.5)
    thresholds = hosp_thresholds(weights=weights)
    settings = (
        ("indexed", {"join_strategy": "indexed"}),
        ("vectorized", {"join_strategy": "vectorized"}),
        ("vectorized_n_jobs2", {"join_strategy": "vectorized", "n_jobs": 2}),
    )
    hashes = {}
    for algorithm in HASH_ALGORITHMS:
        extra = {"fallback": "greedy"} if algorithm.startswith("exact") else {}
        per_setting = {}
        for label, kwargs in settings:
            repairer = Repairer(
                HOSP_FDS,
                algorithm=algorithm,
                weights=weights,
                thresholds=thresholds,
                **kwargs,
                **extra,
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = repairer.repair(relation)
            per_setting[label] = repair_output_hash(result.edits, result.cost)
        hashes[algorithm] = per_setting
    return hashes


def run_simjoin_entry() -> dict:
    """The ``vectorized_simjoin`` trajectory entry (see module docstring)."""
    from repro.generator.tax import TAX_FDS, generate_tax, tax_thresholds

    hosp_sweep = _simjoin_detect_sweep(
        workload(), HOSP_FDS, hosp_thresholds(weights=Weights(0.5, 0.5))
    )
    # The clean substrate relation, not a noisy copy: its constant
    # entity catalog keeps the distinct patterns in the hundreds while
    # the tuple count runs to a million — the regime where distinct-id
    # candidate work is dwarfed by the tuple fan-out it stands in for.
    tax_relation = generate_tax(TAX_SIMJOIN_N, rng=0, **TAX_CATALOG)
    tax_sweep = _simjoin_detect_sweep(
        tax_relation, TAX_FDS, tax_thresholds(), rounds=1
    )
    sweep = _vectorized_hash_sweep()
    return {
        "workload": "vectorized_simjoin",
        "scale": SCALE,
        "calibration_seconds": round(calibration_seconds(), 4),
        "hosp": hosp_sweep,
        "tax": tax_sweep,
        "hash_slice_n": HASH_SLICE_N,
        "output_hashes": sweep,
        "hashes_match": all(
            len(set(values.values())) == 1 for values in sweep.values()
        ),
    }


# ----------------------------------------------------------------------
# --sched: adaptive skew-aware scheduling (subtree splitting)
# ----------------------------------------------------------------------
#: the skewed workload: one giant path component of SCHED_CHAIN patterns.
#: exact-s is the headline algorithm because its whole-component search
#: is the splittable part wholesale — the MODE_BEST merge is a winner
#: comparison, so there is no serial composition tail diluting the
#: schedule (exact-m keeps its candidate evaluation in the parent and
#: tops out near 2.5x on this shape).
SCHED_CHAIN = 40
SCHED_N = 600
SCHED_DOMINANCE = 0.9
SCHED_ALGORITHM = "exact-s"
SCHED_JOBS = 4
SCHED_SPLIT_THRESHOLD = 16

#: the smaller slice every algorithm's split determinism is hashed on
SCHED_HASH_CHAIN = 14
SCHED_HASH_N = 400
#: (n_jobs, split_threshold) settings of the hash sweep
SCHED_HASH_SETTINGS = ((1, None), (2, 8), (4, 8))


def _lpt_makespan(durations, workers: int) -> float:
    """Longest-processing-time list-schedule makespan of *durations*.

    The model the sched gate compares schedules under: sort the measured
    per-unit CPU times descending, always hand the next unit to the
    least-loaded of *workers* — the same greedy choice an idle pool
    worker makes when it picks up the largest pending task.
    """
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def _sched_workload(n: int, chain: int):
    from repro.generator.skew import generate_skew, skew_thresholds

    relation = generate_skew(
        n, dominance=SCHED_DOMINANCE, chain=chain, small_chains=2
    )
    thresholds = skew_thresholds(dominance=SCHED_DOMINANCE, chain=chain)
    return relation, thresholds


def _sched_run(n_jobs: int, split_threshold):
    """One repair of the skewed workload: (result, wall, output hash)."""
    from repro.generator.skew import SKEW_FDS
    from repro.obs import repair_output_hash

    relation, thresholds = _sched_workload(SCHED_N, SCHED_CHAIN)
    repairer = Repairer(
        SKEW_FDS,
        algorithm=SCHED_ALGORITHM,
        thresholds=thresholds,
        max_nodes=None,  # the giant chain is the point; never degrade
        n_jobs=n_jobs,
        split_threshold=split_threshold,
    )
    start = time.perf_counter()
    result = repairer.repair(relation)
    wall = time.perf_counter() - start
    return result, wall, repair_output_hash(result.edits, result.cost)


def _sched_hash_sweep() -> dict:
    """Every algorithm's output hash across serial and split settings.

    The determinism contract under test: for each algorithm, the three
    hashes (serial, 2 workers + splitting, 4 workers + splitting) must
    be one value — bound exchange and subtree scheduling may only prune,
    never change the selected repair.
    """
    from repro.generator.skew import SKEW_FDS
    from repro.obs import repair_output_hash

    relation, thresholds = _sched_workload(SCHED_HASH_N, SCHED_HASH_CHAIN)
    hashes = {}
    for algorithm in HASH_ALGORITHMS:
        per_setting = []
        for n_jobs, split in SCHED_HASH_SETTINGS:
            repairer = Repairer(
                SKEW_FDS,
                algorithm=algorithm,
                thresholds=thresholds,
                max_nodes=None,
                n_jobs=n_jobs,
                split_threshold=split,
                max_subtasks=4,
            )
            result = repairer.repair(relation)
            per_setting.append(
                repair_output_hash(result.edits, result.cost)
            )
        hashes[algorithm] = per_setting
    return hashes


def run_sched_entry() -> dict:
    """The ``skew_sched`` trajectory entry (see module docstring).

    Speedups are *modeled*: the measured per-unit CPU seconds (process
    time — whole component tasks for the static schedule; coordinated
    parents, subtree tasks, and unsplit tasks for the adaptive one)
    list-scheduled onto ``SCHED_JOBS`` workers. CPU time is immune to
    the machine's actual core count and load, so the entry is
    comparable across the 1-core containers and shared CI runners this
    bench runs on; wall clocks are recorded for context only, which is
    also why this entry carries no top-level ``wall_seconds`` for the
    perf gate to trip over.
    """
    import os

    serial_result, serial_wall, serial_hash = _sched_run(1, None)
    static_result, static_wall, static_hash = _sched_run(SCHED_JOBS, None)
    adaptive_result, adaptive_wall, adaptive_hash = _sched_run(
        SCHED_JOBS, SCHED_SPLIT_THRESHOLD
    )

    serial_units = [
        comp["cpu_seconds"] for comp in serial_result.stats.components
    ]
    static_units = [
        comp["cpu_seconds"] for comp in static_result.stats.components
    ]
    adaptive_stats = adaptive_result.stats
    adaptive_units = [
        comp["cpu_seconds"] for comp in adaptive_stats.components
    ] + [float(s) for s in adaptive_stats.get("subtree_cpu_seconds", ())]

    serial_total = sum(serial_units)
    modeled_static = serial_total / _lpt_makespan(static_units, SCHED_JOBS)
    modeled_adaptive = serial_total / _lpt_makespan(
        adaptive_units, SCHED_JOBS
    )

    sweep = _sched_hash_sweep()
    return {
        "workload": "skew_sched",
        "scale": SCALE,
        "cpu_count": os.cpu_count() or 1,
        "calibration_seconds": round(calibration_seconds(), 4),
        "config": {
            "algorithm": SCHED_ALGORITHM,
            "n_tuples": SCHED_N,
            "chain": SCHED_CHAIN,
            "dominance": SCHED_DOMINANCE,
            "n_jobs": SCHED_JOBS,
            "split_threshold": SCHED_SPLIT_THRESHOLD,
        },
        "serial": {
            "wall": round(serial_wall, 4),
            "unit_cpu_seconds": [round(u, 4) for u in serial_units],
            "total_cpu_seconds": round(serial_total, 4),
            "output_hash": serial_hash,
        },
        "static": {
            "wall": round(static_wall, 4),
            "unit_cpu_seconds": [round(u, 4) for u in static_units],
            "output_hash": static_hash,
        },
        "adaptive": {
            "wall": round(adaptive_wall, 4),
            "unit_cpu_seconds": [round(u, 4) for u in adaptive_units],
            "output_hash": adaptive_hash,
            "tasks_split": adaptive_stats.tasks_split,
            "subtree_tasks": adaptive_stats.subtree_tasks,
            "steals": adaptive_stats.steals,
            "incumbent_publishes": adaptive_stats.incumbent_publishes,
            "bound_exchange_hits": adaptive_stats.bound_exchange_hits,
            "busy_skew_ratio": round(adaptive_stats.busy_skew_ratio, 3),
        },
        "modeled_speedup_static": round(modeled_static, 3),
        "modeled_speedup_adaptive": round(modeled_adaptive, 3),
        "hash_slice": {
            "n_tuples": SCHED_HASH_N,
            "chain": SCHED_HASH_CHAIN,
            "settings": [
                f"n_jobs={jobs}" + (f" split={split}" if split else "")
                for jobs, split in SCHED_HASH_SETTINGS
            ],
            "output_hashes": sweep,
            "hashes_consistent": all(
                len(set(values)) == 1 for values in sweep.values()
            ),
        },
    }


def main(argv: list) -> int:
    algorithm = ALGORITHM
    substrate = False
    sched = False
    simjoin = False
    positional = []
    rest = list(argv[1:])
    while rest:
        arg = rest.pop(0)
        if arg == "--algorithm":
            if not rest:
                print("--algorithm requires a value", file=sys.stderr)
                return 2
            algorithm = rest.pop(0)
        elif arg == "--substrate":
            substrate = True
        elif arg == "--sched":
            sched = True
        elif arg == "--simjoin":
            simjoin = True
        elif arg == "--_substrate-point":
            print(json.dumps(substrate_point(int(rest.pop(0)))))
            return 0
        else:
            positional.append(arg)
    if simjoin:
        path = Path(positional[0]) if positional else SIMJOIN_PATH
        entry = run_simjoin_entry()
        trajectory = []
        if path.exists():
            trajectory = json.loads(path.read_text())
        trajectory.append(entry)
        path.write_text(json.dumps(trajectory, indent=2) + "\n")
        hosp = entry["hosp"]
        tax = entry["tax"]
        print(
            f"simjoin: vectorized {hosp['speedup']}x vs indexed on "
            f"{hosp['n_tuples']} HOSP tuples "
            f"({hosp['vectorized']['seconds']}s vs "
            f"{hosp['indexed']['seconds']}s), {tax['speedup']}x on "
            f"{tax['n_tuples']} Tax tuples; "
            f"{hosp['vectorized']['distinct_pairs_examined']} distinct "
            f"pair(s) for {hosp['vectorized']['tuple_fanout']} tuple "
            f"pair(s); hashes "
            f"{'match' if entry['hashes_match'] else 'MISMATCH'}; "
            f"{len(trajectory)} entr{'y' if len(trajectory) == 1 else 'ies'} "
            f"in {path}"
        )
        return 0
    path = Path(positional[0]) if positional else DEFAULT_PATH
    if sched:
        entry = run_sched_entry()
        trajectory = []
        if path.exists():
            trajectory = json.loads(path.read_text())
        trajectory.append(entry)
        path.write_text(json.dumps(trajectory, indent=2) + "\n")
        adaptive = entry["adaptive"]
        print(
            f"sched: {entry['config']['algorithm']} on a "
            f"{entry['config']['chain']}-pattern giant component — modeled "
            f"speedup {entry['modeled_speedup_adaptive']}x adaptive vs "
            f"{entry['modeled_speedup_static']}x static at "
            f"n_jobs={entry['config']['n_jobs']}; "
            f"{adaptive['subtree_tasks']} subtree task(s), "
            f"{adaptive['steals']} steal(s), hashes "
            f"{'consistent' if entry['hash_slice']['hashes_consistent'] else 'INCONSISTENT'}; "
            f"{len(trajectory)} entr{'y' if len(trajectory) == 1 else 'ies'} "
            f"in {path}"
        )
        return 0
    if substrate:
        entry = run_substrate_entry()
        trajectory = []
        if path.exists():
            trajectory = json.loads(path.read_text())
        trajectory.append(entry)
        path.write_text(json.dumps(trajectory, indent=2) + "\n")
        print(
            f"substrate: {entry['n_tuples']} Tax tuples ({SCALE}) — "
            f"{entry['marginal_bytes_per_tuple']} B/tuple marginal RSS, "
            f"task max {entry['shipping']['task_bytes_max']} B "
            f"({entry['shipping']['task_reduction_ratio']}x smaller than "
            f"row-major), {len(entry['output_hashes'])} hash(es) pinned; "
            f"{len(trajectory)} entr{'y' if len(trajectory) == 1 else 'ies'} "
            f"in {path}"
        )
        return 0
    entry = run_entry(algorithm)
    trajectory = []
    if path.exists():
        trajectory = json.loads(path.read_text())
    trajectory.append(entry)
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    print(
        f"trajectory: {entry['algorithm']} on {entry['n_tuples']} tuples "
        f"({entry['scale']}) — {entry['wall_seconds']}s wall, "
        f"{entry['edits']} edit(s), hash {entry['output_hash']}; "
        f"{len(trajectory)} entr{'y' if len(trajectory) == 1 else 'ies'} "
        f"in {path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
