"""The component-sharded executor: parallel speedup and determinism.

Runs the fig12 smoke workloads (hosp + tax at every FD count) as one
batch through :meth:`Repairer.repair_many` — every FD-graph component
of every workload is one schedulable unit — serially and with four
workers, checks the outputs are byte-identical, and records wall clocks
and the speedup to ``benchmarks/results/parallel_executor.txt``.

The >= 1.5x speedup assertion only applies when the machine actually
has multiple CPUs to run on; on a single-CPU container the measured
numbers are still recorded, annotated as such.
"""

from __future__ import annotations

import os
import time

from _harness import BASE_N, FD_COUNTS, RESULTS_DIR, SCALE, cached_workload
from repro.core.engine import Repairer
from repro.eval.runner import Trial
from repro.exec import RepairConfig, RepairExecutor

SPEEDUP_FLOOR = 1.5
PARALLEL_JOBS = 4


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _batch():
    """(trial, dirty, fds, thresholds) per fig12-style condition."""
    jobs = []
    for dataset in ("hosp", "tax"):
        for n_fds in FD_COUNTS:
            trial = Trial(
                dataset=dataset,
                n=BASE_N,
                n_fds=n_fds,
                error_rate=0.04,
                seed=121,
            )
            _, dirty, _, fds, thresholds = cached_workload(trial)
            jobs.append((trial, dirty, fds, thresholds))
    return jobs


def _run_batch(jobs, n_jobs):
    """Repair the whole batch under one executor; returns (results, secs).

    All workloads go through one :meth:`RepairExecutor.repair_many`
    call, so every FD-graph component of every workload lands in a
    single shared task queue — that breadth, not any one workload's
    component count, is what the workers fan out over.
    """
    executor = RepairExecutor(RepairConfig(n_jobs=n_jobs))
    start = time.perf_counter()
    results = executor.repair_many(
        [(dirty, fds, thresholds) for _, dirty, fds, thresholds in jobs]
    )
    return results, time.perf_counter() - start


def test_parallel_executor_speedup_and_determinism():
    jobs = _batch()
    # warm the workload cache outside the timed region
    serial_results, serial_seconds = _run_batch(jobs, n_jobs=1)
    parallel_results, parallel_seconds = _run_batch(jobs, n_jobs=PARALLEL_JOBS)

    # determinism: byte-identical edits, cost and repaired rows, always
    for (trial, dirty, _, _), serial, parallel in zip(
        jobs, serial_results, parallel_results
    ):
        key = (trial.dataset, trial.n_fds)
        assert parallel.edits == serial.edits, key
        assert parallel.cost == serial.cost, key
        assert [
            parallel.relation.row(t) for t in parallel.relation.tids()
        ] == [serial.relation.row(t) for t in serial.relation.tids()], key

    speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
    cpus = _available_cpus()
    units = sum(
        r.stats["fd_components"]
        for r in serial_results
    )

    lines = [
        f"# parallel_executor (scale={SCALE})",
        "",
        f"workloads:        hosp+tax x FDs {FD_COUNTS}, N={BASE_N}, greedy-m",
        f"work units:       {units} FD-graph component(s)",
        f"available CPUs:   {cpus}",
        f"serial (n_jobs=1):          {serial_seconds:.3f}s",
        f"parallel (n_jobs={PARALLEL_JOBS}):         {parallel_seconds:.3f}s",
        f"speedup:                    {speedup:.2f}x",
        "determinism:                edits/cost/rows identical",
    ]
    if cpus >= 2:
        lines.append(f"speedup floor ({SPEEDUP_FLOOR}x):       asserted")
    else:
        lines.append(
            f"speedup floor ({SPEEDUP_FLOOR}x):       not asserted — "
            f"only {cpus} CPU available to this process; worker fan-out "
            "cannot beat serial without a second core"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "parallel_executor.txt"
    out.write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    if cpus >= 2:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x speedup with "
            f"{PARALLEL_JOBS} workers on {cpus} CPUs, got {speedup:.2f}x "
            f"({serial_seconds:.3f}s -> {parallel_seconds:.3f}s)"
        )


def test_repair_many_batches_across_relations():
    """The batch API funnels many relations into one task queue."""
    trial = Trial(dataset="hosp", n=BASE_N, error_rate=0.04, seed=121)
    _, dirty, _, fds, thresholds = cached_workload(trial)
    repairer = Repairer(fds, thresholds=thresholds, n_jobs=2)
    batched = repairer.repair_many([dirty, dirty, dirty])
    single = repairer.repair(dirty)
    assert all(r.edits == single.edits for r in batched)
    assert all(r.cost == single.cost for r in batched)
