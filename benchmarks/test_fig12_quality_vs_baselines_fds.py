"""Fig. 12: quality vs baselines, varying #FDs."""

import pytest

from _harness import (
    BASE_N,
    BASELINE_SYSTEMS,
    FD_COUNTS,
    OUR_SYSTEMS,
    run_benchmark_trial,
)
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("n_fds", FD_COUNTS)
@pytest.mark.parametrize("system", OUR_SYSTEMS + BASELINE_SYSTEMS)
def test_fig12(benchmark, dataset, n_fds, system):
    trial = Trial(
        dataset=dataset, n=BASE_N, n_fds=n_fds, error_rate=0.04, seed=121
    )
    result = run_benchmark_trial(benchmark, f"fig12_{dataset}", system, trial)
    assert 0.0 <= result.recall <= 1.0
