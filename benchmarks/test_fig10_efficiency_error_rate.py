"""Fig. 10: runtime vs error rate, with and without the target tree.

Paper shape: Greedy-M's runtime grows with e% (more patterns to weigh);
Appro-M grows slowly — the join targets barely change with noise.

Caveat (see EXPERIMENTS.md): on entity-aligned workloads the joined
target space is near-linear, so tree and naive join run within ~20%
of each other; the paper's large tree gains need a combinatorial
target space, reproduced by benchmarks/test_ablation_targettree.py.
"""

import pytest

from _harness import BASE_N, ERROR_RATES, TREE_SYSTEMS, run_benchmark_trial
from repro.eval.runner import Trial


@pytest.mark.parametrize("dataset", ["hosp", "tax"])
@pytest.mark.parametrize("error_rate", ERROR_RATES)
@pytest.mark.parametrize("system", TREE_SYSTEMS)
def test_fig10(benchmark, dataset, error_rate, system):
    trial = Trial(dataset=dataset, n=BASE_N, error_rate=error_rate, seed=101)
    result = run_benchmark_trial(benchmark, f"fig10_{dataset}", system, trial)
    assert result.seconds >= 0.0
