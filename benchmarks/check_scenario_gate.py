"""CI gate over the ``BENCH_scenarios.json`` detector-matrix trajectory.

Compares the **latest** ``kind="scenario"`` entry the matrix runner
appended (``benchmarks/_scenario_matrix.py``) against the **baseline**
— the first entry at the same scale and tuple count (the committed
one). Four checks:

1. **Coverage** — the matrix must span at least ``MIN_DETECTORS``
   detectors and ``MIN_DATASETS`` datasets; a detector or scenario that
   silently drops out of the grid is a pipeline regression, not a
   smaller PASS.
2. **Advisory contract** — the FD anchor's two output hashes
   (detectors off / every detector on) must be identical. Detectors
   annotate the violation graph; they never change the repair.
3. **Detection quality** — the target-diagonal F1 of every scenario
   (each detector on the error profile it was built for) must not drop
   more than ``F1_TOLERANCE`` below the baseline's.
4. **Repair quality** — the FD anchor's repair F1 must not drop more
   than ``F1_TOLERANCE`` below the baseline's.

Exit status follows the shared gate conventions (``benchmarks/_gate.py``):
0 pass, 1 regression, 2 missing/malformed trajectory. A per-scenario
P/R/F1 table is appended to ``$GITHUB_STEP_SUMMARY`` when set.

Usage::

    python benchmarks/check_scenario_gate.py [path/to/BENCH_scenarios.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _gate import (  # noqa: E402
    EXIT_MISSING,
    EXIT_PASS,
    EXIT_REGRESSION,
    ROOT,
    verdict_summary,
)

DEFAULT_PATH = ROOT / "BENCH_scenarios.json"
MIN_DETECTORS = 3
MIN_DATASETS = 3
#: absolute F1 drop allowed before the gate trips (the detectors are
#: deterministic on the seeded workloads, so any real drop is a code
#: change, but CI should not flap on a future stochastic scenario)
F1_TOLERANCE = 0.02


def find_baseline(entries: List[dict], latest: dict) -> dict:
    """First entry of the same workload shape as *latest*."""
    for entry in entries:
        if (
            entry.get("scale") == latest.get("scale")
            and entry.get("n_tuples") == latest.get("n_tuples")
        ):
            return entry
    return latest


def target_f1(entry: dict) -> Dict[str, float]:
    """scenario name -> its target detector's F1."""
    return {
        cell["scenario"]: float(cell["f1"])
        for cell in entry.get("matrix", ())
        if cell.get("target")
    }


def matrix_table(entry: dict) -> str:
    """Markdown P/R/F1 table of the latest matrix for the step summary."""
    lines = [
        "| scenario | dataset | detector | P | R | F1 | flagged |",
        "|---|---|---|---:|---:|---:|---:|",
    ]
    for cell in entry.get("matrix", ()):
        name = cell["detector"] + (" *" if cell.get("target") else "")
        lines.append(
            f"| {cell['scenario']} | {cell['dataset']} | {name} | "
            f"{cell['precision']:.3f} | {cell['recall']:.3f} | "
            f"{cell['f1']:.3f} | {cell['flagged_cells']} |"
        )
    lines.append("")
    lines.append("`*` = the scenario's target detector")
    return "\n".join(lines)


def check(latest: dict, baseline: dict) -> Tuple[bool, List[str]]:
    """(passed, failure messages) of all four checks."""
    failures: List[str] = []

    detectors = set(latest.get("detectors", ()))
    datasets = set(latest.get("datasets", ()))
    if len(detectors) < MIN_DETECTORS:
        failures.append(
            f"matrix covers {len(detectors)} detector(s) "
            f"({sorted(detectors)}), need >= {MIN_DETECTORS}"
        )
    if len(datasets) < MIN_DATASETS:
        failures.append(
            f"matrix covers {len(datasets)} dataset(s) "
            f"({sorted(datasets)}), need >= {MIN_DATASETS}"
        )

    anchor = latest.get("fd_repair") or {}
    if not anchor.get("byte_identical"):
        failures.append(
            "FD repair output hash diverged with detectors enabled: "
            f"`{anchor.get('output_hash_plain')}` vs "
            f"`{anchor.get('output_hash_detectors')}` — the advisory "
            "layer influenced the search"
        )

    base_diag = target_f1(baseline)
    for scenario, f1 in sorted(target_f1(latest).items()):
        base = base_diag.get(scenario)
        if base is not None and f1 < base - F1_TOLERANCE:
            failures.append(
                f"{scenario}: target-detector F1 {f1:.3f} dropped below "
                f"baseline {base:.3f} - {F1_TOLERANCE}"
            )

    base_anchor = baseline.get("fd_repair") or {}
    base_f1: Optional[float] = base_anchor.get("f1")
    last_f1: Optional[float] = anchor.get("f1")
    if base_f1 is not None and last_f1 is not None:
        if last_f1 < base_f1 - F1_TOLERANCE:
            failures.append(
                f"fd-noise repair F1 {last_f1:.3f} dropped below "
                f"baseline {base_f1:.3f} - {F1_TOLERANCE}"
            )

    return not failures, failures


def main(argv: list) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    if not path.exists():
        print(
            f"gate: {path} not found; run benchmarks/_scenario_matrix.py "
            "first",
            file=sys.stderr,
        )
        verdict_summary("scenario gate", "MISSING", f"`{path.name}` not found")
        return EXIT_MISSING
    try:
        trajectory = json.loads(path.read_text())
        entries = [e for e in trajectory if e.get("kind") == "scenario"]
        latest = entries[-1]
        baseline = find_baseline(entries, latest)
    except (ValueError, KeyError, IndexError, TypeError) as exc:
        print(
            f"gate: cannot read scenario entries: {exc}", file=sys.stderr
        )
        verdict_summary(
            "scenario gate", "MISSING", f"malformed `{path.name}`: {exc}"
        )
        return EXIT_MISSING

    passed, failures = check(latest, baseline)
    diagonal = ", ".join(
        f"{name}={f1:.3f}" for name, f1 in sorted(target_f1(latest).items())
    )
    print(
        f"gate: {len(latest.get('detectors', ()))} detector(s) x "
        f"{len(latest.get('scenarios', ()))} scenario(s) on "
        f"{latest.get('n_tuples')} tuples ({latest.get('scale')}) — "
        f"target-diagonal F1 {diagonal}; fd repair F1 "
        f"{(latest.get('fd_repair') or {}).get('f1')}"
    )
    detail = matrix_table(latest)
    if passed:
        print("gate: PASS")
        verdict_summary("scenario gate", "PASS", detail)
        return EXIT_PASS
    for failure in failures:
        print(f"gate: FAIL — {failure}", file=sys.stderr)
    verdict_summary(
        "scenario gate",
        "FAIL",
        "\n".join(f"- {failure}" for failure in failures) + "\n\n" + detail,
    )
    return EXIT_REGRESSION


if __name__ == "__main__":
    sys.exit(main(sys.argv))
