"""pytest hooks for the benchmark harness (see _harness.py)."""

import _harness


def pytest_sessionfinish(session, exitstatus):
    _harness.write_reports()
