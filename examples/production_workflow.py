#!/usr/bin/env python3
"""The full production workflow: discover -> detect -> repair -> review.

A realistic adoption path for the library on a feed you do not fully
trust:

1. **discover** candidate FDs from the (dirty) data itself;
2. **detect** FT-violations with the selected constraints — gate the
   pipeline, route suspects;
3. **repair** automatically;
4. **review** the repairs by confidence — auto-approve the obvious typo
   fixes, eyeball the rest;
5. **report** what changed and what it achieved;
6. keep an **incremental** repairer fitted for the records that arrive
   tomorrow.

Run: python examples/production_workflow.py
"""

from repro import IncrementalRepairer, Repairer, discover_fds
from repro.eval import ReviewQueue, repair_report
from repro.generator import NoiseConfig, generate_hosp, inject_noise
from repro.generator.hosp import HOSP_FDS, hosp_thresholds


def main() -> None:
    clean = generate_hosp(600, rng=31)
    dirty, errors = inject_noise(clean, HOSP_FDS, NoiseConfig(0.04), rng=32)
    print(f"Feed: {len(dirty)} records, {len(errors)} corrupted cells.\n")

    # 1. discover -------------------------------------------------------
    candidates = discover_fds(
        dirty, max_lhs=1, max_violation_rate=0.08, max_uniqueness=0.95
    )
    print(f"1. discovered {len(candidates)} candidate FDs; top five:")
    for candidate in candidates[:5]:
        print(f"   {candidate}")
    fds = [c.fd for c in candidates[:9]]
    print(f"   -> keeping the nine cleanest for repair\n")

    # 2. detect ---------------------------------------------------------
    thresholds = hosp_thresholds()  # known geometry; or omit to derive
    repairer = Repairer(HOSP_FDS, algorithm="greedy-m", thresholds=thresholds)
    detection = repairer.detect(dirty)
    print("2. detection gate:")
    print("   " + detection.summary().replace("\n", "\n   "))
    print()

    # 3. repair ---------------------------------------------------------
    result = repairer.repair(dirty)
    print(f"3. automatic repair: {result.summary()}\n")

    # 4. review ---------------------------------------------------------
    queue = ReviewQueue(dirty, result)
    auto = queue.auto_approve(min_confidence=0.6)
    print(
        f"4. review: {auto} edits auto-approved at confidence >= 0.6; "
        f"{len(queue.pending())} left for a human. Least confident:"
    )
    for item in queue.pending()[:5]:
        print(f"   {item}")
    for item in list(queue.pending()):
        queue.approve(item.edit.cell)  # the human says yes today
    cleaned = queue.apply()
    print()

    # 5. report ---------------------------------------------------------
    model = repairer.build_model(dirty)
    report = repair_report(dirty, result, HOSP_FDS, model, thresholds)
    print("5. repair report:")
    print("   " + report.render().replace("\n", "\n   ")[:900])
    print("   ...\n")

    # 6. serve ----------------------------------------------------------
    serving = IncrementalRepairer(HOSP_FDS, thresholds=thresholds).fit(cleaned)
    arriving = dict(clean.as_record(0))
    arriving["ZipCode"] = arriving["ZipCode"][:-1] + "x"  # tomorrow's typo
    fixed, edits = serving.repair_record(arriving)
    print("6. incremental serving: a record arrives with a typo'd zip;")
    for edit in edits:
        print(f"   {edit}")
    assert fixed["ZipCode"] == clean.as_record(0)["ZipCode"]


if __name__ == "__main__":
    main()
