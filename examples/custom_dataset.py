#!/usr/bin/env python3
"""Repair your own CSV data: the library's intended downstream workflow.

The script materializes a small product-catalog CSV (as a stand-in for
"your data"), loads it, declares the FDs that should govern it, lets the
engine derive thresholds, repairs, and writes the cleaned CSV next to
the input.

Run: python examples/custom_dataset.py [path/to/your.csv]

With no argument, a demo catalog with three seeded errors is created in
a temporary directory.
"""

import sys
import tempfile
from pathlib import Path

from repro import FD, Repairer, read_csv, write_csv

DEMO_ROWS = """sku,product,brand,warehouse,city
sk-1001,espresso-machine,brewcraft,WH-A,Lyon
sk-1001,espresso-machine,brewcraft,WH-A,Lyon
sk-1001,espresso-machine,brewcreft,WH-A,Lyon
sk-2002,grinder-pro,millstone,WH-B,Nantes
sk-2002,grinder-pro,millstone,WH-B,Nantes
sk-2002,grinder-pro,millstone,WH-B,Nantez
sk-3003,kettle-steel,thermaflow,WH-A,Lyon
sk-3003,kettle-stee1,thermaflow,WH-A,Lyon
sk-3003,kettle-steel,thermaflow,WH-A,Lyon
sk-3003,kettle-steel,thermaflow,WH-A,Lyon
"""

FDS = [
    FD.parse("sku -> product, brand"),
    FD.parse("warehouse -> city"),
]


def main() -> None:
    if len(sys.argv) > 1:
        source = Path(sys.argv[1])
    else:
        source = Path(tempfile.mkdtemp()) / "catalog.csv"
        source.write_text(DEMO_ROWS)
        print(f"(no input given; demo catalog written to {source})\n")

    relation = read_csv(source)
    print(f"Loaded {len(relation)} rows from {source}:")
    print(relation.to_text())
    print()

    repairer = Repairer(FDS, algorithm="greedy-m")
    thresholds = repairer.resolve_thresholds(relation)
    print("Derived thresholds:")
    for fd, tau in thresholds.items():
        print(f"  {fd}: tau = {tau:.3f}")
    print()

    result = repairer.repair(relation)
    print(f"Repair: {result.summary()}")
    for edit in result.edits:
        print(f"  {edit}")

    destination = source.with_suffix(".cleaned.csv")
    write_csv(result.relation, destination)
    print(f"\nCleaned data written to {destination}")


if __name__ == "__main__":
    main()
